//! Golden contract for the service layer: `melreq run --json`, the
//! typed `melreq_core::api` facade, and the HTTP `/run` endpoint must
//! all emit byte-identical reports for the same request — the envelope
//! around the service response is the only permitted difference.
//!
//! Also pins the warm-store path: the second identical request against
//! a store-backed server restores its warm-up from the checkpoint
//! store (`"cache":"warm"` in the envelope) without changing a byte of
//! the report.

use melreq_cli::{run_command, Command, ObsArgs, PolicySpec};
use melreq_core::api::{Session, SimRequest};
use melreq_core::experiment::{ExperimentOptions, RunControl};
use melreq_serve::{http, split_envelope, start, ServeConfig};
use std::path::PathBuf;
use std::time::Duration;

const MIX: &str = "2MEM-1";
const POLICY: &str = "me-lreq";
const EXCHANGE_TIMEOUT: Duration = Duration::from_secs(300);

fn quick_request() -> SimRequest {
    SimRequest::new(MIX)
        .policy(PolicySpec::parse(POLICY).expect("policy token"))
        .opts(ExperimentOptions::quick())
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("melreq-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cli_facade_and_service_reports_are_byte_identical() {
    let opts = ExperimentOptions::quick();

    // 1. The CLI's machine-readable report.
    let cli_json = run_command(&Command::Run {
        mix: MIX.to_string(),
        policy: PolicySpec::parse(POLICY).expect("policy token"),
        opts,
        audit: false,
        obs: ObsArgs::default(),
        json: true,
        threads: None,
        prof_out: None,
    })
    .expect("melreq run --json");

    // 2. The typed facade, called directly.
    let req = quick_request();
    let facade_json =
        Session::new().run(&req, &RunControl::default()).expect("facade run").to_json();
    assert_eq!(cli_json, facade_json, "CLI --json must be exactly SimReport::to_json()");

    // 3. The HTTP service, store-backed so the repeat can go warm.
    let store_dir = temp_store("run");
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_cap: 8,
        store_dir: Some(store_dir.clone()),
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = handle.addr().to_string();
    let body = req.to_json();

    let (status, first) =
        http::exchange(&addr, "POST", "/run", Some(&body), EXCHANGE_TIMEOUT).expect("first /run");
    assert_eq!(status, 200, "first /run: {first}");
    let (env, report) = split_envelope(&first).expect("enveloped response");
    assert_eq!(report, facade_json, "service report bytes must match the facade");
    assert!(env.contains("\"cache\":\"cold\""), "first request is cold: {env}");
    assert!(env.contains("\"warmup_misses\""), "store stats in envelope: {env}");

    // Repeat: same bytes, but the warm-up now comes from the store.
    let (status, second) =
        http::exchange(&addr, "POST", "/run", Some(&body), EXCHANGE_TIMEOUT).expect("second /run");
    assert_eq!(status, 200, "second /run: {second}");
    let (env, report) = split_envelope(&second).expect("enveloped response");
    assert_eq!(report, facade_json, "warm restore must not change a byte of the report");
    assert!(env.contains("\"cache\":\"warm\""), "second request hits the store: {env}");

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn response_cache_and_coalescing_replay_the_exact_facade_bytes() {
    let req = quick_request();
    let facade_json =
        Session::new().run(&req, &RunControl::default()).expect("facade run").to_json();

    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_cap: 4,
        store_dir: None,
        response_cache: 8,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = handle.addr().to_string();
    let body = req.to_json();

    // First request simulates (cold, storeless). The second is answered
    // from the LRU response cache — the envelope says so, and the report
    // inside it is byte-for-byte the facade's.
    let (status, first) =
        http::exchange(&addr, "POST", "/run", Some(&body), EXCHANGE_TIMEOUT).expect("first /run");
    assert_eq!(status, 200, "first /run: {first}");
    let (env, report) = split_envelope(&first).expect("enveloped response");
    assert!(env.contains("\"cache\":\"cold\""), "first request simulates: {env}");
    assert_eq!(report, facade_json, "cold report bytes must match the facade");

    let (status, second) =
        http::exchange(&addr, "POST", "/run", Some(&body), EXCHANGE_TIMEOUT).expect("second /run");
    assert_eq!(status, 200, "second /run: {second}");
    let (env, report) = split_envelope(&second).expect("enveloped response");
    assert!(env.contains("\"cache\":\"response\""), "repeat hits the response cache: {env}");
    assert_eq!(report, facade_json, "cached replay must not change a byte of the report");

    handle.shutdown();
    handle.join();
}

#[test]
fn compare_endpoint_matches_the_facade_for_multi_policy_requests() {
    let req = SimRequest::new(MIX)
        .policies(vec![
            PolicySpec::parse("hf-rf").expect("policy token"),
            PolicySpec::parse("me-lreq").expect("policy token"),
        ])
        .opts(ExperimentOptions::quick());
    let facade_json =
        Session::new().run(&req, &RunControl::default()).expect("facade compare").to_json();

    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_cap: 4,
        store_dir: None,
        ..ServeConfig::default()
    })
    .expect("start server");
    let addr = handle.addr().to_string();

    let (status, body) =
        http::exchange(&addr, "POST", "/compare", Some(&req.to_json()), EXCHANGE_TIMEOUT)
            .expect("/compare");
    assert_eq!(status, 200, "/compare: {body}");
    let (env, report) = split_envelope(&body).expect("enveloped response");
    assert_eq!(report, facade_json, "/compare report bytes must match the facade");
    assert!(env.contains("\"store\":null"), "storeless server advertises no store: {env}");

    handle.shutdown();
    handle.join();
}
