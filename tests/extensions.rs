//! Integration tests for this repo's extensions beyond the paper's
//! evaluated set: fair schedulers, phased programs, online ME estimation,
//! and the optional DRAM timing constraints.

use melreq::experiment::{run_mix, run_mix_custom, ExperimentOptions, ProfileCache};
use melreq::memctrl::ext::{FairQueueing, StallTimeFair};
use melreq::trace::{InstrStream, PhasedStream};
use melreq::workloads::{app_by_code, mix_by_name, SliceKind};
use melreq::{PolicyKind, System, SystemConfig};

fn opts() -> ExperimentOptions {
    ExperimentOptions {
        instructions: 30_000,
        warmup: 15_000,
        profile_instructions: 15_000,
        ..Default::default()
    }
}

#[test]
fn fair_schedulers_run_end_to_end() {
    let cache = ProfileCache::new();
    let mix = mix_by_name("2MEM-4");
    let fq = run_mix_custom(
        &mix,
        "FQ",
        |_me, cores, _seed| (Box::new(FairQueueing::new(cores)), true),
        None,
        &opts(),
        &cache,
    );
    let stf = run_mix_custom(
        &mix,
        "STF",
        |_me, cores, _seed| (Box::new(StallTimeFair::new(cores)), true),
        None,
        &opts(),
        &cache,
    );
    for r in [&fq, &stf] {
        assert!(!r.timed_out, "{} timed out", r.policy);
        assert!(r.smt_speedup > 0.5, "{} speedup {}", r.policy, r.smt_speedup);
        assert!(r.unfairness >= 1.0);
    }
}

#[test]
fn weighted_fq_shifts_service_toward_the_favoured_core() {
    // Same two-hog mix, once with equal shares and once with core 0
    // favoured 8:1 — core 0's IPC must improve at core 1's expense.
    let mix = mix_by_name("2MEM-2");
    let cache = ProfileCache::new();
    let equal = run_mix_custom(
        &mix,
        "FQ",
        |_me, cores, _seed| (Box::new(FairQueueing::new(cores)), true),
        None,
        &opts(),
        &cache,
    );
    let skewed = run_mix_custom(
        &mix,
        "FQ",
        |_me, _cores, _seed| (Box::new(FairQueueing::with_shares(vec![8, 1])), true),
        None,
        &opts(),
        &cache,
    );
    assert!(
        skewed.ipc_multi[0] > equal.ipc_multi[0],
        "favoured core must speed up: {} vs {}",
        skewed.ipc_multi[0],
        equal.ipc_multi[0]
    );
    assert!(
        skewed.ipc_multi[1] < equal.ipc_multi[1],
        "unfavoured core must slow down: {} vs {}",
        skewed.ipc_multi[1],
        equal.ipc_multi[1]
    );
}

#[test]
fn phased_program_runs_in_a_full_system() {
    let phased = PhasedStream::new(
        "phase-test",
        vec![
            (app_by_code('t').build_stream(0, SliceKind::Evaluation(1)), 8_000),
            (app_by_code('c').build_stream(0, SliceKind::Evaluation(2)), 8_000),
        ],
    );
    let cfg = SystemConfig::paper(2, PolicyKind::MeLreqOnline { epoch_cycles: 10_000 });
    let streams: Vec<Box<dyn InstrStream + Send>> = vec![
        Box::new(phased),
        Box::new(app_by_code('e').build_stream(1, SliceKind::Evaluation(0))),
    ];
    let mut sys = System::new(cfg, streams, &[1.0, 1.0]);
    let out = sys.run_measured(16_000, 32_000, 1 << 30);
    assert!(!out.timed_out);
    assert!(out.ipc.iter().all(|&i| i > 0.0));
}

#[test]
fn online_me_is_competitive_with_offline_on_steady_workloads() {
    // On a steady (non-phased) mix, online estimation should converge to
    // the offline profile's behaviour: within a few percent.
    let cache = ProfileCache::new();
    let mix = mix_by_name("4MEM-5");
    let o = ExperimentOptions { instructions: 60_000, warmup: 30_000, ..opts() };
    let offline = run_mix(&mix, &PolicyKind::MeLreq, &o, &cache);
    let online = run_mix(&mix, &PolicyKind::MeLreqOnline { epoch_cycles: 20_000 }, &o, &cache);
    assert!(!online.timed_out);
    let ratio = online.smt_speedup / offline.smt_speedup;
    assert!(
        ratio > 0.95 && ratio < 1.05,
        "online should track offline on steady workloads, ratio {ratio}"
    );
}

#[test]
fn refresh_costs_throughput() {
    // The same single-core streaming run with and without refresh: with
    // refresh enabled, banks periodically block, so the run takes longer.
    let build = |refresh: bool| {
        let mut cfg = SystemConfig::paper(1, PolicyKind::HfRf);
        if refresh {
            cfg.timing = cfg.timing.with_refresh();
        }
        let s: Box<dyn InstrStream + Send> =
            Box::new(app_by_code('c').build_stream(0, SliceKind::Evaluation(0)));
        System::new(cfg, vec![s], &[1.0])
    };
    let mut plain = build(false);
    let a = plain.run_measured(10_000, 30_000, 1 << 30);
    let mut refreshing = build(true);
    let b = refreshing.run_measured(10_000, 30_000, 1 << 30);
    assert!(!a.timed_out && !b.timed_out);
    assert!(refreshing.hierarchy().controller().dram().refresh_count() > 0, "refresh never fired");
    assert!(b.ipc[0] < a.ipc[0], "refresh must cost something: {} vs {}", b.ipc[0], a.ipc[0]);
    // ...but not more than a few percent (tREFI >> tRFC).
    assert!(b.ipc[0] > 0.9 * a.ipc[0], "refresh cost implausibly high");
}

#[test]
fn activation_windows_cost_bank_parallelism() {
    let build = |strict: bool| {
        let mut cfg = SystemConfig::paper(1, PolicyKind::HfRf);
        if strict {
            cfg.timing = cfg.timing.with_activation_windows();
        }
        let s: Box<dyn InstrStream + Send> =
            Box::new(app_by_code('c').build_stream(0, SliceKind::Evaluation(0)));
        System::new(cfg, vec![s], &[1.0])
    };
    let mut plain = build(false);
    let a = plain.run_measured(10_000, 30_000, 1 << 30);
    let mut strict = build(true);
    let b = strict.run_measured(10_000, 30_000, 1 << 30);
    assert!(!a.timed_out && !b.timed_out);
    assert!(
        b.ipc[0] <= a.ipc[0] * 1.001,
        "tRRD/tFAW cannot speed anything up: {} vs {}",
        b.ipc[0],
        a.ipc[0]
    );
}
