//! Cross-crate integration tests: whole-system runs through the public
//! `melreq` API, checking the invariants a downstream user relies on.

use melreq::experiment::{run_mix, ExperimentOptions, ProfileCache};
use melreq::trace::InstrStream;
use melreq::workloads::{mix_by_name, SliceKind};
use melreq::{PolicyKind, System, SystemConfig};

fn build(mix_name: &str, policy: PolicyKind) -> System {
    let mix = mix_by_name(mix_name);
    let cfg = SystemConfig::paper(mix.cores(), policy);
    let streams: Vec<Box<dyn InstrStream + Send>> = mix
        .apps()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            Box::new(a.build_stream(i, SliceKind::Evaluation(0))) as Box<dyn InstrStream + Send>
        })
        .collect();
    let me: Vec<f64> = (0..mix.cores()).map(|i| 1.0 + i as f64).collect();
    System::new(cfg, streams, &me)
}

#[test]
fn every_policy_completes_a_mem_mix() {
    for policy in PolicyKind::figure2_set() {
        let mut sys = build("2MEM-4", policy.clone());
        let out = sys.run_measured(5_000, 10_000, 1 << 27);
        assert!(!out.timed_out, "{} timed out", policy.name());
        assert!(
            out.ipc.iter().all(|&ipc| ipc > 0.0),
            "{} produced a zero-IPC core: {:?}",
            policy.name(),
            out.ipc
        );
    }
}

#[test]
fn fixed_priority_policies_complete() {
    for policy in PolicyKind::figure3_set(2) {
        if matches!(policy, PolicyKind::Fixed { .. } | PolicyKind::Me) {
            let mut sys = build("2MEM-1", policy.clone());
            let out = sys.run_measured(5_000, 10_000, 1 << 27);
            assert!(!out.timed_out, "{} timed out", policy.name());
        }
    }
}

#[test]
fn fcfs_and_fcfs_rf_complete() {
    for policy in [PolicyKind::Fcfs, PolicyKind::FcfsRf] {
        let mut sys = build("2MEM-2", policy.clone());
        let out = sys.run_measured(5_000, 10_000, 1 << 27);
        assert!(!out.timed_out, "{} timed out", policy.name());
    }
}

#[test]
fn whole_experiment_is_deterministic() {
    let opts = ExperimentOptions::quick();
    let mix = mix_by_name("2MIX-1");
    let a = run_mix(&mix, &PolicyKind::MeLreq, &opts, &ProfileCache::new());
    let b = run_mix(&mix, &PolicyKind::MeLreq, &opts, &ProfileCache::new());
    assert_eq!(a.smt_speedup, b.smt_speedup);
    assert_eq!(a.unfairness, b.unfairness);
    assert_eq!(a.ipc_multi, b.ipc_multi);
    assert_eq!(a.read_latency, b.read_latency);
}

#[test]
fn different_eval_slices_differ() {
    let mix = mix_by_name("2MEM-3");
    let cache = ProfileCache::new();
    let a = run_mix(
        &mix,
        &PolicyKind::HfRf,
        &ExperimentOptions { eval_slice: 0, ..ExperimentOptions::quick() },
        &cache,
    );
    let b = run_mix(
        &mix,
        &PolicyKind::HfRf,
        &ExperimentOptions { eval_slice: 1, ..ExperimentOptions::quick() },
        &cache,
    );
    assert_ne!(a.ipc_multi, b.ipc_multi, "evaluation slices must not be identical");
    // But they are the same program model: IPCs land in the same ballpark.
    for (x, y) in a.ipc_multi.iter().zip(&b.ipc_multi) {
        assert!((x / y).abs() > 0.5 && (x / y).abs() < 2.0, "slices diverge too much: {x} vs {y}");
    }
}

#[test]
fn smt_speedup_is_bounded_by_core_count() {
    let opts = ExperimentOptions::quick();
    let mix = mix_by_name("2MIX-5");
    let r = run_mix(&mix, &PolicyKind::HfRf, &opts, &ProfileCache::new());
    assert!(r.smt_speedup > 0.0);
    // Allow a small tolerance: the multiprogrammed slice is not the exact
    // single-core slice, so a core can slightly "beat" its reference.
    assert!(r.smt_speedup <= mix.cores() as f64 * 1.2, "speedup {}", r.smt_speedup);
    assert!(r.unfairness >= 1.0);
}

#[test]
fn adding_cores_degrades_per_core_ipc() {
    // swim alone vs swim + three more memory hogs.
    let mut solo = build("2MEM-1", PolicyKind::HfRf); // wupwise + swim
    let solo_out = solo.run_measured(5_000, 10_000, 1 << 27);
    let mut four = build("4MEM-1", PolicyKind::HfRf); // wupwise swim mgrid applu
    let four_out = four.run_measured(5_000, 10_000, 1 << 28);
    // swim is core 1 in both mixes.
    assert!(
        four_out.ipc[1] < solo_out.ipc[1] * 1.05,
        "more contention cannot speed swim up: {} vs {}",
        four_out.ipc[1],
        solo_out.ipc[1]
    );
}

#[test]
fn memory_traffic_is_conserved() {
    // Every DRAM byte the controller reports must come from the
    // hierarchy's reads/writes (no phantom traffic).
    let mut sys = build("2MEM-2", PolicyKind::HfRf);
    let out = sys.run_measured(5_000, 10_000, 1 << 27);
    let ctrl = sys.hierarchy().controller();
    let served = ctrl.stats().reads_served.get() + ctrl.stats().writes_served.get();
    let bytes: u64 = out.bytes_by_core.iter().sum();
    assert_eq!(bytes, served * 64, "bytes must equal 64 x transactions");
}
