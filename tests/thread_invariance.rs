//! Thread-count invariance: the work-stealing sweep pool must be a pure
//! performance knob. Pooled sweep results, audit stream hashes, and the
//! deterministic portion of the `reproduce` artifact are asserted
//! bit-identical for worker counts 1, 2, and 8.

use melreq_cli::{run_command, Command};
use melreq_core::experiment::{
    run_mix_audited_observed, ExperimentOptions, MixResult, ObserveOptions, ProfileCache,
    RunControl, SweepStage,
};
use melreq_core::Session;
use melreq_memctrl::policy::PolicyKind;
use melreq_workloads::mix_by_name;
use std::path::PathBuf;
use std::time::Duration;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Canonical text form of everything in a [`MixResult`] that simulation
/// semantics determine. Wall-clock fields are host noise by definition and
/// are zeroed before formatting; `f64` Debug formatting round-trips, so
/// equal strings mean bit-equal values.
fn det_repr(r: &MixResult) -> String {
    let mut r = r.clone();
    r.wall = Duration::ZERO;
    r.warm_wall = Duration::ZERO;
    format!("{r:?}")
}

/// A small two-stage grid sharing one mix across stages, so the pool's
/// cross-stage warm-up deduplication is exercised, not just per-stage
/// forking.
fn stages() -> Vec<SweepStage> {
    vec![
        SweepStage {
            mixes: vec![mix_by_name("2MEM-1"), mix_by_name("2MIX-1")],
            policies: vec![PolicyKind::HfRf, PolicyKind::MeLreq],
        },
        SweepStage { mixes: vec![mix_by_name("2MEM-1")], policies: vec![PolicyKind::Lreq] },
    ]
}

#[test]
fn sweep_results_and_audit_hashes_are_identical_at_any_worker_count() {
    let opts = ExperimentOptions::quick();
    let mut sweep_reprs: Vec<Vec<String>> = Vec::new();
    let mut audit_hashes: Vec<u64> = Vec::new();

    for threads in THREAD_COUNTS {
        let session = Session::new();
        let ctl = RunControl { threads: Some(threads), ..RunControl::default() };
        let results = session.run_sweep_stages(&stages(), &opts, &ctl);
        assert_eq!(results.len(), 2, "one result vector per stage");
        assert_eq!(results[0].len(), 4, "stage 0: 2 mixes x 2 policies");
        assert_eq!(results[1].len(), 1, "stage 1: 1 mix x 1 policy");
        sweep_reprs.push(results.iter().flatten().map(det_repr).collect());

        // An audited single run alongside the pool: the event-stream
        // hash is the finest-grained determinism witness we have.
        let cache = ProfileCache::new();
        let (_, report, _) = run_mix_audited_observed(
            &mix_by_name("2MEM-1"),
            &PolicyKind::MeLreq,
            &opts,
            &ObserveOptions::default(),
            &cache,
        );
        assert_eq!(report.total_violations, 0, "audited run must be clean");
        audit_hashes.push(report.stream_hash);
    }

    for (i, reprs) in sweep_reprs.iter().enumerate().skip(1) {
        assert_eq!(
            &sweep_reprs[0], reprs,
            "sweep results diverged between {} and {} worker threads",
            THREAD_COUNTS[0], THREAD_COUNTS[i]
        );
    }
    assert!(
        audit_hashes.windows(2).all(|w| w[0] == w[1]),
        "audit stream hashes diverged across worker counts: {audit_hashes:x?}"
    );
}

/// Every deterministic token of the artifact: per-stage result hashes and
/// simulated-cycle counts (wall fields are the only other numbers and are
/// legitimately run-dependent).
fn det_tokens(artifact: &str) -> Vec<String> {
    artifact
        .lines()
        .flat_map(|line| {
            ["\"results_hash\": ", "\"sim_cycles\": "].into_iter().filter_map(|key| {
                let start = line.find(key)? + key.len();
                let rest = &line[start..];
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                Some(format!("{key}{}", &rest[..end]))
            })
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("melreq-thrinv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn reproduce_artifact_is_deterministic_across_worker_counts() {
    let store = temp_dir("store");
    let out_dir = temp_dir("out");
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    // Prime the checkpoint store once: stage-level `sim_cycles` counts
    // simulated cycles only, so a cold-store run (which simulates its
    // warm-ups) legitimately reports more than a warm one. The comparison
    // below must only vary the worker count.
    run_command(&Command::Reproduce {
        smoke: true,
        no_checkpoint: false,
        store: Some(store.to_string_lossy().into_owned()),
        out: out_dir.join("prime.json").to_string_lossy().into_owned(),
        opts: ExperimentOptions::default(),
        threads: Some(2),
        guard: None,
        guard_ratio: 0.25,
        prof_out: None,
    })
    .expect("priming reproduce --smoke");

    let mut token_sets: Vec<Vec<String>> = Vec::new();
    for threads in THREAD_COUNTS {
        let out = out_dir.join(format!("sweep-{threads}.json"));
        run_command(&Command::Reproduce {
            smoke: true,
            no_checkpoint: false,
            store: Some(store.to_string_lossy().into_owned()),
            out: out.to_string_lossy().into_owned(),
            opts: ExperimentOptions::default(),
            threads: Some(threads),
            guard: None,
            guard_ratio: 0.25,
            prof_out: None,
        })
        .expect("reproduce --smoke");
        let artifact = std::fs::read_to_string(&out).expect("read artifact");
        assert!(
            artifact.contains(&format!("\"threads\": {threads}")),
            "artifact must record its worker count"
        );
        let tokens = det_tokens(&artifact);
        assert!(tokens.len() >= 6, "expected per-stage hashes and cycle counts: {tokens:?}");
        assert!(
            tokens.iter().any(|t| t.contains("results_hash") && !t.contains("null")),
            "at least one grid stage must report a results hash: {tokens:?}"
        );
        token_sets.push(tokens);
    }

    for (i, tokens) in token_sets.iter().enumerate().skip(1) {
        assert_eq!(
            &token_sets[0], tokens,
            "reproduce artifact diverged between {} and {} worker threads",
            THREAD_COUNTS[0], THREAD_COUNTS[i]
        );
    }

    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_dir_all(&out_dir);
}
