//! Shape tests against the paper's qualitative claims, at reduced scale.
//!
//! These are the "does the reproduction still reproduce?" regression
//! tests: small enough for CI, large enough that the orderings are
//! stable (everything is seeded and deterministic, so there is no
//! flakiness — only a fixed answer that must not silently change).

use melreq::core::profile::profile_app;
use melreq::experiment::{compare_policies, ExperimentOptions, ProfileCache};
use melreq::workloads::{app_by_code, mix_by_name, spec2000, AppClass, SliceKind};
use melreq::PolicyKind;

fn opts() -> ExperimentOptions {
    ExperimentOptions {
        instructions: 60_000,
        warmup: 30_000,
        profile_instructions: 40_000,
        ..Default::default()
    }
}

#[test]
fn table2_me_separates_classes() {
    // Every ILP app must profile a higher memory efficiency than every
    // MEM app — the property Table 2's classification rests on.
    let mut worst_ilp = f64::INFINITY;
    let mut best_mem = 0.0f64;
    for a in spec2000() {
        let p = profile_app(&a, SliceKind::Profiling, 40_000);
        match a.class {
            AppClass::Ilp => worst_ilp = worst_ilp.min(p.me),
            AppClass::Mem => best_mem = best_mem.max(p.me),
        }
    }
    assert!(worst_ilp > best_mem, "ILP floor {worst_ilp} must exceed MEM ceiling {best_mem}");
}

#[test]
fn table2_streaming_apps_demand_most_bandwidth() {
    let swim = profile_app(&app_by_code('c'), SliceKind::Profiling, 40_000);
    let facerec = profile_app(&app_by_code('n'), SliceKind::Profiling, 40_000);
    let eon = profile_app(&app_by_code('t'), SliceKind::Profiling, 40_000);
    assert!(swim.bw_gbs > 2.0 * facerec.bw_gbs, "{} vs {}", swim.bw_gbs, facerec.bw_gbs);
    assert!(facerec.bw_gbs > 10.0 * eon.bw_gbs.max(1e-3), "{}", eon.bw_gbs);
    assert!(swim.me < facerec.me && facerec.me < eon.me);
}

#[test]
fn figure2_me_lreq_beats_baseline_on_4mem() {
    // The headline claim at reduced scale: averaged over two 4-core
    // memory-intensive workloads, ME-LREQ and LREQ outperform the HF-RF
    // baseline. (A single mix at this slice length can sit within noise
    // of the baseline; the average is stable — and deterministic.)
    let cache = ProfileCache::new();
    let o = ExperimentOptions { instructions: 100_000, warmup: 40_000, ..opts() };
    let (mut lreq, mut melreq) = (1.0, 1.0);
    for name in ["4MEM-1", "4MEM-6"] {
        let cmp = compare_policies(
            &mix_by_name(name),
            &[PolicyKind::HfRf, PolicyKind::Lreq, PolicyKind::MeLreq],
            &o,
            &cache,
        );
        lreq *= cmp.speedup_over_baseline(1);
        melreq *= cmp.speedup_over_baseline(2);
    }
    assert!(lreq.sqrt() > 1.0, "LREQ should beat HF-RF on average, got {}", lreq.sqrt());
    assert!(melreq.sqrt() > 1.0, "ME-LREQ should beat HF-RF on average, got {}", melreq.sqrt());
}

#[test]
fn figure3_fixed_priorities_swing_wildly() {
    // FIX-3210 and FIX-0123 must produce clearly different per-core
    // outcomes on an asymmetric workload (the paper's Figure 3 point).
    let cache = ProfileCache::new();
    let mix = mix_by_name("4MEM-4");
    let cmp = compare_policies(&mix, &PolicyKind::figure3_set(4), &opts(), &cache);
    let f3210 = &cmp.results[2];
    let f0123 = &cmp.results[3];
    // The favoured core differs, so the per-core slowdown patterns differ.
    let sd = |r: &melreq::experiment::MixResult, i: usize| r.ipc_single[i] / r.ipc_multi[i];
    assert!(
        sd(f3210, 0) > sd(f0123, 0),
        "core 0 must suffer more under FIX-3210: {} vs {}",
        sd(f3210, 0),
        sd(f0123, 0)
    );
    assert!(
        sd(f0123, 3) > sd(f3210, 3),
        "core 3 must suffer more under FIX-0123: {} vs {}",
        sd(f0123, 3),
        sd(f3210, 3)
    );
}

#[test]
fn figure4_scheduling_affects_read_latency() {
    let cache = ProfileCache::new();
    let mix = mix_by_name("4MEM-5");
    let cmp = compare_policies(
        &mix,
        &[PolicyKind::HfRf, PolicyKind::Me, PolicyKind::MeLreq],
        &opts(),
        &cache,
    );
    // The fixed-priority ME scheme must produce a wider per-core latency
    // spread than the baseline (the starvation signature of Fig. 4 right).
    let spread = |r: &melreq::experiment::MixResult| {
        let max = r.read_latency.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = r.read_latency.iter().copied().fold(f64::INFINITY, f64::min);
        max / min
    };
    assert!(
        spread(&cmp.results[1]) > spread(&cmp.results[0]),
        "ME must starve someone: spread {} vs baseline {}",
        spread(&cmp.results[1]),
        spread(&cmp.results[0])
    );
    // And ME-LREQ must keep the spread below the fixed-priority scheme.
    assert!(
        spread(&cmp.results[2]) < spread(&cmp.results[1]),
        "ME-LREQ must balance better than ME: {} vs {}",
        spread(&cmp.results[2]),
        spread(&cmp.results[1])
    );
}

#[test]
fn figure5_me_is_less_fair_than_me_lreq() {
    let cache = ProfileCache::new();
    let mix = mix_by_name("4MEM-4");
    let cmp = compare_policies(&mix, &[PolicyKind::Me, PolicyKind::MeLreq], &opts(), &cache);
    assert!(
        cmp.results[0].unfairness > cmp.results[1].unfairness,
        "fixed ME priority must be less fair than ME-LREQ: {} vs {}",
        cmp.results[0].unfairness,
        cmp.results[1].unfairness
    );
}
