//! Microbenchmarks of the cache substrate: tag lookups, fills with LRU
//! eviction, and MSHR allocate/complete cycles.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use melreq_cache::{CacheArray, CacheConfig, MshrFile};

fn bench_hits(c: &mut Criterion) {
    let mut cache = CacheArray::new(CacheConfig::l1d_paper());
    for i in 0..512u64 {
        cache.fill(i * 64, false);
    }
    c.bench_function("cache/l1d_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.access(black_box(i * 64), false))
        });
    });
}

fn bench_fill_evict(c: &mut Criterion) {
    c.bench_function("cache/l2_fill_with_eviction", |b| {
        let mut cache = CacheArray::new(CacheConfig::l2_paper());
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            black_box(cache.fill(black_box(addr), addr.is_multiple_of(3)))
        });
    });
}

fn bench_mshr(c: &mut Criterion) {
    c.bench_function("cache/mshr_allocate_complete", |b| {
        let mut mshr: MshrFile<u32> = MshrFile::new(32);
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            mshr.allocate(addr, 1);
            mshr.allocate(addr + 16, 2); // merge
            black_box(mshr.complete(addr))
        });
    });
}

criterion_group!(benches, bench_hits, bench_fill_evict, bench_mshr);
criterion_main!(benches);
