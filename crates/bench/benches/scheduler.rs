//! Microbenchmarks of the scheduling decision itself — the operation the
//! paper argues must stay implementable in controller hardware. Measures
//! the software-model cost of one `select` over a full candidate set for
//! every policy, including ME-LREQ's table lookups and tie-breaking.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use melreq_memctrl::policy::{Candidate, PolicyKind};
use melreq_memctrl::request::ReqId;
use melreq_stats::types::CoreId;

fn candidates(n: usize, cores: usize) -> Vec<Candidate> {
    (0..n)
        .map(|i| Candidate {
            id: ReqId(i as u64),
            core: CoreId((i % cores) as u16),
            row_hit: i % 5 == 0,
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let cores = 8;
    let me: Vec<f64> = (0..cores).map(|i| 1.0 + i as f64 * 7.0).collect();
    let pending: Vec<u32> = (0..cores).map(|i| 1 + (i as u32 * 3) % 17).collect();
    let mut group = c.benchmark_group("scheduler/select_32_candidates");
    for kind in PolicyKind::figure2_set() {
        let cands = candidates(32, cores);
        let mut policy = kind.build(&me, cores, 42);
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(policy.select(black_box(&cands), black_box(&pending))));
        });
    }
    group.finish();
}

fn bench_queue_sizes(c: &mut Criterion) {
    let cores = 8;
    let me: Vec<f64> = (0..cores).map(|i| 1.0 + i as f64 * 7.0).collect();
    let pending: Vec<u32> = (0..cores).map(|i| 1 + i as u32).collect();
    let mut group = c.benchmark_group("scheduler/me_lreq_by_queue_depth");
    for n in [4usize, 16, 64] {
        let cands = candidates(n, cores);
        let mut policy = PolicyKind::MeLreq.build(&me, cores, 42);
        group.bench_function(format!("{n}_candidates"), |b| {
            b.iter(|| black_box(policy.select(black_box(&cands), black_box(&pending))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_queue_sizes);
criterion_main!(benches);
