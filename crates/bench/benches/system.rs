//! End-to-end simulator throughput: simulated cycles and committed
//! instructions per wall-clock second for representative configurations.
//! This is the number that determines how long the figure harnesses take.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use melreq_core::System;
use melreq_core::SystemConfig;
use melreq_memctrl::policy::PolicyKind;
use melreq_trace::InstrStream;
use melreq_workloads::{app_by_code, SliceKind};

fn build(cores: usize, codes: &str, policy: PolicyKind) -> System {
    let cfg = SystemConfig::paper(cores, policy);
    let streams: Vec<Box<dyn InstrStream + Send>> = codes
        .chars()
        .enumerate()
        .map(|(i, ch)| {
            Box::new(app_by_code(ch).build_stream(i, SliceKind::Evaluation(0)))
                as Box<dyn InstrStream + Send>
        })
        .collect();
    let me = vec![1.0; cores];
    System::new(cfg, streams, &me)
}

fn bench_single_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("system/10k_cycles");
    group.sample_size(10);
    for (label, codes) in [("ilp_1core", "t"), ("mem_1core", "c")] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || build(1, codes, PolicyKind::HfRf),
                |mut sys| {
                    for _ in 0..10_000 {
                        sys.tick();
                    }
                    black_box(sys.cores()[0].committed())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_four_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("system/10k_cycles_4core");
    group.sample_size(10);
    for kind in [PolicyKind::HfRf, PolicyKind::MeLreq] {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || build(4, "bcde", kind.clone()),
                |mut sys| {
                    for _ in 0..10_000 {
                        sys.tick();
                    }
                    black_box(sys.now())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_core, bench_four_core);
criterion_main!(benches);
