//! Microbenchmarks of the DDR2 model: address decoding, bank state
//! transitions and whole-channel transaction issue. These bound the
//! per-transaction cost of the simulator's memory side.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use melreq_dram::{DramGeometry, DramSystem};
use melreq_stats::types::AccessKind;

fn bench_decode(c: &mut Criterion) {
    let g = DramGeometry::paper();
    c.bench_function("dram/decode", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x4373).wrapping_mul(0x9E3779B97F4A7C15) & 0x00FF_FFFF_FFC0;
            black_box(g.decode(black_box(addr)))
        });
    });
}

fn bench_issue_stream(c: &mut Criterion) {
    c.bench_function("dram/issue_sequential_stream", |b| {
        b.iter_batched(
            DramSystem::paper,
            |mut d| {
                let mut now = 0;
                for i in 0..256u64 {
                    let loc = d.decode(i * 64);
                    while !d.can_issue(&loc, now) {
                        now += 1;
                    }
                    let s = d.issue(&loc, AccessKind::Read, now, false);
                    black_box(s);
                    now += 1;
                }
                d
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_issue_random(c: &mut Criterion) {
    c.bench_function("dram/issue_random_banks", |b| {
        b.iter_batched(
            DramSystem::paper,
            |mut d| {
                let mut now = 0;
                let mut addr = 0u64;
                for _ in 0..256 {
                    addr =
                        addr.wrapping_add(0x12345).wrapping_mul(6364136223846793005) & 0x3FFF_FFC0;
                    let loc = d.decode(addr);
                    while !d.can_issue(&loc, now) {
                        now += 1;
                    }
                    black_box(d.issue(&loc, AccessKind::Read, now, false));
                    now += 1;
                }
                d
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_decode, bench_issue_stream, bench_issue_random);
criterion_main!(benches);
