//! Shared harness code for the table/figure reproduction binaries.
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | binary   | paper artifact |
//! |----------|----------------|
//! | `table2` | Table 2 — application class + memory efficiency (add `--mixes` for Table 3) |
//! | `fig2`   | Figure 2 — SMT speedup of HF-RF/ME/RR/LREQ/ME-LREQ on 2/4/8 cores |
//! | `fig3`   | Figure 3 — fixed-priority straw-men (FIX-0123 / FIX-3210) vs ME |
//! | `fig4`   | Figure 4 — average and per-core memory read latency |
//! | `fig5`   | Figure 5 — unfairness of the five schemes |
//! | `ablation` | design-choice studies (quantization, tie-breaks, drain thresholds) |
//!
//! All binaries accept `--instructions N`, `--warmup N`, `--profile N`
//! and `--slice K` to trade fidelity for runtime (defaults keep each
//! figure under a few minutes on a laptop; the paper's 100 M-instruction
//! slices would take hours but change only absolute values, not the
//! ordering — see EXPERIMENTS.md).

use melreq_core::experiment::ExperimentOptions;

/// Parse the common harness flags from `std::env::args`, starting from
/// `defaults`. Unknown flags abort with a usage message.
pub fn parse_opts(defaults: ExperimentOptions) -> (ExperimentOptions, Vec<String>) {
    parse_opts_from(std::env::args().skip(1).collect(), defaults)
}

/// Testable core of [`parse_opts`]: returns the options plus any
/// non-flag (positional / boolean) arguments for the binary to interpret.
pub fn parse_opts_from(
    args: Vec<String>,
    mut opts: ExperimentOptions,
) -> (ExperimentOptions, Vec<String>) {
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> u64 {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
                .parse()
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        };
        match a.as_str() {
            "--instructions" => opts.instructions = grab("--instructions"),
            "--warmup" => opts.warmup = grab("--warmup"),
            "--profile" => opts.profile_instructions = grab("--profile"),
            "--slice" => opts.eval_slice = grab("--slice") as u32,
            _ => rest.push(a),
        }
    }
    (opts, rest)
}

/// Geometric-mean helper for "average improvement" rows (ratios average
/// multiplicatively).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for v in values {
        assert!(v > 0.0, "geomean needs positive values");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_passes_rest() {
        let (o, rest) = parse_opts_from(
            vec![
                "--instructions".into(),
                "5000".into(),
                "--mixes".into(),
                "--slice".into(),
                "3".into(),
            ],
            ExperimentOptions::quick(),
        );
        assert_eq!(o.instructions, 5000);
        assert_eq!(o.eval_slice, 3);
        assert_eq!(rest, vec!["--mixes".to_string()]);
    }

    #[test]
    #[should_panic(expected = "--warmup requires a value")]
    fn missing_value_panics() {
        let _ = parse_opts_from(vec!["--warmup".into()], ExperimentOptions::quick());
    }

    #[test]
    fn geomean_of_ratios() {
        let g = geomean([2.0, 0.5]);
        assert!((g - 1.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }
}
