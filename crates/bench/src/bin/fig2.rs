//! Regenerates **Figure 2** of the paper: SMT speedup of the five
//! scheduling schemes (HF-RF, ME, RR, LREQ, ME-LREQ) on 2-, 4- and
//! 8-core systems over all Table 3 workload mixes, plus the average
//! improvement of each scheme over the HF-RF baseline.
//!
//! ```text
//! cargo run -p melreq-bench --release --bin fig2 [-- --instructions N --cores 4 --kind mem]
//! ```

use melreq_bench::{geomean, parse_opts};
use melreq_core::experiment::{run_grid, ExperimentOptions, ProfileCache};
use melreq_core::report::{format_table, pct_over};
use melreq_memctrl::policy::PolicyKind;
use melreq_workloads::{mixes_for_cores, MixKind};

fn main() {
    let (opts, rest) = parse_opts(ExperimentOptions::default());
    let mut core_counts = vec![2usize, 4, 8];
    let mut kinds = vec![(MixKind::Mem, "MEM"), (MixKind::Mixed, "MIX")];
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cores" => {
                let n: usize = it.next().expect("--cores N").parse().expect("--cores N");
                core_counts = vec![n];
            }
            "--kind" => match it.next().expect("--kind mem|mix").as_str() {
                "mem" => kinds = vec![(MixKind::Mem, "MEM")],
                "mix" => kinds = vec![(MixKind::Mixed, "MIX")],
                k => panic!("unknown kind {k}"),
            },
            a => panic!("unknown flag {a}"),
        }
    }

    let policies = PolicyKind::figure2_set();
    let cache = ProfileCache::new();
    println!(
        "Figure 2 — SMT speedup by scheduling scheme ({} instructions/core, warm-up {})\n",
        opts.instructions, opts.warmup
    );
    for (kind, kind_name) in &kinds {
        for &cores in &core_counts {
            let mixes = mixes_for_cores(cores, Some(*kind));
            if mixes.is_empty() {
                continue;
            }
            let results = run_grid(&mixes, &policies, &opts, &cache);
            let mut rows = Vec::new();
            let mut rel: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
            for (i, m) in mixes.iter().enumerate() {
                let base = results[i * policies.len()].smt_speedup;
                let mut row = vec![m.name.to_string()];
                for (j, _) in policies.iter().enumerate() {
                    let r = &results[i * policies.len() + j];
                    rel[j].push(r.smt_speedup / base);
                    row.push(format!("{:.3}", r.smt_speedup));
                }
                rows.push(row);
            }
            let mut avg_row = vec!["avg vs HF-RF".to_string()];
            for series in &rel {
                avg_row.push(pct_over(geomean(series.iter().copied()), 1.0));
            }
            rows.push(avg_row);
            let headers: Vec<&str> = std::iter::once("workload")
                .chain(policies.iter().map(melreq_memctrl::PolicyKind::name))
                .collect();
            println!("-- {cores}-core {kind_name} workloads --");
            println!("{}", format_table(&headers, &rows));
        }
    }
    println!(
        "Paper shape: ME-LREQ best, LREQ second; ME/RR near or below the HF-RF \
         baseline; improvements grow with the number of cores."
    );
}
