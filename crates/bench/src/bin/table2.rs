//! Regenerates **Table 2** of the paper: per-application class and memory
//! efficiency, profiled on the single-core reference machine.
//!
//! With `--mixes`, also prints **Table 3** (the workload mixes verbatim).
//!
//! ```text
//! cargo run -p melreq-bench --release --bin table2 [-- --profile N --mixes]
//! ```

use melreq_bench::parse_opts;
use melreq_core::experiment::ExperimentOptions;
use melreq_core::profile::profile_app;
use melreq_core::report::format_table;
use melreq_workloads::{all_mixes, spec2000, SliceKind};

fn main() {
    let (opts, rest) = parse_opts(ExperimentOptions::default());
    println!(
        "Table 2 — application class and memory efficiency (profiling slice, \
         {} instructions, single core)\n",
        opts.profile_instructions
    );
    let rows: Vec<Vec<String>> = spec2000()
        .iter()
        .map(|a| {
            let p = profile_app(a, SliceKind::Profiling, opts.profile_instructions);
            vec![
                a.name.to_string(),
                a.code.to_string(),
                a.class.to_string(),
                format!("{:.2}", p.ipc),
                format!("{:.3}", p.bw_gbs),
                format!("{:.3}", p.me),
                format!("{:.0}", a.paper_me),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["app", "code", "class", "IPC_1", "BW (GB/s)", "ME (measured)", "ME (paper)"],
            &rows
        )
    );
    println!(
        "Absolute ME differs from the paper (different slice lengths and synthetic \
         substitutes); the scheduling policies only consume the relative ordering."
    );

    if rest.iter().any(|a| a == "--mixes") {
        println!("\nTable 3 — workload mixes\n");
        let rows: Vec<Vec<String>> = all_mixes()
            .iter()
            .map(|m| {
                vec![
                    m.name.to_string(),
                    m.codes.to_string(),
                    m.apps().iter().map(|a| a.name).collect::<Vec<_>>().join(","),
                ]
            })
            .collect();
        println!("{}", format_table(&["mix", "codes", "applications"], &rows));
    }
}
