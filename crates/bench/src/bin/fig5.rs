//! Regenerates **Figure 5** of the paper: unfairness (the ratio of the
//! maximum to the minimum per-program slowdown) of the five schemes on
//! the four-core MEM workloads. 1.0 is perfectly fair; larger is worse.
//!
//! ```text
//! cargo run -p melreq-bench --release --bin fig5 [-- --instructions N]
//! ```

use melreq_bench::parse_opts;
use melreq_core::experiment::{run_grid, ExperimentOptions, ProfileCache};
use melreq_core::report::format_table;
use melreq_memctrl::policy::PolicyKind;
use melreq_workloads::{mixes_for_cores, MixKind};

fn main() {
    let (opts, _) = parse_opts(ExperimentOptions::default());
    let policies = PolicyKind::figure2_set();
    let cache = ProfileCache::new();
    let mixes = mixes_for_cores(4, Some(MixKind::Mem));
    let results = run_grid(&mixes, &policies, &opts, &cache);

    println!(
        "Figure 5 — unfairness (max slowdown / min slowdown), 4-core MEM \
         workloads ({} instructions/core); 1.0 = perfectly fair\n",
        opts.instructions
    );
    let mut rows = Vec::new();
    let mut sums = vec![0.0; policies.len()];
    for (i, m) in mixes.iter().enumerate() {
        let mut row = vec![m.name.to_string()];
        for (j, _) in policies.iter().enumerate() {
            let u = results[i * policies.len() + j].unfairness;
            sums[j] += u;
            row.push(format!("{u:.3}"));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for s in &sums {
        avg.push(format!("{:.3}", s / mixes.len() as f64));
    }
    rows.push(avg);
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(policies.iter().map(melreq_memctrl::PolicyKind::name))
        .collect();
    println!("{}", format_table(&headers, &rows));
    println!(
        "\nPaper shape: ME is the least fair (fixed priority starves low-priority \
         cores); ME-LREQ is the fairest of the five while also performing best."
    );
}
