//! Ablation studies of the design choices called out in DESIGN.md, plus
//! the paper's future-work extension (online ME estimation).
//!
//! Four studies, each on a 4-core memory-intensive workload:
//!
//! 1. **Priority-table quantization** — log-domain (this repo's default)
//!    vs linear (the literal reading of the paper's "scaled
//!    approximately") vs exact floating point (no table — not realizable
//!    in hardware, the fidelity ceiling).
//! 2. **Tie-breaking** — the paper's random pick among equal-priority
//!    cores vs deterministically favouring the lowest core id.
//! 3. **Write-drain thresholds** — the paper's (½, ¼) hysteresis vs
//!    tighter and looser settings.
//! 4. **Offline vs online ME** — profiled tables vs run-time estimation
//!    (`ME-LREQ-ON`), which needs no profiling pass at all.
//!
//! ```text
//! cargo run -p melreq-bench --release --bin ablation [-- --instructions N]
//! ```

use melreq_bench::parse_opts;
use melreq_core::experiment::{run_mix, ExperimentOptions, ProfileCache};
use melreq_core::profile::profile_app;
use melreq_core::{System, SystemConfig};
use melreq_memctrl::policy::{Candidate, MeLreq, PolicyKind, SchedulerPolicy};
use melreq_memctrl::PriorityTable;
use melreq_stats::types::CoreId;
use melreq_trace::InstrStream;
use melreq_workloads::{mix_by_name, Mix, SliceKind};

/// ME-LREQ with exact floating-point priorities (no 10-bit table) and
/// lowest-core-id tie-breaking: the fidelity ceiling of study 1 and the
/// deterministic arm of study 2 in one policy.
#[derive(Debug)]
struct ExactMeLreq {
    me: Vec<f64>,
}

impl SchedulerPolicy for ExactMeLreq {
    fn name(&self) -> &'static str {
        "ME-LREQ-exact"
    }

    fn select(&mut self, cands: &[Candidate], pending: &[u32]) -> usize {
        let best_core: CoreId = cands
            .iter()
            .map(|c| c.core)
            .max_by(|a, b| {
                let pa = self.me[a.index()] / pending[a.index()].max(1) as f64;
                let pb = self.me[b.index()] / pending[b.index()].max(1) as f64;
                pa.partial_cmp(&pb).expect("finite priorities").then(b.index().cmp(&a.index()))
                // tie: lowest core id
            })
            .expect("non-empty");
        cands
            .iter()
            .enumerate()
            .filter(|(_, c)| c.core == best_core)
            .min_by_key(|(_, c)| (!c.row_hit, c.id))
            .map(|(i, _)| i)
            .expect("selected core has a candidate")
    }
}

fn speedup_with_policy(
    mix: &Mix,
    policy: Box<dyn SchedulerPolicy>,
    ipc_single: &[f64],
    opts: &ExperimentOptions,
) -> f64 {
    let cfg = SystemConfig::paper(mix.cores(), PolicyKind::HfRf);
    let streams: Vec<Box<dyn InstrStream + Send>> = mix
        .apps()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            Box::new(a.build_stream(i, SliceKind::Evaluation(opts.eval_slice)))
                as Box<dyn InstrStream + Send>
        })
        .collect();
    let mut sys = System::with_policy(cfg, streams, policy, true);
    let out = sys.run_measured(opts.warmup, opts.instructions, 1 << 34);
    assert!(!out.timed_out, "ablation run timed out");
    out.ipc.iter().zip(ipc_single).map(|(m, s)| m / s).sum()
}

fn main() {
    let (opts, _) = parse_opts(ExperimentOptions::default());
    let cache = ProfileCache::new();
    let mix = mix_by_name("4MEM-4");
    println!("Ablation studies on {} ({} instructions/core)\n", mix.name, opts.instructions);

    // Shared inputs.
    let me: Vec<f64> = mix
        .apps()
        .iter()
        .map(|a| profile_app(a, SliceKind::Profiling, opts.profile_instructions).me)
        .collect();
    let ipc_single: Vec<f64> = mix
        .apps()
        .iter()
        .map(|a| profile_app(a, SliceKind::Evaluation(opts.eval_slice), opts.instructions).ipc)
        .collect();

    // Study 1 + 2: quantization and tie-breaking. Run on the MEM mix and
    // on a MIX workload — the ME dynamic range of a MIX mix (cache-
    // resident apps profile ME in the thousands) is where linear
    // quantization can underflow the low-ME cores.
    println!("1+2. priority representation and tie-breaking:");
    let seed = 0xC0FFEE;
    for probe in [mix, mix_by_name("4MIX-2")] {
        let probe_me: Vec<f64> = probe
            .apps()
            .iter()
            .map(|a| profile_app(a, SliceKind::Profiling, opts.profile_instructions).me)
            .collect();
        let probe_single: Vec<f64> = probe
            .apps()
            .iter()
            .map(|a| profile_app(a, SliceKind::Evaluation(opts.eval_slice), opts.instructions).ipc)
            .collect();
        println!("   on {}:", probe.name);
        let variants: Vec<(&str, Box<dyn SchedulerPolicy>)> = vec![
            ("log-quantized table, random ties (default)", Box::new(MeLreq::new(&probe_me, seed))),
            (
                "linear-quantized table, random ties",
                Box::new(MeLreq::with_table(PriorityTable::new_linear(&probe_me), seed)),
            ),
            ("exact float, lowest-core ties", Box::new(ExactMeLreq { me: probe_me.clone() })),
        ];
        for (label, policy) in variants {
            let s = speedup_with_policy(&probe, policy, &probe_single, &opts);
            println!("     {label:46} speedup = {s:.3}");
        }
    }

    // Study 3: write-drain thresholds.
    println!("\n3. write-drain hysteresis (start/stop of 64-entry buffer):");
    for (start, stop) in [(32usize, 16usize), (48, 24), (16, 8)] {
        let mut cfg = SystemConfig::paper(mix.cores(), PolicyKind::MeLreq);
        cfg.ctrl.drain_start = start;
        cfg.ctrl.drain_stop = stop;
        let streams: Vec<Box<dyn InstrStream + Send>> = mix
            .apps()
            .iter()
            .enumerate()
            .map(|(i, a)| {
                Box::new(a.build_stream(i, SliceKind::Evaluation(opts.eval_slice)))
                    as Box<dyn InstrStream + Send>
            })
            .collect();
        let mut sys = System::new(cfg, streams, &me);
        let out = sys.run_measured(opts.warmup, opts.instructions, 1 << 34);
        let speedup: f64 = out.ipc.iter().zip(&ipc_single).map(|(m, s)| m / s).sum();
        let marker = if (start, stop) == (32, 16) { " (paper)" } else { "" };
        println!("   drain at {start:>2}/{stop:>2}{marker:8} speedup = {speedup:.3}");
    }

    // Study 3b: page policy + interleaving (the configuration choice the
    // paper makes in Section 4.1).
    println!("\n3b. page policy and interleaving (HF-RF baseline machine):");
    for (label, geometry, ctrl) in [
        (
            "close page + cache-line interleave (paper)",
            melreq_dram::DramGeometry::paper(),
            melreq_memctrl::controller::ControllerConfig::paper(),
        ),
        (
            "open page + page interleave",
            melreq_dram::DramGeometry::paper_page_interleaved(),
            melreq_memctrl::controller::ControllerConfig::paper_open_page(),
        ),
    ] {
        let mut cfg = SystemConfig::paper(mix.cores(), PolicyKind::HfRf);
        cfg.geometry = geometry;
        cfg.ctrl = ctrl;
        let streams: Vec<Box<dyn InstrStream + Send>> = mix
            .apps()
            .iter()
            .enumerate()
            .map(|(i, a)| {
                Box::new(a.build_stream(i, SliceKind::Evaluation(opts.eval_slice)))
                    as Box<dyn InstrStream + Send>
            })
            .collect();
        let mut sys = System::new(cfg, streams, &me);
        let out = sys.run_measured(opts.warmup, opts.instructions, 1 << 34);
        let speedup: f64 = out.ipc.iter().zip(&ipc_single).map(|(m, s)| m / s).sum();
        let hit_rate = sys.hierarchy().controller().dram().stats().hit_rate();
        println!("   {label:44} speedup = {speedup:.3}  row-hit rate = {:.1}%", hit_rate * 100.0);
    }

    // Study 4: offline profile vs online estimation.
    println!("\n4. offline vs online memory-efficiency (no profiling pass needed online):");
    for kind in [
        PolicyKind::MeLreq,
        PolicyKind::MeLreqOnline { epoch_cycles: 50_000 },
        PolicyKind::MeLreqOnline { epoch_cycles: 10_000 },
    ] {
        let label = match &kind {
            PolicyKind::MeLreqOnline { epoch_cycles } => {
                format!("{} (epoch {})", kind.name(), epoch_cycles)
            }
            _ => kind.name().to_string(),
        };
        let r = run_mix(&mix, &kind, &opts, &cache);
        println!("   {label:28} speedup = {:.3}  unfair = {:.3}", r.smt_speedup, r.unfairness);
    }
}
