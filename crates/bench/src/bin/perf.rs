//! Simulator performance trajectory harness.
//!
//! Runs a fixed 4-core MEM reference mix (`4MEM-1`) under the paper's five
//! scheduling schemes and records host-side throughput — wall time,
//! simulated cycles per second — plus the process's peak RSS, into
//! `BENCH_sim.json`. The JSON is the perf artifact tracked across PRs:
//! regenerate it before and after a kernel change to quantify the effect.
//!
//! Each policy runs as one single-policy `SimRequest` through the shared
//! `melreq_core::api` facade — the same entry point the CLI and the HTTP
//! service use — so the harness times exactly the production path.
//! Profiling and single-core baselines are pre-warmed into the session
//! cache outside the timed region: the artifact tracks the cost of the
//! multiprogrammed simulation loop, not the (memoized) profiling.
//!
//! ```text
//! cargo run -p melreq-bench --release --bin perf
//!     [-- --instructions N --warmup N --profile N --slice K
//!         --mix NAME --out PATH --tick-exact]
//! ```
//!
//! `--tick-exact` forces the cycle-by-cycle reference loop instead of the
//! event-driven fast-forward kernel, which is exactly what a "before"
//! measurement of the fast-forward optimization looks like.
//!
//! `--guard PATH` compares this run's aggregate sim-cycles/s against the
//! `aggregate_sim_cycles_per_sec` recorded in a previous artifact (e.g.
//! the committed `BENCH_sim.json`) and exits nonzero if it falls below
//! `--guard-ratio` (default 0.25) of it — a loose floor that tolerates
//! slower CI runners but catches order-of-magnitude regressions, such as
//! the trace instrumentation ever costing something while disabled.

use melreq_core::api::{Session, SimRequest};
use melreq_core::experiment::{ExperimentOptions, RunControl};
use melreq_memctrl::policy::PolicyKind;
use melreq_stats::types::Cycle;
use melreq_workloads::mix_by_name;
use std::fmt::Write as _;
use std::time::Instant;

/// One policy's measurement.
struct Row {
    policy: String,
    wall_s: f64,
    sim_cycles: Cycle,
    smt_like_ipc_sum: f64,
}

/// Peak resident-set size of this process in bytes (Linux `VmHWM`;
/// `None` elsewhere or when procfs is unavailable).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Pull one numeric field out of a perf artifact without a JSON parser.
fn read_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let (opts, rest) = melreq_bench::parse_opts(ExperimentOptions::default());
    let mut out_path = "BENCH_sim.json".to_string();
    let mut mix_name = "4MEM-1".to_string();
    let mut tick_exact = false;
    let mut guard_path: Option<String> = None;
    let mut guard_ratio = 0.25_f64;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out PATH"),
            "--mix" => mix_name = it.next().expect("--mix NAME"),
            "--tick-exact" => tick_exact = true,
            "--guard" => guard_path = Some(it.next().expect("--guard PATH")),
            "--guard-ratio" => {
                guard_ratio = it
                    .next()
                    .expect("--guard-ratio R")
                    .parse()
                    .expect("--guard-ratio must be a number in (0, 1]");
            }
            a => panic!("unknown flag {a}"),
        }
    }
    let opts = ExperimentOptions { tick_exact, ..opts };
    let mix = mix_by_name(&mix_name);

    // Profile and single-core baselines outside the timed region: both
    // are memoized in the session cache, so each timed request below
    // pays only for its multiprogrammed run.
    let session = Session::new();
    for i in 0..mix.cores() {
        let _ = session.cache().profile(&mix, i, &opts);
        let _ = session.cache().ipc_single(&mix, i, &opts);
    }

    let policies = [
        PolicyKind::HfRf,
        PolicyKind::Lreq,
        PolicyKind::Me,
        PolicyKind::MeLreq,
        PolicyKind::MeLreqOnline { epoch_cycles: 50_000 },
    ];

    let mut rows = Vec::new();
    let total_start = Instant::now();
    for kind in &policies {
        let req = SimRequest::new(mix.name).policy(kind.clone()).opts(opts);
        let t0 = Instant::now();
        let report = session
            .run(&req, &RunControl::default())
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", kind.name(), mix.name));
        let wall_s = t0.elapsed().as_secs_f64();
        let p = &report.policies[0];
        assert!(!p.timed_out, "{} timed out on {}", kind.name(), mix.name);
        rows.push(Row {
            policy: p.policy.clone(),
            wall_s,
            sim_cycles: p.sim_cycles,
            smt_like_ipc_sum: p.ipc_multi.iter().sum(),
        });
    }
    let total_wall_s = total_start.elapsed().as_secs_f64();

    let mut json = String::new();
    let _ = writeln!(json, "{{\n  \"schema_version\": {},", melreq_core::api::SCHEMA_VERSION);
    let _ = writeln!(json, "  \"mix\": \"{}\",", json_escape(mix.name));
    let _ = writeln!(json, "  \"instructions\": {},", opts.instructions);
    let _ = writeln!(json, "  \"warmup\": {},", opts.warmup);
    let _ = writeln!(json, "  \"tick_exact\": {tick_exact},");
    let _ = writeln!(
        json,
        "  \"kernel\": \"{}\",",
        if tick_exact { "tick-exact" } else { "fast-forward" }
    );
    json.push_str("  \"policies\": [\n");
    println!("simulator throughput on {} ({} instr/core):", mix.name, opts.instructions);
    for (i, r) in rows.iter().enumerate() {
        let cps = r.sim_cycles as f64 / r.wall_s.max(1e-9);
        let _ = write!(
            json,
            "    {{\"policy\": \"{}\", \"wall_s\": {:.6}, \"sim_cycles\": {}, \
             \"sim_cycles_per_sec\": {:.0}, \"ipc_sum\": {:.4}}}",
            json_escape(&r.policy),
            r.wall_s,
            r.sim_cycles,
            cps,
            r.smt_like_ipc_sum,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        println!(
            "  {:<10} {:>10} sim cycles in {:>8.3} s  ->  {:>6.2} Mcycles/s",
            r.policy,
            r.sim_cycles,
            r.wall_s,
            cps / 1e6
        );
    }
    json.push_str("  ],\n");
    let agg_cycles: u64 = rows.iter().map(|r| r.sim_cycles).sum();
    let agg_wall: f64 = rows.iter().map(|r| r.wall_s).sum();
    let agg_cps = agg_cycles as f64 / agg_wall.max(1e-9);
    let _ = writeln!(json, "  \"total_wall_s\": {total_wall_s:.6},");
    let _ = writeln!(json, "  \"aggregate_sim_cycles_per_sec\": {agg_cps:.0},");
    match peak_rss_bytes() {
        Some(b) => {
            let _ = writeln!(json, "  \"peak_rss_bytes\": {b}");
        }
        None => json.push_str("  \"peak_rss_bytes\": null\n"),
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!(
        "aggregate: {:.2} Mcycles/s over {} policies ({} kernel); peak RSS {} -> {}",
        agg_cps / 1e6,
        rows.len(),
        if tick_exact { "tick-exact" } else { "fast-forward" },
        peak_rss_bytes().map_or_else(|| "n/a".to_string(), |b| format!("{} MiB", b / (1 << 20))),
        out_path
    );

    if let Some(path) = guard_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read guard baseline {path}: {e}"));
        let base_cps = read_json_number(&baseline, "aggregate_sim_cycles_per_sec")
            .unwrap_or_else(|| panic!("no aggregate_sim_cycles_per_sec in {path}"));
        let floor = base_cps * guard_ratio;
        if agg_cps < floor {
            eprintln!(
                "perf guard FAILED: {:.2} Mcycles/s is below {:.0}% of the \
                 {:.2} Mcycles/s baseline in {path}",
                agg_cps / 1e6,
                guard_ratio * 100.0,
                base_cps / 1e6
            );
            std::process::exit(1);
        }
        println!(
            "perf guard OK: {:.2} Mcycles/s >= {:.0}% of the {:.2} Mcycles/s baseline ({path})",
            agg_cps / 1e6,
            guard_ratio * 100.0,
            base_cps / 1e6
        );
    }
}
