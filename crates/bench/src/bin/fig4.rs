//! Regenerates **Figure 4** of the paper: memory read latency under the
//! five schemes on the four-core MEM workloads.
//!
//! * Left plot — average read latency per workload and scheme.
//! * Right plot (`--per-core`, also printed by default) — per-core read
//!   latency for 4MEM-1 and 4MEM-5, exposing the starvation of the ME
//!   fixed-priority scheme (one core's latency explodes) and ME-LREQ's
//!   dynamic correction.
//!
//! ```text
//! cargo run -p melreq-bench --release --bin fig4 [-- --instructions N]
//! ```

use melreq_bench::parse_opts;
use melreq_core::experiment::{run_grid, ExperimentOptions, ProfileCache};
use melreq_core::report::format_table;
use melreq_memctrl::policy::PolicyKind;
use melreq_workloads::{mixes_for_cores, MixKind};

fn main() {
    let (opts, _) = parse_opts(ExperimentOptions::default());
    let policies = PolicyKind::figure2_set();
    let cache = ProfileCache::new();
    let mixes = mixes_for_cores(4, Some(MixKind::Mem));
    let results = run_grid(&mixes, &policies, &opts, &cache);

    println!(
        "Figure 4 (left) — average memory read latency in CPU cycles, 4-core MEM \
         workloads ({} instructions/core)\n",
        opts.instructions
    );
    let mut rows = Vec::new();
    let mut sums = vec![0.0; policies.len()];
    for (i, m) in mixes.iter().enumerate() {
        let mut row = vec![m.name.to_string()];
        for (j, _) in policies.iter().enumerate() {
            let lat = results[i * policies.len() + j].mean_read_latency;
            sums[j] += lat;
            row.push(format!("{lat:.0}"));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for s in &sums {
        avg.push(format!("{:.0}", s / mixes.len() as f64));
    }
    rows.push(avg);
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(policies.iter().map(melreq_memctrl::PolicyKind::name))
        .collect();
    println!("{}", format_table(&headers, &rows));

    println!("\nFigure 4 (right) — per-core read latency, workloads 4MEM-1 and 4MEM-5\n");
    for probe in ["4MEM-1", "4MEM-5"] {
        let (i, m) =
            mixes.iter().enumerate().find(|(_, m)| m.name == probe).expect("probe mix present");
        let apps: Vec<&str> = m.apps().iter().map(|a| a.name).collect();
        println!("{probe} ({}):", apps.join(", "));
        let mut rows = Vec::new();
        for (j, p) in policies.iter().enumerate() {
            let r = &results[i * policies.len() + j];
            let mut row = vec![p.name().to_string()];
            row.extend(r.read_latency.iter().map(|l| format!("{l:.0}")));
            let spread = r.read_latency.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                / r.read_latency.iter().copied().fold(f64::INFINITY, f64::min).max(1.0);
            row.push(format!("{spread:.2}x"));
            rows.push(row);
        }
        let mut headers = vec!["scheme"];
        headers.extend(apps.iter().map(|a| &**a));
        headers.push("max/min");
        println!("{}\n", format_table(&headers, &rows));
    }
    println!(
        "Paper shape: ME-LREQ attains the lowest average latency; ME shows the \
         widest per-core spread (fixed priority starves its lowest-priority core)."
    );
}
