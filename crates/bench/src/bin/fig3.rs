//! Regenerates **Figure 3** of the paper: the fixed-priority comparison on
//! four-core systems — HF-RF vs ME vs the two straw-man fixed priority
//! orders FIX-3210 (core 3 highest) and FIX-0123 (core 0 highest).
//!
//! The paper's point: arbitrary fixed priorities swing wildly per
//! workload (helping some, wrecking others), while the ME-guided fixed
//! priority is comparatively consistent — so the profile information
//! matters, and a good scheme must also integrate run-time state
//! (ME-LREQ).
//!
//! ```text
//! cargo run -p melreq-bench --release --bin fig3 [-- --instructions N]
//! ```

use melreq_bench::parse_opts;
use melreq_core::experiment::{run_grid, ExperimentOptions, ProfileCache};
use melreq_core::report::{format_table, pct_over};
use melreq_memctrl::policy::PolicyKind;
use melreq_workloads::mixes_for_cores;

fn main() {
    let (opts, _) = parse_opts(ExperimentOptions::default());
    let policies = PolicyKind::figure3_set(4);
    let cache = ProfileCache::new();
    let mixes = mixes_for_cores(4, None);
    let results = run_grid(&mixes, &policies, &opts, &cache);

    println!(
        "Figure 3 — simple and fixed priority schemes, 4-core systems \
         ({} instructions/core)\n",
        opts.instructions
    );
    let mut rows = Vec::new();
    let mut extremes: Vec<(f64, f64)> = vec![(f64::INFINITY, f64::NEG_INFINITY); policies.len()];
    for (i, m) in mixes.iter().enumerate() {
        let base = results[i * policies.len()].smt_speedup;
        let mut row = vec![m.name.to_string()];
        for (j, _) in policies.iter().enumerate() {
            let r = &results[i * policies.len() + j];
            let rel = r.smt_speedup / base;
            extremes[j].0 = extremes[j].0.min(rel);
            extremes[j].1 = extremes[j].1.max(rel);
            row.push(format!("{:.3} ({})", r.smt_speedup, pct_over(rel, 1.0)));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(policies.iter().map(melreq_memctrl::PolicyKind::name))
        .collect();
    println!("{}", format_table(&headers, &rows));
    println!("\nPer-scheme swing over the baseline (min .. max):");
    for (j, p) in policies.iter().enumerate() {
        println!(
            "  {:9} {} .. {}",
            p.name(),
            pct_over(extremes[j].0, 1.0),
            pct_over(extremes[j].1, 1.0)
        );
    }
    println!(
        "\nPaper shape: FIX-* swings are wide and unpredictable (a workload may \
         gain under one order and lose double-digits under the reverse); ME is \
         comparatively consistent."
    );
}
