//! The workload mixes of Table 3.

use crate::apps::{app_by_code, AppSpec};

/// MEM-only or MEM+ILP mix, per the paper's naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixKind {
    /// All applications memory-intensive (nMEM-k workloads).
    Mem,
    /// Half memory-intensive, half compute-intensive (nMIX-k workloads).
    Mixed,
}

/// One multiprogrammed workload (a row of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Workload name, e.g. "4MEM-1".
    pub name: &'static str,
    /// Application codes, one per core, in core order.
    pub codes: &'static str,
    /// MEM or MIX group.
    pub kind: MixKind,
}

impl Mix {
    /// Number of cores this mix occupies.
    pub fn cores(&self) -> usize {
        self.codes.len()
    }

    /// Resolve the application specs, in core order.
    pub fn apps(&self) -> Vec<AppSpec> {
        self.codes.chars().map(app_by_code).collect()
    }
}

/// All 36 mixes of Table 3 (verbatim codes).
pub fn all_mixes() -> Vec<Mix> {
    use MixKind::{Mem, Mixed};
    vec![
        // 2-core group.
        Mix { name: "2MEM-1", codes: "bc", kind: Mem },
        Mix { name: "2MEM-2", codes: "de", kind: Mem },
        Mix { name: "2MEM-3", codes: "fj", kind: Mem },
        Mix { name: "2MEM-4", codes: "kl", kind: Mem },
        Mix { name: "2MEM-5", codes: "np", kind: Mem },
        Mix { name: "2MEM-6", codes: "qv", kind: Mem },
        Mix { name: "2MIX-1", codes: "ab", kind: Mixed },
        Mix { name: "2MIX-2", codes: "cr", kind: Mixed },
        Mix { name: "2MIX-3", codes: "hd", kind: Mixed },
        Mix { name: "2MIX-4", codes: "ez", kind: Mixed },
        Mix { name: "2MIX-5", codes: "mf", kind: Mixed },
        Mix { name: "2MIX-6", codes: "oj", kind: Mixed },
        // 4-core group.
        Mix { name: "4MEM-1", codes: "bcde", kind: Mem },
        Mix { name: "4MEM-2", codes: "fgij", kind: Mem },
        Mix { name: "4MEM-3", codes: "npqv", kind: Mem },
        Mix { name: "4MEM-4", codes: "bdkl", kind: Mem },
        Mix { name: "4MEM-5", codes: "qvce", kind: Mem },
        Mix { name: "4MEM-6", codes: "cjkq", kind: Mem },
        Mix { name: "4MIX-1", codes: "arbc", kind: Mixed },
        Mix { name: "4MIX-2", codes: "hzde", kind: Mixed },
        Mix { name: "4MIX-3", codes: "mofj", kind: Mixed },
        Mix { name: "4MIX-4", codes: "stkl", kind: Mixed },
        Mix { name: "4MIX-5", codes: "uxnp", kind: Mixed },
        Mix { name: "4MIX-6", codes: "ywqv", kind: Mixed },
        // 8-core group.
        Mix { name: "8MEM-1", codes: "bcdefjkl", kind: Mem },
        Mix { name: "8MEM-2", codes: "npqvbdfv", kind: Mem },
        Mix { name: "8MEM-3", codes: "gicecjkq", kind: Mem },
        Mix { name: "8MEM-4", codes: "bcdenpqv", kind: Mem },
        Mix { name: "8MEM-5", codes: "qvcefjkl", kind: Mem },
        // NOTE: the published table prints 8MEM-6 as "bygicipa", which
        // contains codes Table 2 classes as ILP (y = twolf, a = gzip) —
        // almost certainly a typesetting/scan artifact in the source. We
        // keep the row verbatim rather than invent a correction.
        Mix { name: "8MEM-6", codes: "bygicipa", kind: Mem },
        Mix { name: "8MIX-1", codes: "arhzbcde", kind: Mixed },
        Mix { name: "8MIX-2", codes: "mostfjkl", kind: Mixed },
        Mix { name: "8MIX-3", codes: "uxywnpqv", kind: Mixed },
        Mix { name: "8MIX-4", codes: "armobcfj", kind: Mixed },
        Mix { name: "8MIX-5", codes: "uxhznpde", kind: Mixed },
        Mix { name: "8MIX-6", codes: "stywayfk", kind: Mixed },
    ]
}

/// The mixes for one core count (2, 4 or 8), optionally filtered by kind.
pub fn mixes_for_cores(cores: usize, kind: Option<MixKind>) -> Vec<Mix> {
    all_mixes()
        .into_iter()
        .filter(|m| m.cores() == cores && kind.is_none_or(|k| m.kind == k))
        .collect()
}

/// Look up one mix by its Table 3 name.
pub fn mix_by_name(name: &str) -> Mix {
    all_mixes()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("unknown workload mix '{name}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppClass;

    #[test]
    fn thirty_six_mixes() {
        assert_eq!(all_mixes().len(), 36);
    }

    #[test]
    fn all_codes_resolve() {
        for m in all_mixes() {
            let apps = m.apps();
            assert_eq!(apps.len(), m.cores(), "{}", m.name);
        }
    }

    #[test]
    fn mem_mixes_are_all_mem_class() {
        // 8MEM-6 is excluded: the published row contains ILP codes (a
        // typesetting artifact in the source paper; see `all_mixes`).
        for m in all_mixes().into_iter().filter(|m| m.kind == MixKind::Mem && m.name != "8MEM-6") {
            for a in m.apps() {
                assert_eq!(a.class, AppClass::Mem, "{} contains non-MEM app {}", m.name, a.name);
            }
        }
    }

    #[test]
    fn mixed_mixes_contain_both_classes() {
        for m in all_mixes().into_iter().filter(|m| m.kind == MixKind::Mixed) {
            let apps = m.apps();
            assert!(apps.iter().any(|a| a.class == AppClass::Mem), "{} has no MEM app", m.name);
            assert!(apps.iter().any(|a| a.class == AppClass::Ilp), "{} has no ILP app", m.name);
        }
    }

    #[test]
    fn core_counts_partition() {
        assert_eq!(mixes_for_cores(2, None).len(), 12);
        assert_eq!(mixes_for_cores(4, None).len(), 12);
        assert_eq!(mixes_for_cores(8, None).len(), 12);
        assert_eq!(mixes_for_cores(4, Some(MixKind::Mem)).len(), 6);
    }

    #[test]
    fn paper_examples_match_section_4_2() {
        // "workload 2MEM-1 consists of two memory-intensive applications
        // wupwise and swim".
        let m = mix_by_name("2MEM-1");
        let apps = m.apps();
        assert_eq!(apps[0].name, "wupwise");
        assert_eq!(apps[1].name, "swim");
        // "workload 4MIX-2 mixes two MEM applications mgrid and applu with
        // two ILP applications mesa and apsi".
        let m = mix_by_name("4MIX-2");
        let names: Vec<&str> = m.apps().iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["mesa", "apsi", "mgrid", "applu"]);
    }

    #[test]
    #[should_panic(expected = "unknown workload mix")]
    fn unknown_mix_panics() {
        let _ = mix_by_name("9MEM-1");
    }
}
