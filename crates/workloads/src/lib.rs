//! SPEC CPU2000 application models and the paper's workload mixes.
//!
//! The paper profiles the 26 SPEC2000 benchmarks (Table 2: MEM/ILP class
//! and memory-efficiency value) and composes them into 36 multiprogrammed
//! mixes (Table 3). We cannot ship SPEC binaries, so each benchmark is
//! replaced by a *statistical model* — a [`melreq_trace::SyntheticStream`]
//! parameterization chosen to land the application in the paper's class
//! with a comparable memory-efficiency *magnitude*: streaming FP codes
//! (swim, applu, lucas) saturate bandwidth at low IPC (ME ≈ 1), irregular
//! pointer codes (mcf) crawl at low bandwidth, cache-resident integer
//! codes (eon, perlbmk, twolf) rarely touch DRAM (ME in the thousands).
//!
//! The paper's methodology distinguishes *profiling* simpoints from
//! *evaluation* simpoints; here those are different RNG seeds of the same
//! model ([`SliceKind`]).

pub mod apps;
pub mod mixes;

pub use apps::{app_by_code, spec2000, AppClass, AppSpec, SliceKind};
pub use mixes::{all_mixes, mix_by_name, mixes_for_cores, Mix, MixKind};
