//! The 26 benchmark models (Table 2 substitute).

use melreq_stats::types::Addr;
use melreq_trace::{AddressPattern, OpMix, StreamParams, SyntheticStream};

/// The paper's MEM / ILP classification (Section 4.2: MEM applications
/// gain ≥ 15% under a perfect memory system).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppClass {
    /// Memory-intensive.
    Mem,
    /// Compute-intensive.
    Ilp,
}

impl std::fmt::Display for AppClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppClass::Mem => write!(f, "M"),
            AppClass::Ilp => write!(f, "I"),
        }
    }
}

/// Which "simpoint" of the program to run: the paper randomly selects a
/// 10 M-instruction slice for profiling and different 100 M-instruction
/// slices for evaluation. For a statistical model this maps to disjoint
/// RNG seeds of the same parameterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SliceKind {
    /// The off-line profiling slice used to measure memory efficiency.
    Profiling,
    /// An evaluation slice; the index lets experiments draw several
    /// distinct slices.
    Evaluation(u32),
}

impl SliceKind {
    fn seed_offset(self) -> u64 {
        match self {
            SliceKind::Profiling => 0,
            SliceKind::Evaluation(k) => 0x1000 + k as u64,
        }
    }
}

/// One benchmark model.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Benchmark name (e.g. "swim").
    pub name: &'static str,
    /// Single-letter code used by the workload tables (Table 2/3).
    pub code: char,
    /// MEM or ILP class per Table 2.
    pub class: AppClass,
    /// The memory-efficiency value the paper measured (Table 2) — used
    /// only for documentation and shape comparison; experiments use ME
    /// values profiled on *this* simulator.
    pub paper_me: f64,
    /// Stream model parameters.
    pub params: StreamParams,
}

impl AppSpec {
    /// Instantiate the program for `core_index` (placing its data and code
    /// in a disjoint address region) running slice `slice`.
    pub fn build_stream(&self, core_index: usize, slice: SliceKind) -> SyntheticStream {
        let data_base: Addr = ((core_index as u64) + 1) << 33;
        let code_base: Addr = data_base + (1 << 30);
        // Seed mixes the program identity, the core and the slice so every
        // (app, slot, slice) triple is a distinct but reproducible stream.
        let seed = (self.code as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((core_index as u64) << 8)
            .wrapping_add(slice.seed_offset());
        SyntheticStream::new(self.name, self.params.clone(), data_base, code_base, seed)
    }
}

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

fn mem_params(mem_frac: f64, ws: u64, seq: f64, chase: f64, mix: OpMix, dep: f64) -> StreamParams {
    StreamParams {
        mem_frac,
        load_frac: 0.72,
        pattern: AddressPattern { working_set: ws, seq_prob: seq, stride: 8, chase_prob: chase },
        mix,
        mean_dep_dist: dep,
        chase_dep_frac: if chase > 0.0 { 0.3 } else { 0.0 },
        mispredict_rate: 0.02,
        code_footprint: 64 * KB,
    }
}

fn ilp_params(mem_frac: f64, ws: u64, dep: f64, mispredict: f64, mix: OpMix) -> StreamParams {
    StreamParams {
        mem_frac,
        load_frac: 0.70,
        pattern: AddressPattern { working_set: ws, seq_prob: 0.6, stride: 8, chase_prob: 0.0 },
        mix,
        mean_dep_dist: dep,
        chase_dep_frac: 0.0,
        mispredict_rate: mispredict,
        code_footprint: 32 * KB,
    }
}

/// The full Table 2 roster: 26 models with per-benchmark parameters.
///
/// The tuning targets the paper's *relative* memory-efficiency landscape:
/// streaming FP MEM codes near the bottom (ME ≈ 1–4), irregular MEM codes
/// low, lighter MEM codes in the tens, and cache-resident ILP codes from
/// the tens to the thousands.
pub fn spec2000() -> Vec<AppSpec> {
    let fp = OpMix::floating();
    let int = OpMix::integer();
    vec![
        // --- Integer suite ---
        AppSpec {
            name: "gzip",
            code: 'a',
            class: AppClass::Ilp,
            paper_me: 192.0,
            params: ilp_params(0.25, 256 * KB, 3.0, 0.02, int),
        },
        AppSpec {
            name: "vpr",
            code: 'f',
            class: AppClass::Mem,
            paper_me: 27.0,
            params: mem_params(0.045, 16 * MB, 0.60, 0.10, int, 3.5),
        },
        AppSpec {
            name: "gcc",
            code: 'g',
            class: AppClass::Mem,
            paper_me: 22.0,
            params: mem_params(0.05, 16 * MB, 0.65, 0.06, int, 3.5),
        },
        AppSpec {
            name: "mcf",
            code: 'k',
            class: AppClass::Mem,
            paper_me: 1.0,
            params: mem_params(0.08, 48 * MB, 0.15, 0.45, int, 2.5),
        },
        AppSpec {
            name: "crafty",
            code: 'm',
            class: AppClass::Ilp,
            paper_me: 222.0,
            params: ilp_params(0.22, 320 * KB, 3.5, 0.03, int),
        },
        AppSpec {
            name: "parser",
            code: 'r',
            class: AppClass::Ilp,
            paper_me: 38.0,
            params: ilp_params(0.28, 512 * KB, 2.5, 0.04, int),
        },
        AppSpec {
            name: "eon",
            code: 't',
            class: AppClass::Ilp,
            paper_me: 16276.0,
            params: ilp_params(0.20, 48 * KB, 4.0, 0.01, int),
        },
        AppSpec {
            name: "perlbmk",
            code: 'u',
            class: AppClass::Ilp,
            paper_me: 2923.0,
            params: ilp_params(0.22, 96 * KB, 3.5, 0.015, int),
        },
        AppSpec {
            name: "gap",
            code: 'v',
            class: AppClass::Mem,
            paper_me: 7.0,
            params: mem_params(0.08, 16 * MB, 0.65, 0.05, int, 5.0),
        },
        AppSpec {
            name: "vortex",
            code: 'w',
            class: AppClass::Ilp,
            paper_me: 51.0,
            params: ilp_params(0.27, 448 * KB, 2.8, 0.03, int),
        },
        AppSpec {
            name: "bzip2",
            code: 'x',
            class: AppClass::Ilp,
            paper_me: 216.0,
            params: ilp_params(0.24, 384 * KB, 3.0, 0.02, int),
        },
        AppSpec {
            name: "twolf",
            code: 'y',
            class: AppClass::Ilp,
            paper_me: 951.0,
            params: ilp_params(0.24, 128 * KB, 3.0, 0.02, int),
        },
        // --- Floating-point suite ---
        AppSpec {
            name: "wupwise",
            code: 'b',
            class: AppClass::Mem,
            paper_me: 15.0,
            params: mem_params(0.05, 16 * MB, 0.80, 0.0, fp, 5.0),
        },
        AppSpec {
            name: "swim",
            code: 'c',
            class: AppClass::Mem,
            paper_me: 2.0,
            params: mem_params(0.26, 64 * MB, 0.92, 0.0, fp, 9.0),
        },
        AppSpec {
            name: "mgrid",
            code: 'd',
            class: AppClass::Mem,
            paper_me: 4.0,
            params: mem_params(0.24, 32 * MB, 0.88, 0.0, fp, 9.0),
        },
        AppSpec {
            name: "applu",
            code: 'e',
            class: AppClass::Mem,
            paper_me: 1.0,
            params: mem_params(0.28, 96 * MB, 0.90, 0.0, fp, 9.0),
        },
        AppSpec {
            name: "mesa",
            code: 'h',
            class: AppClass::Ilp,
            paper_me: 78.0,
            params: ilp_params(0.26, 512 * KB, 3.0, 0.02, fp),
        },
        AppSpec {
            name: "galgel",
            code: 'i',
            class: AppClass::Mem,
            paper_me: 8.0,
            params: mem_params(0.14, 16 * MB, 0.75, 0.0, fp, 7.0),
        },
        AppSpec {
            name: "art",
            code: 'j',
            class: AppClass::Mem,
            paper_me: 20.0,
            params: mem_params(0.05, 16 * MB, 0.70, 0.05, fp, 4.0),
        },
        AppSpec {
            name: "equake",
            code: 'l',
            class: AppClass::Mem,
            paper_me: 2.0,
            params: mem_params(0.25, 48 * MB, 0.80, 0.10, fp, 8.0),
        },
        AppSpec {
            name: "facerec",
            code: 'n',
            class: AppClass::Mem,
            paper_me: 40.0,
            params: mem_params(0.035, 16 * MB, 0.85, 0.0, fp, 5.0),
        },
        AppSpec {
            name: "ammp",
            code: 'o',
            class: AppClass::Ilp,
            paper_me: 280.0,
            params: ilp_params(0.24, 256 * KB, 3.2, 0.02, fp),
        },
        AppSpec {
            name: "lucas",
            code: 'p',
            class: AppClass::Mem,
            paper_me: 1.0,
            params: mem_params(0.26, 80 * MB, 0.85, 0.05, fp, 8.0),
        },
        AppSpec {
            name: "fma3d",
            code: 'q',
            class: AppClass::Mem,
            paper_me: 4.0,
            params: mem_params(0.22, 24 * MB, 0.70, 0.05, fp, 8.0),
        },
        AppSpec {
            name: "sixtrack",
            code: 's',
            class: AppClass::Ilp,
            paper_me: 80.0,
            params: ilp_params(0.25, 512 * KB, 3.0, 0.02, fp),
        },
        AppSpec {
            name: "apsi",
            code: 'z',
            class: AppClass::Ilp,
            paper_me: 36.0,
            params: ilp_params(0.27, 640 * KB, 2.8, 0.03, fp),
        },
    ]
}

/// Look up an application by its Table 2 single-letter code.
pub fn app_by_code(code: char) -> AppSpec {
    spec2000()
        .into_iter()
        .find(|a| a.code == code)
        .unwrap_or_else(|| panic!("unknown application code '{code}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use melreq_trace::InstrStream;

    #[test]
    fn roster_has_26_unique_codes() {
        let apps = spec2000();
        assert_eq!(apps.len(), 26);
        let mut codes: Vec<char> = apps.iter().map(|a| a.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 26, "duplicate codes");
    }

    #[test]
    fn class_split_matches_table_2() {
        let apps = spec2000();
        let mem = apps.iter().filter(|a| a.class == AppClass::Mem).count();
        let ilp = apps.iter().filter(|a| a.class == AppClass::Ilp).count();
        assert_eq!(mem, 14, "Table 2 has 14 MEM applications");
        assert_eq!(ilp, 12, "Table 2 has 12 ILP applications");
    }

    #[test]
    fn table2_codes_resolve() {
        for (code, name) in [('a', "gzip"), ('c', "swim"), ('k', "mcf"), ('t', "eon")] {
            assert_eq!(app_by_code(code).name, name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown application code")]
    fn bad_code_panics() {
        let _ = app_by_code('!');
    }

    #[test]
    fn mem_apps_exceed_l2_ilp_apps_fit() {
        // MEM working sets must not fit in the 4 MB shared L2 alone; a
        // single ILP app must fit comfortably.
        for a in spec2000() {
            match a.class {
                AppClass::Mem => assert!(
                    a.params.pattern.working_set > 4 << 20,
                    "{} working set fits in L2",
                    a.name
                ),
                AppClass::Ilp => assert!(
                    a.params.pattern.working_set <= 2 << 20,
                    "{} working set too large for ILP class",
                    a.name
                ),
            }
        }
    }

    #[test]
    fn paper_me_ordering_sanity() {
        // A few anchor relations from Table 2.
        assert!(app_by_code('t').paper_me > app_by_code('u').paper_me); // eon > perlbmk
        assert!(app_by_code('a').paper_me > app_by_code('b').paper_me); // gzip > wupwise
        assert!(app_by_code('c').paper_me < app_by_code('f').paper_me); // swim < vpr
    }

    #[test]
    fn streams_are_core_and_slice_distinct() {
        let app = app_by_code('c');
        let mut a = app.build_stream(0, SliceKind::Profiling);
        let mut b = app.build_stream(0, SliceKind::Evaluation(0));
        let mut c = app.build_stream(1, SliceKind::Profiling);
        let mut same_ab = 0;
        for _ in 0..256 {
            let (oa, ob, oc) = (a.next_op(), b.next_op(), c.next_op());
            if oa == ob {
                same_ab += 1;
            }
            // Different core slots use disjoint address regions.
            assert_ne!(oa.pc >> 33, oc.pc >> 33);
        }
        assert!(same_ab < 128, "profiling and evaluation slices identical");
    }

    #[test]
    fn streams_are_reproducible() {
        let app = app_by_code('k');
        let mut a = app.build_stream(2, SliceKind::Evaluation(3));
        let mut b = app.build_stream(2, SliceKind::Evaluation(3));
        for _ in 0..512 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
