//! Property-based tests of the DRAM model's structural invariants.

use melreq_dram::{Bank, BankState, Channel, DramGeometry, DramTiming, Interleave};
use melreq_stats::types::AccessKind;
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = DramGeometry> {
    (0u32..=2, 0u32..=2, 1u32..=3, 6u32..=13, any::<bool>()).prop_map(
        |(ch, dimm, bank, row, page)| DramGeometry {
            channels: 1 << ch,
            dimms_per_channel: 1 << dimm,
            banks_per_dimm: 1 << bank,
            row_bytes: 1 << row,
            interleave: if page { Interleave::Page } else { Interleave::CacheLine },
        },
    )
}

proptest! {
    /// Decoding any address yields coordinates within the geometry.
    #[test]
    fn decode_fields_in_range(g in arb_geometry(), addr in any::<u64>()) {
        let addr = addr & 0x0000_FFFF_FFFF_FFFF; // keep rows in u64 range
        let loc = g.decode(addr);
        prop_assert!(loc.channel < g.channels);
        prop_assert!(loc.bank < g.banks_per_channel());
        prop_assert!((loc.column as u64) < g.lines_per_row());
    }

    /// The mapping is injective at line granularity: re-encoding the
    /// decoded coordinates recovers the original line index.
    #[test]
    fn decode_is_injective(g in arb_geometry(), addr in any::<u64>()) {
        let addr = addr & 0x0000_FFFF_FFFF_FFFF;
        let loc = g.decode(addr);
        let ch_bits = g.channels.trailing_zeros();
        let bank_bits = g.banks_per_channel().trailing_zeros();
        let col_bits = g.lines_per_row().trailing_zeros();
        let line = match g.interleave {
            Interleave::CacheLine => {
                (((loc.row << col_bits | loc.column as u64) << bank_bits
                    | loc.bank as u64) << ch_bits)
                    | loc.channel as u64
            }
            Interleave::Page => {
                (((loc.row << bank_bits | loc.bank as u64) << ch_bits
                    | loc.channel as u64) << col_bits)
                    | loc.column as u64
            }
        };
        prop_assert_eq!(line, addr >> 6);
    }

    /// Two addresses in the same cache line always decode identically.
    #[test]
    fn same_line_same_location(g in arb_geometry(), addr in any::<u64>(), off in 0u64..64) {
        let addr = addr & 0x0000_FFFF_FFFF_FF00;
        prop_assert_eq!(g.decode(addr), g.decode(addr + off));
    }

    /// Bank invariant: `ready_at` never goes backwards, data is never
    /// ready before the grant, and the latency classes order correctly.
    #[test]
    fn bank_time_is_monotone(
        rows in proptest::collection::vec((0u64..8, any::<bool>(), any::<bool>()), 1..64)
    ) {
        let t = DramTiming::ddr2_800_at_3_2ghz();
        let mut bank = Bank::new();
        let mut now = 0;
        let mut last_ready = 0;
        for (row, keep_open, is_write) in rows {
            now = now.max(bank.ready_at());
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let was_hit = bank.is_row_hit(row);
            let was_closed = matches!(bank.state(), BankState::Closed);
            let (data_start, _) = bank.service(row, kind, now, keep_open, &t);
            let min_latency = if was_hit {
                t.t_cl
            } else if was_closed {
                t.t_rcd + t.t_cl
            } else {
                t.t_rp + t.t_rcd + t.t_cl
            };
            prop_assert_eq!(data_start, now + min_latency);
            prop_assert!(bank.ready_at() >= last_ready, "ready_at went backwards");
            last_ready = bank.ready_at();
            if keep_open {
                prop_assert!(bank.is_row_hit(row));
            } else {
                prop_assert!(matches!(bank.state(), BankState::Closed));
            }
        }
    }

    /// Channel invariant: the data bus never transfers two bursts at
    /// once — consecutive grants' data-ready times are at least one burst
    /// apart.
    #[test]
    fn channel_bus_never_double_booked(
        ops in proptest::collection::vec((0usize..8, 0u64..4), 1..64)
    ) {
        let t = DramTiming::ddr2_800_at_3_2ghz();
        let mut ch = Channel::new(8);
        let mut now = 0;
        let mut readies: Vec<u64> = Vec::new();
        for (bank, row) in ops {
            while !ch.can_issue(bank, now) {
                now += 1;
            }
            let g = ch.issue(bank, row, AccessKind::Read, now, false, &t);
            readies.push(g.data_ready);
            now += 1;
        }
        readies.sort_unstable();
        for w in readies.windows(2) {
            prop_assert!(w[1] >= w[0] + t.burst, "bursts overlap: {} then {}", w[0], w[1]);
        }
    }
}
