//! Per-bank row-buffer state machine.
//!
//! The bank model is expressed twice over one set of scalar transition
//! functions: [`Bank`] packages an `(open_row, ready_at)` pair for
//! unit-level reasoning, while [`crate::channel::Channel`] holds the same
//! scalars in struct-of-arrays form (`Vec<u64>` + `Vec<Cycle>`) so the
//! controller's hot candidate scans walk dense, cache-friendly slices.
//! Both views delegate every transition to the `scalar_*` functions below,
//! so they cannot diverge.

use crate::timing::DramTiming;
use melreq_stats::types::{cyc_add, AccessKind, Cycle};

/// Sentinel value of the `open_row` scalar meaning "all rows closed".
///
/// Row indices come from the address mapping and are bounded by the
/// geometry's rows-per-bank, so `u64::MAX` can never collide with a real
/// row.
pub const NO_OPEN_ROW: u64 = u64::MAX;

/// The observable state of a DRAM bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All rows closed; an ACT may start once `ready_at` passes.
    Closed,
    /// `row` is latched in the row buffer; column accesses may issue.
    Open { row: u64 },
}

/// One DRAM bank: an open-row latch plus a `ready_at` horizon before which
/// no new command sequence may start.
///
/// Time is advanced only by [`Bank::service`]; the bank never needs a
/// per-cycle tick, which keeps the DRAM model O(transactions) rather than
/// O(cycles).
#[derive(Debug, Clone)]
pub struct Bank {
    /// Open-row latch: a row index, or [`NO_OPEN_ROW`] when closed.
    open_row: u64,
    /// Earliest cycle at which the next command sequence may start.
    ready_at: Cycle,
}

/// How a granted transaction found the bank — determines its latency class
/// and is the signal the Hit-First policy ranks on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The addressed row was already open: column access only.
    Hit,
    /// The bank was closed: activate, then column access.
    ClosedMiss,
    /// Another row was open: precharge, activate, then column access.
    Conflict,
}

impl From<RowOutcome> for melreq_audit::GrantOutcome {
    /// The audit stream carries outcomes as plain data so the checker
    /// stays decoupled from this crate's types.
    fn from(o: RowOutcome) -> Self {
        match o {
            RowOutcome::Hit => melreq_audit::GrantOutcome::Hit,
            RowOutcome::ClosedMiss => melreq_audit::GrantOutcome::ClosedMiss,
            RowOutcome::Conflict => melreq_audit::GrantOutcome::Conflict,
        }
    }
}

/// Whether a request for `row` finds it latched.
#[inline]
pub(crate) fn scalar_is_row_hit(open_row: u64, row: u64) -> bool {
    open_row == row && open_row != NO_OPEN_ROW
}

/// Service one transaction for `row` granted at `now` against the scalar
/// pair; returns the bank-side data-start cycle and the row outcome. See
/// [`Bank::service`] for the timing contract.
#[inline]
pub(crate) fn scalar_service(
    open_row: &mut u64,
    ready_at: &mut Cycle,
    row: u64,
    kind: AccessKind,
    now: Cycle,
    keep_open: bool,
    t: &DramTiming,
) -> (Cycle, RowOutcome) {
    let cur = *open_row;
    debug_assert!(*ready_at <= now, "bank busy until {ready_at} at {now}");
    let (data_start, outcome) = if cur == NO_OPEN_ROW {
        (cyc_add(now, t.idle_to_data()), RowOutcome::ClosedMiss)
    } else if cur == row {
        (cyc_add(now, t.hit_to_data()), RowOutcome::Hit)
    } else {
        (cyc_add(now, t.conflict_to_data()), RowOutcome::Conflict)
    };
    let data_end = cyc_add(data_start, t.burst);
    if keep_open {
        *open_row = row;
        // The next column access to the open row may pipeline right
        // behind this one's data transfer.
        *ready_at = data_start;
    } else {
        *open_row = NO_OPEN_ROW;
        // Auto-precharge: tRP after the access completes (plus write
        // recovery for writes). The next ACT must wait it out.
        let recovery = if kind.is_write() { t.t_wr } else { 0 };
        *ready_at = cyc_add(data_end, cyc_add(recovery, t.t_rp));
    }
    (data_start, outcome)
}

/// Apply an all-bank refresh that started at `at` to the scalar pair.
#[inline]
pub(crate) fn scalar_refresh(open_row: &mut u64, ready_at: &mut Cycle, at: Cycle, t_rfc: Cycle) {
    *open_row = NO_OPEN_ROW;
    *ready_at = cyc_add((*ready_at).max(at), t_rfc);
}

/// Explicitly close the row if one is open.
#[inline]
pub(crate) fn scalar_precharge(
    open_row: &mut u64,
    ready_at: &mut Cycle,
    now: Cycle,
    t: &DramTiming,
) {
    let cur = *open_row;
    if cur != NO_OPEN_ROW {
        *open_row = NO_OPEN_ROW;
        *ready_at = cyc_add((*ready_at).max(now), t.t_rp);
    }
}

/// Serialize one bank's scalar pair (tagged open-row latch, then the ready
/// horizon) — the wire format both [`Bank::save_state`] and the channel's
/// struct-of-arrays writer emit.
pub(crate) fn scalar_save_state(open_row: u64, ready_at: Cycle, enc: &mut melreq_snap::Enc) {
    if open_row == NO_OPEN_ROW {
        enc.u8(0);
    } else {
        enc.u8(1);
        enc.u64(open_row);
    }
    enc.u64(ready_at);
}

/// Restore one bank's scalar pair written by [`scalar_save_state`].
pub(crate) fn scalar_load_state(
    dec: &mut melreq_snap::Dec<'_>,
) -> Result<(u64, Cycle), melreq_snap::SnapError> {
    let open_row = match dec.u8()? {
        0 => NO_OPEN_ROW,
        1 => dec.u64()?,
        t => return Err(melreq_snap::SnapError::BadTag(t)),
    };
    let ready_at = dec.u64()?;
    Ok((open_row, ready_at))
}

impl Bank {
    /// A bank with all rows closed, ready immediately.
    pub fn new() -> Self {
        Bank { open_row: NO_OPEN_ROW, ready_at: 0 }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> BankState {
        if self.open_row == NO_OPEN_ROW {
            BankState::Closed
        } else {
            BankState::Open { row: self.open_row }
        }
    }

    /// Earliest cycle the next command sequence may start.
    pub fn ready_at(&self) -> Cycle {
        self.ready_at
    }

    /// Whether a request for `row` would be a row-buffer hit right now.
    pub fn is_row_hit(&self, row: u64) -> bool {
        scalar_is_row_hit(self.open_row, row)
    }

    /// Whether the bank can accept a new command sequence at `now`.
    pub fn can_issue(&self, now: Cycle) -> bool {
        self.ready_at <= now
    }

    /// Service one transaction for `row` granted at `now`.
    ///
    /// Returns the cycle the first data beat may appear on the data bus
    /// (bus arbitration is the channel's job) and the row outcome.
    ///
    /// `keep_open` is the scheduler's close-page decision: `true` leaves
    /// the row latched for a potential follow-up hit, `false` issues
    /// auto-precharge so the bank returns to `Closed`.
    ///
    /// # Panics
    /// Panics (debug) if called before `ready_at` — the controller must
    /// check [`Bank::can_issue`] first.
    pub fn service(
        &mut self,
        row: u64,
        kind: AccessKind,
        now: Cycle,
        keep_open: bool,
        t: &DramTiming,
    ) -> (Cycle, RowOutcome) {
        scalar_service(&mut self.open_row, &mut self.ready_at, row, kind, now, keep_open, t)
    }

    /// Serialize the row-buffer latch and ready horizon.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        scalar_save_state(self.open_row, self.ready_at, enc);
    }

    /// Restore state written by [`Bank::save_state`].
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        let (open_row, ready_at) = scalar_load_state(dec)?;
        self.open_row = open_row;
        self.ready_at = ready_at;
        Ok(())
    }

    /// Apply an all-bank refresh that started at `at`: the row closes and
    /// the bank is unavailable for `t_rfc` cycles (stacked on any work it
    /// was still finishing).
    pub fn refresh(&mut self, at: Cycle, t_rfc: Cycle) {
        scalar_refresh(&mut self.open_row, &mut self.ready_at, at, t_rfc);
    }

    /// Explicitly close the row (used when the controller notices the last
    /// queued same-row request has drained).
    pub fn precharge(&mut self, now: Cycle, t: &DramTiming) {
        scalar_precharge(&mut self.open_row, &mut self.ready_at, now, t);
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::ddr2_800_at_3_2ghz()
    }

    #[test]
    fn new_bank_is_closed_and_ready() {
        let b = Bank::new();
        assert_eq!(b.state(), BankState::Closed);
        assert!(b.can_issue(0));
        assert!(!b.is_row_hit(0));
    }

    #[test]
    fn closed_miss_latency() {
        let mut b = Bank::new();
        let (data, out) = b.service(7, AccessKind::Read, 100, false, &t());
        assert_eq!(out, RowOutcome::ClosedMiss);
        assert_eq!(data, 100 + 40 + 40); // tRCD + tCL
    }

    #[test]
    fn hit_after_keep_open() {
        let mut b = Bank::new();
        let (d1, _) = b.service(7, AccessKind::Read, 0, true, &t());
        assert!(b.is_row_hit(7));
        assert!(b.can_issue(d1));
        let (d2, out) = b.service(7, AccessKind::Read, d1, false, &t());
        assert_eq!(out, RowOutcome::Hit);
        assert_eq!(d2, d1 + 40); // tCL only
    }

    #[test]
    fn conflict_latency_when_other_row_open() {
        let mut b = Bank::new();
        let (d1, _) = b.service(7, AccessKind::Read, 0, true, &t());
        let (d2, out) = b.service(9, AccessKind::Read, d1, false, &t());
        assert_eq!(out, RowOutcome::Conflict);
        assert_eq!(d2, d1 + 40 + 40 + 40); // tRP + tRCD + tCL
    }

    #[test]
    fn auto_precharge_closes_and_blocks() {
        let mut b = Bank::new();
        let (data, _) = b.service(3, AccessKind::Read, 0, false, &t());
        assert_eq!(b.state(), BankState::Closed);
        // Next ACT must wait data_end + tRP.
        assert!(!b.can_issue(data + 16));
        assert!(b.can_issue(data + 16 + 40));
    }

    #[test]
    fn write_recovery_extends_precharge() {
        let mut b = Bank::new();
        let (data, _) = b.service(3, AccessKind::Write, 0, false, &t());
        assert!(!b.can_issue(data + 16 + 40));
        assert!(b.can_issue(data + 16 + 48 + 40));
    }

    #[test]
    fn explicit_precharge() {
        let mut b = Bank::new();
        let (d1, _) = b.service(3, AccessKind::Read, 0, true, &t());
        b.precharge(d1, &t());
        assert_eq!(b.state(), BankState::Closed);
        assert!(!b.can_issue(d1 + 39));
        assert!(b.can_issue(d1 + 40));
    }

    #[test]
    fn precharge_on_closed_bank_is_noop() {
        let mut b = Bank::new();
        b.precharge(100, &t());
        assert!(b.can_issue(0));
    }

    #[test]
    fn no_open_row_sentinel_never_hits() {
        let b = Bank::new();
        // Even a (physically impossible) request for the sentinel row
        // index must not read as a hit on a closed bank.
        assert!(!b.is_row_hit(NO_OPEN_ROW));
    }
}
