//! Physical-address → DRAM-coordinate mapping.
//!
//! Table 1: "2 logic channels (2 physical channels each), 2 DIMMs per
//! physical channel, 4 banks per DIMM", with *cache-line interleaving*
//! (Section 4.1): consecutive cache lines rotate across logical channels
//! first, then banks, so sequential streams spread across all banks —
//! the layout that makes close-page mode effective.
//!
//! Bit layout (low → high):
//!
//! ```text
//! | 6 line offset | channel | bank | dimm | column | row |
//! ```
//!
//! The two physical channels of a logical channel are ganged into one
//! 16-byte data path, so the model addresses *logical* channels; the pair
//! of DIMMs per physical channel appears as `dimms_per_channel = 2` DIMM
//! groups per logical channel, 4 banks each — 8 independent banks per
//! logical channel, 16 in the system.

use melreq_stats::types::{Addr, CACHE_LINE_SHIFT};

/// How consecutive cache lines are distributed over the DRAM structure.
///
/// Section 4.1 of the paper: "The simulation uses the close page mode
/// with cache line interleaving rather than the open page mode with page
/// interleaving since it is more widely used in practice." Both layouts
/// are implemented so that the choice can be studied (see the `ablation`
/// binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Interleave {
    /// Consecutive lines rotate across channels, then banks: maximal
    /// bank-level parallelism, minimal row-buffer locality. Pairs with
    /// close-page row management.
    #[default]
    CacheLine,
    /// Consecutive lines fill a row before moving to the next bank:
    /// maximal row-buffer locality for streams. Pairs with open-page row
    /// management.
    Page,
}

/// Structural geometry of the DRAM system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramGeometry {
    /// Number of logical channels (each with an independent data bus).
    pub channels: usize,
    /// DIMM groups per logical channel.
    pub dimms_per_channel: usize,
    /// Banks per DIMM group.
    pub banks_per_dimm: usize,
    /// Row-buffer (page) size in bytes per bank.
    pub row_bytes: u64,
    /// Address-to-structure mapping.
    pub interleave: Interleave,
}

impl DramGeometry {
    /// The paper's geometry: 2 logical channels × 2 DIMMs × 4 banks,
    /// 4 KiB row buffers, cache-line interleaved.
    pub fn paper() -> Self {
        DramGeometry {
            channels: 2,
            dimms_per_channel: 2,
            banks_per_dimm: 4,
            row_bytes: 4096,
            interleave: Interleave::CacheLine,
        }
    }

    /// The alternative the paper declined: same structure with page
    /// interleaving (use with open-page row management).
    pub fn paper_page_interleaved() -> Self {
        DramGeometry { interleave: Interleave::Page, ..Self::paper() }
    }

    /// Total independent banks per logical channel.
    pub fn banks_per_channel(&self) -> usize {
        self.dimms_per_channel * self.banks_per_dimm
    }

    /// Total banks in the system.
    pub fn total_banks(&self) -> usize {
        self.channels * self.banks_per_channel()
    }

    /// Cache lines per row buffer.
    pub fn lines_per_row(&self) -> u64 {
        self.row_bytes / (1 << CACHE_LINE_SHIFT)
    }

    /// Decode a physical address into DRAM coordinates according to the
    /// configured interleaving.
    pub fn decode(&self, addr: Addr) -> Location {
        debug_assert!(self.channels.is_power_of_two());
        debug_assert!(self.banks_per_channel().is_power_of_two());
        debug_assert!(self.lines_per_row().is_power_of_two());
        let line = addr >> CACHE_LINE_SHIFT;
        let ch_bits = self.channels.trailing_zeros();
        let bank_bits = self.banks_per_channel().trailing_zeros();
        let col_bits = self.lines_per_row().trailing_zeros();
        match self.interleave {
            Interleave::CacheLine => {
                // [offset | channel | bank | column | row]
                let channel = (line & (self.channels as u64 - 1)) as usize;
                let rest = line >> ch_bits;
                let bank = (rest & (self.banks_per_channel() as u64 - 1)) as usize;
                let rest = rest >> bank_bits;
                // melreq-allow(A01): masked to col_bits (< 32) before the cast
                let column = (rest & (self.lines_per_row() - 1)) as u32;
                let row = rest >> col_bits;
                Location { channel, bank, row, column }
            }
            Interleave::Page => {
                // [offset | column | channel | bank | row]
                // melreq-allow(A01): masked to col_bits (< 32) before the cast
                let column = (line & (self.lines_per_row() - 1)) as u32;
                let rest = line >> col_bits;
                let channel = (rest & (self.channels as u64 - 1)) as usize;
                let rest = rest >> ch_bits;
                let bank = (rest & (self.banks_per_channel() as u64 - 1)) as usize;
                let row = rest >> bank_bits;
                Location { channel, bank, row, column }
            }
        }
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::paper()
    }
}

/// Coordinates of one cache line within the DRAM system.
///
/// `bank` is the flat bank index within the logical channel (DIMM and
/// in-DIMM bank folded together — they are timing-equivalent here because
/// the ganged channel shares one data bus and banks are independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Logical channel index.
    pub channel: usize,
    /// Flat bank index within the channel.
    pub bank: usize,
    /// Row (page) index within the bank.
    pub row: u64,
    /// Column index (cache-line slot) within the row.
    pub column: u32,
}

impl Location {
    /// True if `other` refers to the same channel, bank and row — i.e. a
    /// request to `other` would be a row-buffer hit while this row is open.
    pub fn same_row(&self, other: &Location) -> bool {
        self.channel == other.channel && self.bank == other.bank && self.row == other.row
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}/b{}/r{}/c{}", self.channel, self.bank, self.row, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use melreq_stats::types::CACHE_LINE_BYTES;

    #[test]
    fn paper_geometry_counts() {
        let g = DramGeometry::paper();
        assert_eq!(g.banks_per_channel(), 8);
        assert_eq!(g.total_banks(), 16);
        assert_eq!(g.lines_per_row(), 64);
    }

    #[test]
    fn consecutive_lines_alternate_channels() {
        let g = DramGeometry::paper();
        let a = g.decode(0);
        let b = g.decode(CACHE_LINE_BYTES);
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 1);
        assert_eq!(a.bank, b.bank);
    }

    #[test]
    fn lines_within_block_spread_over_banks() {
        let g = DramGeometry::paper();
        // Lines 0, 2, 4, ... on channel 0 should walk the banks.
        let banks: Vec<usize> = (0..8).map(|i| g.decode(i * 2 * CACHE_LINE_BYTES).bank).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn row_changes_after_full_stripe() {
        let g = DramGeometry::paper();
        // One full stripe = channels * banks_per_channel * lines_per_row lines.
        let stripe_lines = 2 * 8 * 64;
        let a = g.decode(0);
        let b = g.decode(stripe_lines as u64 * CACHE_LINE_BYTES);
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row + 1, b.row);
    }

    #[test]
    fn decode_fields_in_range() {
        let g = DramGeometry::paper();
        for i in 0..10_000u64 {
            let loc = g.decode(i * 977 * CACHE_LINE_BYTES);
            assert!(loc.channel < g.channels);
            assert!(loc.bank < g.banks_per_channel());
            assert!((loc.column as u64) < g.lines_per_row());
        }
    }

    #[test]
    fn same_row_predicate() {
        let g = DramGeometry::paper();
        let a = g.decode(0);
        // Next column in the same row: advance past channel+bank bits.
        let b = g.decode(2 * 8 * CACHE_LINE_BYTES);
        assert!(a.same_row(&b));
        assert_ne!(a.column, b.column);
        let c = g.decode(CACHE_LINE_BYTES);
        assert!(!a.same_row(&c));
    }

    #[test]
    fn offset_within_line_is_ignored() {
        let g = DramGeometry::paper();
        assert_eq!(g.decode(0x1000), g.decode(0x1003));
    }

    #[test]
    fn page_interleave_keeps_consecutive_lines_in_one_row() {
        let g = DramGeometry::paper_page_interleaved();
        let a = g.decode(0);
        for i in 1..64u64 {
            let b = g.decode(i * CACHE_LINE_BYTES);
            assert!(a.same_row(&b), "line {i} left the row");
            assert_eq!(b.column, i as u32);
        }
        // Line 64 crosses the 4 KiB page: next channel.
        let c = g.decode(64 * CACHE_LINE_BYTES);
        assert!(!a.same_row(&c));
        assert_eq!(c.channel, 1);
    }

    #[test]
    fn page_interleave_fields_in_range() {
        let g = DramGeometry::paper_page_interleaved();
        for i in 0..10_000u64 {
            let loc = g.decode(i * 977 * CACHE_LINE_BYTES);
            assert!(loc.channel < g.channels);
            assert!(loc.bank < g.banks_per_channel());
            assert!((loc.column as u64) < g.lines_per_row());
        }
    }

    #[test]
    fn interleaves_differ() {
        let cl = DramGeometry::paper();
        let pg = DramGeometry::paper_page_interleaved();
        // Second line: different channel under cache-line interleave,
        // same row under page interleave.
        assert_ne!(cl.decode(64).channel, cl.decode(0).channel);
        assert!(pg.decode(64).same_row(&pg.decode(0)));
    }
}
