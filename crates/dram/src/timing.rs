//! DRAM timing parameters, expressed in CPU cycles.
//!
//! The paper's Table 1 gives DDR2-800 "5-5-5" timing with 12.5 ns each for
//! precharge (tRP), row access (tRCD) and column access (tCL), a 3.2 GHz
//! core clock, and a 16-byte data path per logical channel at 800 MT/s.
//! All parameters here are pre-converted to CPU cycles so the simulator
//! runs in a single clock domain.

use melreq_stats::types::{cyc_add, Cycle, CACHE_LINE_BYTES};

/// Timing parameters for one DRAM technology/configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Row-to-column delay (ACT → READ/WRITE), CPU cycles.
    pub t_rcd: Cycle,
    /// CAS latency (READ → first data beat), CPU cycles.
    pub t_cl: Cycle,
    /// Precharge time (PRE → next ACT), CPU cycles.
    pub t_rp: Cycle,
    /// Write recovery (last write data beat → PRE), CPU cycles.
    pub t_wr: Cycle,
    /// Data-bus occupancy of one cache-line burst, CPU cycles.
    pub burst: Cycle,
    /// Fixed memory-controller overhead added to every transaction
    /// (15 ns in Table 1), CPU cycles.
    pub ctrl_overhead: Cycle,
    /// Average refresh interval (tREFI), CPU cycles; 0 disables refresh.
    /// The paper does not state whether its model charges refresh, so the
    /// default preset leaves it off; [`DramTiming::with_refresh`] enables
    /// the DDR2 values for the sensitivity study.
    pub t_refi: Cycle,
    /// Refresh cycle time (tRFC), CPU cycles (used when `t_refi > 0`).
    pub t_rfc: Cycle,
    /// Minimum ACT-to-ACT spacing on one channel (tRRD), CPU cycles;
    /// 0 disables the constraint.
    pub t_rrd: Cycle,
    /// Four-activate window (tFAW), CPU cycles; 0 disables the
    /// constraint.
    pub t_faw: Cycle,
}

impl DramTiming {
    /// The paper's configuration: DDR2-800 5-5-5 behind a 3.2 GHz core.
    ///
    /// * 12.5 ns at 3.2 GHz = 40 cycles for each of tRCD/tCL/tRP;
    /// * a 64 B line over a 16 B/transfer channel at 800 MT/s takes
    ///   4 transfers × 1.25 ns = 5 ns = 16 CPU cycles;
    /// * controller overhead 15 ns = 48 CPU cycles;
    /// * tWR for DDR2-800 is 15 ns = 48 CPU cycles.
    pub fn ddr2_800_at_3_2ghz() -> Self {
        DramTiming {
            t_rcd: 40,
            t_cl: 40,
            t_rp: 40,
            t_wr: 48,
            burst: 16,
            ctrl_overhead: 48,
            t_refi: 0,
            t_rfc: 0,
            t_rrd: 0,
            t_faw: 0,
        }
    }

    /// Enable DDR2 refresh: tREFI = 7.8 µs (24 960 CPU cycles at
    /// 3.2 GHz), tRFC = 105 ns (336 cycles) — all-bank refresh per
    /// channel.
    pub fn with_refresh(mut self) -> Self {
        self.t_refi = 24_960;
        self.t_rfc = 336;
        self
    }

    /// Enable DDR2-800 activate-spacing constraints: tRRD = 7.5 ns
    /// (24 cycles), tFAW = 37.5 ns (120 cycles).
    pub fn with_activation_windows(mut self) -> Self {
        self.t_rrd = 24;
        self.t_faw = 120;
        self
    }

    /// Latency from grant to first data for a row-buffer hit (column
    /// access only).
    pub fn hit_to_data(&self) -> Cycle {
        self.t_cl
    }

    /// Latency from grant to first data when the bank is idle (activate
    /// then column access).
    pub fn idle_to_data(&self) -> Cycle {
        cyc_add(self.t_rcd, self.t_cl)
    }

    /// Latency from grant to first data when a different row is open
    /// (precharge, activate, column access).
    pub fn conflict_to_data(&self) -> Cycle {
        cyc_add(self.t_rp, self.idle_to_data())
    }

    /// Derive a scaled timing (all latencies multiplied by `num/den`)
    /// for sensitivity/ablation studies.
    ///
    /// The division truncates toward zero, so `t.scaled(a, b).scaled(b, a)`
    /// only round-trips exactly when every parameter is divisible by `b`
    /// (it is for the presets and small ratios); enabled parameters are
    /// floored at 1 cycle so extreme down-scales cannot turn a latency
    /// into "free".
    ///
    /// # Panics
    /// Panics if `den` is zero or `v * num` overflows [`Cycle`] for any
    /// parameter — a scale that large is a caller bug, not a timing.
    pub fn scaled(&self, num: Cycle, den: Cycle) -> Self {
        assert!(den > 0, "scale denominator must be positive");
        let s = |v: Cycle| {
            (v.checked_mul(num).expect("timing scale overflows u64 cycles") / den).max(1)
        };
        // Zero means "disabled" for the optional constraints; keep it.
        let s0 = |v: Cycle| if v == 0 { 0 } else { s(v) };
        DramTiming {
            t_rcd: s(self.t_rcd),
            t_cl: s(self.t_cl),
            t_rp: s(self.t_rp),
            t_wr: s(self.t_wr),
            burst: s(self.burst),
            ctrl_overhead: s(self.ctrl_overhead),
            t_refi: s0(self.t_refi),
            t_rfc: s0(self.t_rfc),
            t_rrd: s0(self.t_rrd),
            t_faw: s0(self.t_faw),
        }
    }

    /// Peak bandwidth of one logical channel in bytes per CPU cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        CACHE_LINE_BYTES as f64 / self.burst as f64
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::ddr2_800_at_3_2ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_1() {
        let t = DramTiming::ddr2_800_at_3_2ghz();
        assert_eq!(t.t_rcd, 40);
        assert_eq!(t.t_cl, 40);
        assert_eq!(t.t_rp, 40);
        assert_eq!(t.burst, 16);
        assert_eq!(t.ctrl_overhead, 48);
    }

    #[test]
    fn latency_classes_are_ordered() {
        let t = DramTiming::default();
        assert!(t.hit_to_data() < t.idle_to_data());
        assert!(t.idle_to_data() < t.conflict_to_data());
    }

    #[test]
    fn peak_bandwidth_is_12_8_gbs() {
        // 64 B / 16 cycles * 3.2e9 cycles/s = 12.8 GB/s.
        let t = DramTiming::default();
        let gbs = t.peak_bytes_per_cycle() * 3.2e9 / 1e9;
        assert!((gbs - 12.8).abs() < 1e-9);
    }

    #[test]
    fn scaled_keeps_minimum_of_one() {
        let t = DramTiming::default().scaled(1, 1000);
        assert!(t.t_rcd >= 1 && t.burst >= 1);
    }

    #[test]
    fn scaled_doubles() {
        let t = DramTiming::default().scaled(2, 1);
        assert_eq!(t.t_rcd, 80);
        assert_eq!(t.burst, 32);
    }

    #[test]
    fn scaled_round_trips_when_divisible() {
        let t = DramTiming::default().with_refresh().with_activation_windows();
        assert_eq!(t.scaled(8, 1).scaled(1, 8), t);
        assert_eq!(t.scaled(3, 4).scaled(4, 3), t); // every preset value is ÷4
    }

    #[test]
    fn scaled_keeps_disabled_constraints_disabled() {
        let t = DramTiming::default().scaled(7, 2);
        assert_eq!(t.t_refi, 0);
        assert_eq!(t.t_faw, 0);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn scaled_overflow_is_loud() {
        let _ = DramTiming::default().scaled(u64::MAX / 2, 1);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn scaled_zero_denominator_is_loud() {
        let _ = DramTiming::default().scaled(1, 0);
    }
}
