//! A logical DRAM channel: independent banks sharing one data bus.

use crate::bank::{
    scalar_is_row_hit, scalar_load_state, scalar_precharge, scalar_refresh, scalar_save_state,
    scalar_service, RowOutcome, NO_OPEN_ROW,
};
use crate::timing::DramTiming;
use melreq_stats::types::{cyc_add, AccessKind, Cycle};

/// One logical channel: `n` banks plus a shared 16-byte data bus.
///
/// Transactions from different banks pipeline on the bus: a burst occupies
/// the bus for `timing.burst` cycles starting no earlier than the bank's
/// data-ready cycle and no earlier than the bus becoming free.
///
/// Bank state is held struct-of-arrays (`open_row` + `bank_ready` vectors
/// over the shared scalar transition functions in [`crate::bank`]) so the
/// controller's candidate scans and ready-horizon folds walk dense slices
/// instead of chasing per-bank structs.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Per-bank open-row latch ([`NO_OPEN_ROW`] when closed).
    open_row: Vec<u64>,
    /// Per-bank earliest cycle the next command sequence may start.
    bank_ready: Vec<Cycle>,
    /// First cycle at which the data bus is free.
    bus_free: Cycle,
    /// Total cycles the data bus has been occupied (for utilization).
    bus_busy_cycles: Cycle,
    /// Next scheduled all-bank refresh (when refresh is enabled).
    next_refresh: Cycle,
    /// Refreshes performed.
    refreshes: u64,
    /// Recent ACT start times (ring of 4) for the tRRD/tFAW windows.
    recent_acts: [Cycle; 4],
    act_head: usize,
    /// Total ACTs recorded (the windows only bind once enough history
    /// exists).
    acts_seen: u64,
}

/// Completed service computation for one granted transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelGrant {
    /// Cycle at which the last data beat has transferred: the request's
    /// data is available to the cache hierarchy at this point.
    pub data_ready: Cycle,
    /// How the row buffer was found.
    pub outcome: RowOutcome,
    /// Effective cycle the command sequence started: the requested cycle,
    /// possibly pushed back by the tRRD/tFAW activate windows.
    pub granted_at: Cycle,
}

impl Channel {
    /// A channel with `banks` closed banks and a free bus.
    pub fn new(banks: usize) -> Self {
        assert!(banks > 0, "channel needs at least one bank");
        Channel {
            open_row: vec![NO_OPEN_ROW; banks],
            bank_ready: vec![0; banks],
            bus_free: 0,
            bus_busy_cycles: 0,
            next_refresh: 0,
            refreshes: 0,
            recent_acts: [0; 4],
            act_head: 0,
            acts_seen: 0,
        }
    }

    /// Catch up any refreshes that have come due by `now` (no-op when
    /// `t.t_refi == 0`). Call before issuing or probing availability.
    pub fn sync_refresh(&mut self, now: Cycle, t: &DramTiming) {
        if t.t_refi == 0 {
            return;
        }
        if self.next_refresh == 0 {
            self.next_refresh = t.t_refi;
        }
        while self.next_refresh <= now {
            for (row, ready) in self.open_row.iter_mut().zip(self.bank_ready.iter_mut()) {
                scalar_refresh(row, ready, self.next_refresh, t.t_rfc);
            }
            self.refreshes += 1; // melreq-allow(A01): event counter, not a deadline
            self.next_refresh = cyc_add(self.next_refresh, t.t_refi);
        }
    }

    /// Number of all-bank refreshes performed.
    pub fn refresh_count(&self) -> u64 {
        self.refreshes
    }

    /// The next all-bank refresh boundary, or `None` when refresh is
    /// disabled. Lazy catch-up means the boundary may already be in the
    /// past relative to the caller's clock until [`Channel::sync_refresh`]
    /// runs; callers treating this as an event horizon must clamp to
    /// their own `now`.
    pub fn next_refresh_at(&self, t: &DramTiming) -> Option<Cycle> {
        if t.t_refi == 0 {
            return None;
        }
        Some(if self.next_refresh == 0 { t.t_refi } else { self.next_refresh })
    }

    /// Earliest cycle a new ACT may start, per the tRRD/tFAW windows.
    fn act_allowed_at(&self, t: &DramTiming) -> Cycle {
        let mut at = 0;
        if t.t_rrd > 0 && self.acts_seen >= 1 {
            // melreq-allow(A01): ring index, bounded by the modulo
            let last = self.recent_acts[(self.act_head + 3) % 4];
            at = at.max(cyc_add(last, t.t_rrd));
        }
        if t.t_faw > 0 && self.acts_seen >= 4 {
            // Four ACTs within t_faw: the oldest of the ring gates the
            // fifth.
            let oldest = self.recent_acts[self.act_head];
            at = at.max(cyc_add(oldest, t.t_faw));
        }
        at
    }

    fn note_act(&mut self, at: Cycle) {
        self.recent_acts[self.act_head] = at;
        self.act_head = (self.act_head + 1) % 4; // melreq-allow(A01): ring index, bounded by the modulo
        self.acts_seen += 1; // melreq-allow(A01): event counter, not a deadline
    }

    /// Number of banks on this channel.
    pub fn bank_count(&self) -> usize {
        self.open_row.len()
    }

    /// Whether a request for (`bank`, `row`) would be a row-buffer hit
    /// right now.
    pub fn is_row_hit(&self, bank: usize, row: u64) -> bool {
        scalar_is_row_hit(self.open_row[bank], row)
    }

    /// Earliest cycle `bank` may start a new command sequence.
    pub fn bank_ready_at(&self, bank: usize) -> Cycle {
        self.bank_ready[bank]
    }

    /// The per-bank ready horizons as a dense slice (index = bank). The
    /// controller's candidate scans fold over this directly rather than
    /// probing banks one at a time.
    pub fn bank_ready_slice(&self) -> &[Cycle] {
        &self.bank_ready
    }

    /// Whether a transaction to `bank` could be granted at `now`.
    ///
    /// Requires the bank ready for a new command sequence. The bus may
    /// still be busy — bursts queue behind it (pipelining), bounded
    /// because the controller grants at most one transaction per bank
    /// command-cycle.
    pub fn can_issue(&self, bank: usize, now: Cycle) -> bool {
        self.bank_ready[bank] <= now
    }

    /// Grant a transaction to (`bank`, `row`) at `now`.
    ///
    /// `keep_open` is the close-page decision (see
    /// [`crate::bank::Bank::service`]).
    pub fn issue(
        &mut self,
        bank: usize,
        row: u64,
        kind: AccessKind,
        now: Cycle,
        keep_open: bool,
        t: &DramTiming,
    ) -> ChannelGrant {
        self.sync_refresh(now, t);
        // A transaction that needs an ACT (no open-row hit) must honour
        // the channel's activate-spacing windows.
        let needs_act = !scalar_is_row_hit(self.open_row[bank], row);
        let grant_at = if needs_act { now.max(self.act_allowed_at(t)) } else { now };
        let (bank_data_start, outcome) = scalar_service(
            &mut self.open_row[bank],
            &mut self.bank_ready[bank],
            row,
            kind,
            grant_at,
            keep_open,
            t,
        );
        if needs_act {
            // The ACT begins after any precharge the service implied.
            let act_at = match outcome {
                RowOutcome::Conflict => cyc_add(grant_at, t.t_rp),
                _ => grant_at,
            };
            self.note_act(act_at);
        }
        let bus_start = bank_data_start.max(self.bus_free);
        self.bus_free = cyc_add(bus_start, t.burst);
        self.bus_busy_cycles = cyc_add(self.bus_busy_cycles, t.burst);
        ChannelGrant { data_ready: self.bus_free, outcome, granted_at: grant_at }
    }

    /// Serialize bank latches, bus occupancy, refresh and ACT-window
    /// tracking. Per-bank bytes are identical to the former array-of-
    /// [`crate::bank::Bank`] layout (tagged open row, then ready horizon).
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.usize(self.open_row.len());
        for (&row, &ready) in self.open_row.iter().zip(self.bank_ready.iter()) {
            scalar_save_state(row, ready, enc);
        }
        enc.u64(self.bus_free);
        enc.u64(self.bus_busy_cycles);
        enc.u64(self.next_refresh);
        enc.u64(self.refreshes);
        for a in self.recent_acts {
            enc.u64(a);
        }
        enc.usize(self.act_head);
        enc.u64(self.acts_seen);
    }

    /// Restore state written by [`Channel::save_state`] into a channel
    /// with the same bank count.
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        let n = dec.usize()?;
        if n != self.open_row.len() {
            return Err(melreq_snap::SnapError::Invalid("bank count mismatch"));
        }
        for (row, ready) in self.open_row.iter_mut().zip(self.bank_ready.iter_mut()) {
            let (r, at) = scalar_load_state(dec)?;
            *row = r;
            *ready = at;
        }
        self.bus_free = dec.u64()?;
        self.bus_busy_cycles = dec.u64()?;
        self.next_refresh = dec.u64()?;
        self.refreshes = dec.u64()?;
        for a in &mut self.recent_acts {
            *a = dec.u64()?;
        }
        let head = dec.usize()?;
        if head >= 4 {
            return Err(melreq_snap::SnapError::Invalid("ACT ring head out of range"));
        }
        self.act_head = head;
        self.acts_seen = dec.u64()?;
        Ok(())
    }

    /// Explicitly precharge `bank` (controller's close-page sweep).
    pub fn precharge(&mut self, bank: usize, now: Cycle, t: &DramTiming) {
        scalar_precharge(&mut self.open_row[bank], &mut self.bank_ready[bank], now, t);
    }

    /// Cycle at which the data bus next becomes free.
    pub fn bus_free_at(&self) -> Cycle {
        self.bus_free
    }

    /// Total data-bus busy cycles so far (numerator of bus utilization).
    pub fn bus_busy_cycles(&self) -> Cycle {
        self.bus_busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::ddr2_800_at_3_2ghz()
    }

    #[test]
    fn single_read_latency() {
        let mut ch = Channel::new(8);
        let g = ch.issue(0, 5, AccessKind::Read, 0, false, &t());
        assert_eq!(g.outcome, RowOutcome::ClosedMiss);
        // tRCD + tCL + burst.
        assert_eq!(g.data_ready, 40 + 40 + 16);
    }

    #[test]
    fn different_banks_pipeline_on_bus() {
        let mut ch = Channel::new(8);
        let g0 = ch.issue(0, 5, AccessKind::Read, 0, false, &t());
        // Second bank granted 1 cycle later: its bank latency overlaps the
        // first's; the bus serializes only the 16-cycle bursts.
        let g1 = ch.issue(1, 5, AccessKind::Read, 1, false, &t());
        assert_eq!(g0.data_ready, 96);
        // Bank 1's data is ready at 1+80 = 81 but the bus is busy with
        // bank 0's burst until 96, so its burst runs 96..112: the 80-cycle
        // bank latencies fully overlap, only the bursts serialize.
        assert_eq!(g1.data_ready, 112);
    }

    #[test]
    fn bus_contention_serializes_bursts() {
        let mut ch = Channel::new(8);
        let mut grants = Vec::new();
        for b in 0..4 {
            grants.push(ch.issue(b, 0, AccessKind::Read, 0, false, &t()));
        }
        // All four banks start ACT at 0 and want the bus at cycle 80; the
        // bus serializes them 16 cycles apart.
        let readies: Vec<Cycle> = grants.iter().map(|g| g.data_ready).collect();
        assert_eq!(readies, vec![96, 112, 128, 144]);
        assert_eq!(ch.bus_busy_cycles(), 64);
    }

    #[test]
    fn same_bank_back_to_back_respects_precharge() {
        let mut ch = Channel::new(8);
        let g0 = ch.issue(0, 1, AccessKind::Read, 0, false, &t());
        assert!(!ch.can_issue(0, g0.data_ready));
        let ready = g0.data_ready + 40; // + tRP
        assert!(ch.can_issue(0, ready));
        let g1 = ch.issue(0, 2, AccessKind::Read, ready, false, &t());
        assert_eq!(g1.outcome, RowOutcome::ClosedMiss);
    }

    #[test]
    fn row_hit_via_keep_open() {
        let mut ch = Channel::new(8);
        let g0 = ch.issue(0, 1, AccessKind::Read, 0, true, &t());
        assert!(ch.is_row_hit(0, 1));
        let start = 80; // bank ready at data_start = 80
        let g1 = ch.issue(0, 1, AccessKind::Read, start, false, &t());
        assert_eq!(g1.outcome, RowOutcome::Hit);
        // Hit: tCL from grant (80+40 = 120), then the 16-cycle burst; the
        // bus freed at 96 so the hit's own CAS latency dominates.
        assert_eq!(g0.data_ready, 96);
        assert_eq!(g1.data_ready, 136);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = Channel::new(0);
    }

    #[test]
    fn refresh_blocks_banks_and_closes_rows() {
        let t = DramTiming::ddr2_800_at_3_2ghz().with_refresh();
        let mut ch = Channel::new(8);
        // Open a row before the first refresh boundary.
        ch.issue(0, 3, AccessKind::Read, 0, true, &t);
        assert!(ch.is_row_hit(0, 3));
        // Jump past the refresh boundary.
        ch.sync_refresh(t.t_refi + 1, &t);
        assert_eq!(ch.refresh_count(), 1);
        assert!(!ch.is_row_hit(0, 3), "refresh must close rows");
        // Banks are blocked for tRFC after the refresh started.
        assert!(!ch.can_issue(1, t.t_refi + 1));
        assert!(ch.can_issue(1, t.t_refi + t.t_rfc));
    }

    #[test]
    fn refresh_disabled_by_default() {
        let t = DramTiming::ddr2_800_at_3_2ghz();
        let mut ch = Channel::new(8);
        ch.sync_refresh(1_000_000, &t);
        assert_eq!(ch.refresh_count(), 0);
    }

    #[test]
    fn multiple_missed_refreshes_catch_up() {
        let t = DramTiming::ddr2_800_at_3_2ghz().with_refresh();
        let mut ch = Channel::new(8);
        ch.sync_refresh(3 * t.t_refi + 5, &t);
        assert_eq!(ch.refresh_count(), 3);
    }

    #[test]
    fn trrd_spaces_back_to_back_activates() {
        let t = DramTiming::ddr2_800_at_3_2ghz().with_activation_windows();
        let mut ch = Channel::new(8);
        let g0 = ch.issue(0, 0, AccessKind::Read, 0, false, &t);
        // Bank 1 granted the same cycle: its ACT must wait tRRD, shifting
        // data by tRRD relative to an unconstrained issue.
        let g1 = ch.issue(1, 0, AccessKind::Read, 0, false, &t);
        assert_eq!(g0.data_ready, 96);
        // Unconstrained this would be bus-serialized to 112; with
        // tRRD = 24 the second ACT starts at 24, its data starts at
        // 24+80 = 104 (past the bus-free point 96) and finishes at 120.
        assert_eq!(g1.data_ready, 120);
        // But a third and beyond keep spacing: issue to 4 more banks and
        // confirm ACTs are at least tRRD apart via data times.
        let g2 = ch.issue(2, 0, AccessKind::Read, 0, false, &t);
        let g3 = ch.issue(3, 0, AccessKind::Read, 0, false, &t);
        assert!(g3.data_ready >= g2.data_ready + t.burst);
    }

    #[test]
    fn tfaw_limits_activation_burst() {
        let mut t = DramTiming::ddr2_800_at_3_2ghz().with_activation_windows();
        // Exaggerate the window so it clearly dominates the bus.
        t.t_faw = 1000;
        let mut ch = Channel::new(8);
        let mut last_ready = 0;
        for b in 0..5 {
            let g = ch.issue(b, 0, AccessKind::Read, 0, false, &t);
            last_ready = g.data_ready;
        }
        // The fifth ACT waits for the four-activate window: its data
        // cannot be ready before t_faw + tRCD + tCL.
        assert!(last_ready >= 1000 + 80, "fifth activate ignored tFAW: ready at {last_ready}");
    }

    #[test]
    fn row_hits_bypass_activation_windows() {
        let mut t = DramTiming::ddr2_800_at_3_2ghz().with_activation_windows();
        t.t_faw = 10_000;
        let mut ch = Channel::new(8);
        let g0 = ch.issue(0, 7, AccessKind::Read, 0, true, &t);
        // A row hit needs no ACT, so the huge tFAW must not delay it.
        let g1 = ch.issue(0, 7, AccessKind::Read, g0.data_ready, false, &t);
        assert_eq!(g1.outcome, RowOutcome::Hit);
        assert!(g1.data_ready <= g0.data_ready + t.t_cl + 2 * t.burst);
    }

    #[test]
    fn snapshot_round_trips_soa_bank_state() {
        let t = DramTiming::ddr2_800_at_3_2ghz();
        let mut ch = Channel::new(4);
        ch.issue(0, 9, AccessKind::Read, 0, true, &t);
        ch.issue(2, 3, AccessKind::Write, 5, false, &t);
        let mut enc = melreq_snap::Enc::new();
        ch.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = Channel::new(4);
        let mut dec = melreq_snap::Dec::new(&bytes);
        restored.load_state(&mut dec).expect("round trip");
        assert!(dec.is_exhausted());
        assert!(restored.is_row_hit(0, 9));
        assert!(!restored.is_row_hit(2, 3));
        assert_eq!(restored.bank_ready_slice(), ch.bank_ready_slice());
        assert_eq!(restored.bus_free_at(), ch.bus_free_at());
    }
}
