//! The assembled DRAM system: geometry + timing + channels + statistics.

use crate::address::{DramGeometry, Location};
use crate::bank::RowOutcome;
use crate::channel::Channel;
use crate::timing::DramTiming;
use melreq_audit::{AuditEvent, AuditHandle, TimingParams};
use melreq_stats::types::{AccessKind, Addr, Cycle, CACHE_LINE_BYTES};
use melreq_stats::Counter;

/// Aggregate DRAM statistics.
#[derive(Debug, Default, Clone)]
pub struct DramStats {
    /// Transactions that hit an open row.
    pub row_hits: Counter,
    /// Transactions that found the bank closed.
    pub row_closed_misses: Counter,
    /// Transactions that had to close another row first.
    pub row_conflicts: Counter,
    /// Total read transactions.
    pub reads: Counter,
    /// Total write transactions.
    pub writes: Counter,
    /// Total bytes moved on the data buses.
    pub bytes: Counter,
}

impl DramStats {
    /// Row-hit rate over all transactions (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits.get() + self.row_closed_misses.get() + self.row_conflicts.get();
        self.row_hits.ratio_of(total)
    }
}

/// Row-buffer management discipline (Section 4.1).
///
/// The controller applies this when granting a transaction: under
/// close-page, a row is kept open only while another queued request
/// targets it (scheduler-controlled precharge, the paper's mode); under
/// open-page, rows stay open until a conflicting access closes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RowPolicy {
    /// Close the row with auto-precharge unless a queued same-row request
    /// exists — the paper's configuration.
    #[default]
    ClosePage,
    /// Leave rows open; conflicts pay precharge+activate.
    OpenPage,
}

/// Completion information for one granted transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceTime {
    /// Cycle at which the last data beat has transferred.
    pub data_ready: Cycle,
    /// How the row buffer was found.
    pub outcome: RowOutcome,
    /// Effective cycle the command sequence started (the grant cycle,
    /// possibly pushed back by the tRRD/tFAW activate windows).
    pub granted_at: Cycle,
}

/// The full DRAM device model behind the memory controller.
///
/// Stateless per cycle: all timing is advanced inside [`DramSystem::issue`],
/// so there is no per-cycle tick cost.
#[derive(Debug, Clone)]
pub struct DramSystem {
    geometry: DramGeometry, // melreq-allow(S01): construction-time config, identical across snapshot peers
    timing: DramTiming, // melreq-allow(S01): construction-time config, identical across snapshot peers
    channels: Vec<Channel>,
    stats: DramStats,
    /// Audit instrumentation (no-op unless a sink is attached).
    audit: AuditHandle, // melreq-allow(S01): instrumentation handle re-attached by the host
    /// Refreshes already reported to the audit stream, per channel.
    refreshes_emitted: Vec<u64>,
}

impl DramSystem {
    /// Build a DRAM system from geometry and timing.
    pub fn new(geometry: DramGeometry, timing: DramTiming) -> Self {
        let channels =
            (0..geometry.channels).map(|_| Channel::new(geometry.banks_per_channel())).collect();
        DramSystem {
            channels,
            stats: DramStats::default(),
            audit: AuditHandle::disabled(),
            refreshes_emitted: vec![0; geometry.channels],
            geometry,
            timing,
        }
    }

    /// Attach audit instrumentation and announce the device configuration
    /// on the stream. All subsequent refreshes, precharges, and grants on
    /// this device are reported through `audit`.
    pub fn set_audit(&mut self, audit: AuditHandle) {
        audit.emit(|| AuditEvent::DramConfig {
            channels: self.geometry.channels,
            banks_per_channel: self.geometry.banks_per_channel(),
            timing: TimingParams {
                t_rcd: self.timing.t_rcd,
                t_cl: self.timing.t_cl,
                t_rp: self.timing.t_rp,
                t_wr: self.timing.t_wr,
                burst: self.timing.burst,
                t_refi: self.timing.t_refi,
                t_rfc: self.timing.t_rfc,
                t_rrd: self.timing.t_rrd,
                t_faw: self.timing.t_faw,
            },
        });
        self.audit = audit;
    }

    /// Report any refreshes the channels performed that the audit stream
    /// has not seen yet. Refresh `k` on a channel always starts at
    /// `k × tREFI`, so the boundary cycles are reconstructible from the
    /// per-channel counts.
    fn emit_refreshes(&mut self) {
        if !self.audit.is_enabled() {
            return;
        }
        for (ch, emitted) in self.refreshes_emitted.iter_mut().enumerate() {
            let performed = self.channels[ch].refresh_count();
            while *emitted < performed {
                *emitted += 1;
                let at = *emitted * self.timing.t_refi;
                self.audit.emit(|| AuditEvent::Refresh { channel: ch, at });
            }
        }
    }

    /// The paper's Table 1 memory system.
    pub fn paper() -> Self {
        Self::new(DramGeometry::paper(), DramTiming::ddr2_800_at_3_2ghz())
    }

    /// Geometry in use.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Timing in use.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Decode a physical address to DRAM coordinates.
    pub fn decode(&self, addr: Addr) -> Location {
        self.geometry.decode(addr)
    }

    /// Whether `loc` would be a row-buffer hit right now (the signal the
    /// Hit-First family of policies ranks on).
    pub fn is_row_hit(&self, loc: &Location) -> bool {
        self.channels[loc.channel].is_row_hit(loc.bank, loc.row)
    }

    /// Whether a transaction to `loc` could be granted at `now`.
    pub fn can_issue(&self, loc: &Location, now: Cycle) -> bool {
        self.channels[loc.channel].can_issue(loc.bank, now)
    }

    /// Earliest cycle at which a bank accepts a new command sequence —
    /// the cached form of [`DramSystem::can_issue`]
    /// (`can_issue(loc, now)` ⇔ `bank_ready_at(loc.channel, loc.bank) <= now`).
    /// A pending refresh can only push this later, so the value is a
    /// conservative lower bound for event-horizon computations.
    pub fn bank_ready_at(&self, channel: usize, bank: usize) -> Cycle {
        self.channels[channel].bank_ready_at(bank)
    }

    /// One channel's per-bank ready horizons as a dense slice (index =
    /// bank) — the bulk form of [`DramSystem::bank_ready_at`] for the
    /// controller's candidate scans. Same conservative-lower-bound caveat:
    /// a pending refresh can only push these later.
    pub fn bank_ready_slice(&self, channel: usize) -> &[Cycle] {
        self.channels[channel].bank_ready_slice()
    }

    /// The earliest upcoming all-bank refresh boundary across channels,
    /// or `None` when refresh is disabled. The system loop must not skip
    /// past this cycle: refreshes apply (and are reported on the audit
    /// stream) lazily at the next controller tick, so a tick must land on
    /// the boundary for the event order to match a cycle-exact run.
    pub fn next_refresh_at(&self) -> Option<Cycle> {
        self.channels.iter().filter_map(|ch| ch.next_refresh_at(&self.timing)).min()
    }

    /// Catch up due refreshes on every channel (no-op when refresh is
    /// disabled). The controller calls this once per scheduling cycle.
    pub fn sync(&mut self, now: Cycle) {
        if self.timing.t_refi == 0 {
            return;
        }
        for ch in &mut self.channels {
            ch.sync_refresh(now, &self.timing);
        }
        self.emit_refreshes();
    }

    /// Total all-bank refreshes performed across channels.
    pub fn refresh_count(&self) -> u64 {
        self.channels.iter().map(super::channel::Channel::refresh_count).sum()
    }

    /// Cycle at which `loc`'s channel data bus next frees (for backlog
    /// heuristics in the controller).
    pub fn bus_free_at(&self, channel: usize) -> Cycle {
        self.channels[channel].bus_free_at()
    }

    /// Grant a transaction.
    ///
    /// `keep_open` implements scheduler-controlled close-page: pass `true`
    /// when the controller still holds another queued request for the same
    /// row, `false` otherwise (auto-precharge).
    pub fn issue(
        &mut self,
        loc: &Location,
        kind: AccessKind,
        now: Cycle,
        keep_open: bool,
    ) -> ServiceTime {
        // Catch up (and report) refreshes before the grant so the audit
        // stream always orders a refresh ahead of the grants behind it.
        self.channels[loc.channel].sync_refresh(now, &self.timing);
        self.emit_refreshes();
        let grant =
            self.channels[loc.channel].issue(loc.bank, loc.row, kind, now, keep_open, &self.timing);
        match grant.outcome {
            RowOutcome::Hit => self.stats.row_hits.inc(),
            RowOutcome::ClosedMiss => self.stats.row_closed_misses.inc(),
            RowOutcome::Conflict => self.stats.row_conflicts.inc(),
        }
        match kind {
            AccessKind::Read => self.stats.reads.inc(),
            AccessKind::Write => self.stats.writes.inc(),
        }
        self.stats.bytes.add(CACHE_LINE_BYTES);
        ServiceTime {
            data_ready: grant.data_ready,
            outcome: grant.outcome,
            granted_at: grant.granted_at,
        }
    }

    /// Explicitly close the row at `loc` if open (controller close-page
    /// sweep when the last same-row request drains).
    pub fn precharge(&mut self, loc: &Location, now: Cycle) {
        self.channels[loc.channel].precharge(loc.bank, now, &self.timing);
        self.audit.emit(|| AuditEvent::Precharge { channel: loc.channel, bank: loc.bank, at: now });
    }

    /// Serialize every channel, the aggregate statistics and the audit
    /// refresh-emission cursors. The audit handle itself is NOT state: a
    /// restored system keeps whatever sink it already has attached.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.usize(self.channels.len());
        for ch in &self.channels {
            ch.save_state(enc);
        }
        for c in [
            &self.stats.row_hits,
            &self.stats.row_closed_misses,
            &self.stats.row_conflicts,
            &self.stats.reads,
            &self.stats.writes,
            &self.stats.bytes,
        ] {
            c.save_state(enc);
        }
        enc.u64s(&self.refreshes_emitted);
    }

    /// Restore state written by [`DramSystem::save_state`] into a system
    /// with the same geometry.
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        let n = dec.usize()?;
        if n != self.channels.len() {
            return Err(melreq_snap::SnapError::Invalid("channel count mismatch"));
        }
        for ch in &mut self.channels {
            ch.load_state(dec)?;
        }
        for c in [
            &mut self.stats.row_hits,
            &mut self.stats.row_closed_misses,
            &mut self.stats.row_conflicts,
            &mut self.stats.reads,
            &mut self.stats.writes,
            &mut self.stats.bytes,
        ] {
            c.load_state(dec)?;
        }
        let emitted = dec.u64s()?;
        if emitted.len() != self.refreshes_emitted.len() {
            return Err(melreq_snap::SnapError::Invalid("refresh cursor count mismatch"));
        }
        self.refreshes_emitted = emitted;
        Ok(())
    }

    /// Cumulative data-bus busy cycles of `channel` (the numerator of
    /// [`DramSystem::bus_utilization`]; the epoch sampler differences
    /// this between samples).
    pub fn bus_busy_cycles(&self, channel: usize) -> Cycle {
        self.channels[channel].bus_busy_cycles()
    }

    /// Data-bus utilization of `channel` over `elapsed` cycles.
    pub fn bus_utilization(&self, channel: usize, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.channels[channel].bus_busy_cycles() as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_shape() {
        let d = DramSystem::paper();
        assert_eq!(d.geometry().channels, 2);
        assert_eq!(d.geometry().total_banks(), 16);
    }

    #[test]
    fn issue_updates_stats() {
        let mut d = DramSystem::paper();
        let loc = d.decode(0);
        let s = d.issue(&loc, AccessKind::Read, 0, false);
        assert_eq!(s.outcome, RowOutcome::ClosedMiss);
        assert_eq!(d.stats().reads.get(), 1);
        assert_eq!(d.stats().bytes.get(), 64);
        assert_eq!(d.stats().row_closed_misses.get(), 1);
    }

    #[test]
    fn row_hit_detected_across_interface() {
        let mut d = DramSystem::paper();
        let a = d.decode(0);
        // Same row, next column: stride channel*banks lines.
        let b = d.decode(2 * 8 * CACHE_LINE_BYTES);
        assert!(a.same_row(&b));
        d.issue(&a, AccessKind::Read, 0, true);
        assert!(d.is_row_hit(&b));
        let s = d.issue(&b, AccessKind::Read, 100, false);
        assert_eq!(s.outcome, RowOutcome::Hit);
        assert!((d.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn channels_are_independent() {
        let mut d = DramSystem::paper();
        let a = d.decode(0); // channel 0
        let b = d.decode(CACHE_LINE_BYTES); // channel 1
        let sa = d.issue(&a, AccessKind::Read, 0, false);
        let sb = d.issue(&b, AccessKind::Read, 0, false);
        // No bus interference across channels.
        assert_eq!(sa.data_ready, sb.data_ready);
    }

    #[test]
    fn precharge_clears_open_row() {
        let mut d = DramSystem::paper();
        let a = d.decode(0);
        d.issue(&a, AccessKind::Read, 0, true);
        assert!(d.is_row_hit(&a));
        d.precharge(&a, 200);
        assert!(!d.is_row_hit(&a));
    }

    #[test]
    fn utilization_accumulates() {
        let mut d = DramSystem::paper();
        let a = d.decode(0);
        d.issue(&a, AccessKind::Read, 0, false);
        assert!(d.bus_utilization(0, 160) > 0.09);
        assert_eq!(d.bus_utilization(0, 0), 0.0);
    }
}
