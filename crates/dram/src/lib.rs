//! Cycle-level DDR2 DRAM model for the `melreq` simulator.
//!
//! Models the memory system of Table 1 of the ICPP'08 ME-LREQ paper:
//!
//! * 2 logical channels, each made of 2 ganged physical channels providing
//!   a 16-byte data path at 800 MT/s (12.8 GB/s per logical channel);
//! * 2 DIMMs per physical channel, 4 banks per DIMM;
//! * 5-5-5 timing — tRCD = tCL = tRP = 12.5 ns = 40 CPU cycles at 3.2 GHz;
//! * close-page mode with cache-line interleaving: consecutive cache lines
//!   rotate across channels and banks; a row is kept open only while the
//!   memory controller still has queued requests for it (scheduler-
//!   controlled precharge), otherwise it is closed with auto-precharge.
//!
//! # Granularity
//!
//! Requests are serviced as *transactions*: when the controller grants a
//! request, the target [`Bank`] and the channel data bus
//! compute the data-return time from their current state (row hit, row
//! miss from idle, or row conflict) and advance their occupancy. Command
//! bus contention is not modeled separately (a single 64 B transfer needs
//! only 2–3 commands over 16+ command slots, so the command bus is never
//! the bottleneck at these parameters); data-bus pipelining, bank timing
//! and the hit/miss/conflict latency differences — the effects the
//! scheduling policies exploit — are modeled cycle-accurately.
//!
//! The crate is independent of the memory controller: it exposes
//! [`DramSystem::can_issue`] / [`DramSystem::issue`] and row-hit queries,
//! and the controller (in `melreq-memctrl`) decides *which* request to
//! grant.

pub mod address;
pub mod bank;
pub mod channel;
pub mod system;
pub mod timing;

pub use address::{DramGeometry, Interleave, Location};
pub use bank::{Bank, BankState};
pub use channel::Channel;
pub use system::{DramStats, DramSystem, RowPolicy, ServiceTime};
pub use timing::DramTiming;
