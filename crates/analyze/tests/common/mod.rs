//! Shared scaffolding: throwaway mini-workspaces for seeding drift.

use std::path::{Path, PathBuf};

/// A fresh temp workspace root containing only `crates/snap/src/lib.rs`
/// at `SCHEMA_VERSION: u32 = 1`. Namespaced by test name and pid so
/// parallel test binaries never collide.
pub fn temp_tree(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("melreq-analyze-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    write(&root, "crates/snap/src/lib.rs", "pub const SCHEMA_VERSION: u32 = 1;\n");
    root
}

/// Write `contents` at `root/rel`, creating parent directories.
pub fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().expect("relative path has a parent"))
        .expect("create fixture dirs");
    std::fs::write(path, contents).expect("write fixture file");
}
