//! Negative tests per rule against the committed `fixtures/badtree`
//! mini-workspace: each rule must fire where seeded, respect crate
//! exemptions, and honour the allow-comment contract end to end (the
//! unit tests in `src/rules.rs` cover the same logic on inline sources;
//! these prove the full `analyze()` walk over a real directory tree).

use melreq_analyze::{analyze, FingerprintStatus, Report};
use std::path::Path;

fn badtree() -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/badtree");
    analyze(&root, false).expect("fixture tree analyzes")
}

#[test]
fn d01_flags_hashmap_and_honours_allow() {
    let r = badtree();
    assert!(
        r.findings
            .iter()
            .any(|f| f.rule == "D01" && f.file == "crates/dram/src/lib.rs" && f.line == 1),
        "HashMap import must fire unsuppressed"
    );
    let suppressed: Vec<_> = r
        .suppressed
        .iter()
        .filter(|f| f.rule == "D01" && f.file == "crates/dram/src/lib.rs")
        .collect();
    assert!(
        suppressed
            .iter()
            .any(|f| f.line == 3 && f.suppressed.as_deref() == Some("fixture justification text")),
        "allowed HashSet import must land in the suppressed list with its reason"
    );
}

#[test]
fn d02_flags_sim_crates_and_exempts_serve() {
    let r = badtree();
    assert!(
        r.findings.iter().any(|f| f.rule == "D02"
            && f.file == "crates/core/src/lib.rs"
            && f.message.contains("Instant::now")),
        "Instant::now in a simulation crate must fire"
    );
    assert!(
        r.suppressed.iter().any(|f| f.rule == "D02" && f.message.contains("environment reads")),
        "allowed env::var must be suppressed with its reason"
    );
    assert!(
        r.findings.iter().chain(r.suppressed.iter()).all(|f| !f.file.starts_with("crates/serve/")),
        "serve is exempt from D02 entirely"
    );
}

#[test]
fn s01_flags_missing_field_and_half_snapshots() {
    let r = badtree();
    assert!(
        r.findings.iter().any(|f| f.rule == "S01"
            && f.file == "crates/cache/src/lib.rs"
            && f.message.contains("`Lru.cfg`")),
        "field absent from both methods must fire"
    );
    assert!(
        r.findings.iter().any(|f| f.rule == "S01"
            && f.message.contains("`HalfSnap` has save_state but no load_state")),
        "a type with only half a snapshot impl is itself drift"
    );
    // Serialized fields never fire.
    assert!(r
        .findings
        .iter()
        .all(|f| !f.message.contains("`Lru.stamp`") && !f.message.contains("`Lru.hits`")));
}

#[test]
fn a01_flags_arithmetic_casts_and_wrapping() {
    let r = badtree();
    let timing = "crates/dram/src/timing.rs";
    assert!(r
        .findings
        .iter()
        .any(|f| f.rule == "A01" && f.file == timing && f.message.contains("bare `+`")));
    assert!(r
        .findings
        .iter()
        .any(|f| f.rule == "A01" && f.file == timing && f.message.contains("`wrapping_add`")));
    assert!(r
        .findings
        .iter()
        .any(|f| f.rule == "A01" && f.file == timing && f.message.contains("narrowing `as u16`")));
    assert!(
        r.suppressed.iter().any(|f| f.rule == "A01"
            && f.suppressed.as_deref() == Some("fixture — masked to 16 bits before the cast")),
        "allowed cast must be suppressed"
    );
}

#[test]
fn reasonless_allow_does_not_suppress() {
    let r = badtree();
    // `reasonless()` in the fixture has a bare `// melreq-allow(A01)` with
    // no reason: the multiplication below it must still gate.
    assert!(r
        .findings
        .iter()
        .any(|f| f.rule == "A01" && f.line == 20 && f.message.contains("bare `*`")));
}

#[test]
fn missing_fingerprint_is_a_finding() {
    let r = badtree();
    assert_eq!(r.fingerprint, FingerprintStatus::Missing);
    assert!(r
        .findings
        .iter()
        .any(|f| f.rule == "S02" && f.message.contains("no committed snapshot-layout")));
    assert!(!r.clean());
    // Only Lru has both halves; HalfSnap must not enter the layout.
    assert_eq!(r.snap_structs, 1);
    assert_eq!(r.schema_version, 1, "schema version comes from the fixture's snap source");
}

#[test]
fn findings_are_sorted_and_counted() {
    let r = badtree();
    let keys: Vec<_> = r.findings.iter().map(|f| (f.file.clone(), f.line, f.rule)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must be deterministically ordered");
    let counts = r.counts();
    assert_eq!(counts.values().sum::<usize>(), r.findings.len());
    assert!(counts["D01"] >= 1 && counts["S01"] >= 2 && counts["A01"] >= 3);
}
