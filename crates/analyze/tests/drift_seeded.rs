//! Seeded-drift integration test: prove the S01/S02 pipeline catches an
//! unserialized field end to end, and that the prescribed remediation
//! (bump `SCHEMA_VERSION`, `--fix-fingerprint`, serialize the field)
//! actually settles the gate.

mod common;

use common::{temp_tree, write};
use melreq_analyze::{analyze, FingerprintStatus};

const MODEL_COVERED: &str = r#"pub struct Bank {
    ready_at: u64,
    row: u64,
}

impl Bank {
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.ready_at);
        out.push(self.row);
    }

    pub fn load_state(&mut self, src: &[u64]) {
        self.ready_at = src[0];
        self.row = src[1];
    }
}
"#;

const MODEL_DRIFTED: &str = r#"pub struct Bank {
    ready_at: u64,
    row: u64,
    lost: u64,
}

impl Bank {
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.ready_at);
        out.push(self.row);
    }

    pub fn load_state(&mut self, src: &[u64]) {
        self.ready_at = src[0];
        self.row = src[1];
    }
}
"#;

const MODEL_REPAIRED: &str = r#"pub struct Bank {
    ready_at: u64,
    row: u64,
    lost: u64,
}

impl Bank {
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.ready_at);
        out.push(self.row);
        out.push(self.lost);
    }

    pub fn load_state(&mut self, src: &[u64]) {
        self.ready_at = src[0];
        self.row = src[1];
        self.lost = src[2];
    }
}
"#;

#[test]
fn seeded_drift_gates_until_version_bump_and_refresh() {
    let root = temp_tree("drift");
    write(&root, "crates/dram/src/model.rs", MODEL_COVERED);

    // Establish the baseline fingerprint.
    let r = analyze(&root, true).expect("baseline analyzes");
    assert_eq!(r.fingerprint, FingerprintStatus::Fixed);
    assert!(r.clean(), "baseline must be clean, got: {:?}", r.findings);
    let r = analyze(&root, false).expect("committed baseline analyzes");
    assert_eq!(r.fingerprint, FingerprintStatus::Ok);
    assert!(r.clean());
    let baseline_layout = r.layout_hash;

    // Seed drift: a new field nobody serializes.
    write(&root, "crates/dram/src/model.rs", MODEL_DRIFTED);
    let r = analyze(&root, false).expect("drifted tree analyzes");
    assert_eq!(r.fingerprint, FingerprintStatus::Drift);
    assert!(!r.clean(), "an unserialized field must fail the gate");
    assert_ne!(r.layout_hash, baseline_layout, "field changes must move the layout hash");
    assert!(
        r.findings.iter().any(|f| f.rule == "S01" && f.message.contains("`Bank.lost`")),
        "S01 names the dropped field: {:?}",
        r.findings
    );
    let s02 = r.findings.iter().find(|f| f.rule == "S02").expect("layout drift fires S02");
    assert!(s02.message.contains("without a SCHEMA_VERSION bump"));
    assert!(s02.message.contains("Bank"), "the diff names the changed struct: {}", s02.message);

    // Bumping SCHEMA_VERSION downgrades the hard drift to a stale
    // fingerprint asking for a refresh...
    write(&root, "crates/snap/src/lib.rs", "pub const SCHEMA_VERSION: u32 = 2;\n");
    let r = analyze(&root, false).expect("bumped tree analyzes");
    assert_eq!(r.fingerprint, FingerprintStatus::Stale);
    assert_eq!(r.schema_version, 2);
    assert!(r.findings.iter().any(|f| f.rule == "S02" && f.message.contains("--fix-fingerprint")));

    // ...and refreshing plus serializing the field settles the tree.
    let r = analyze(&root, true).expect("refresh analyzes");
    assert_eq!(r.fingerprint, FingerprintStatus::Fixed);
    write(&root, "crates/dram/src/model.rs", MODEL_REPAIRED);
    let r = analyze(&root, false).expect("repaired tree analyzes");
    assert_eq!(r.fingerprint, FingerprintStatus::Ok);
    assert!(r.clean(), "repaired tree must be clean, got: {:?}", r.findings);

    let _ = std::fs::remove_dir_all(&root);
}
