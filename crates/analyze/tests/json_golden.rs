//! Golden test pinning the `--json` report shape: key order, nesting,
//! the leading melreq-snap `schema_version` stamp, finding/suppressed
//! entry layout, and the per-rule counts object. Only two values are
//! computed (the snap schema-version constant and the layout hash);
//! every byte of structure is literal.

mod common;

use common::{temp_tree, write};
use melreq_analyze::analyze;

const GOLDEN_SRC: &str = r#"pub type Map = std::collections::HashMap<u64, u64>;
// melreq-allow(D01): golden suppressed entry
pub type Set = std::collections::HashSet<u64>;

pub struct Pinned {
    v: u64,
}

impl Pinned {
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.v);
    }

    pub fn load_state(&mut self, src: &[u64]) {
        self.v = src[0];
    }
}
"#;

#[test]
fn json_report_shape_is_pinned() {
    let root = temp_tree("golden");
    write(&root, "crates/dram/src/lib.rs", GOLDEN_SRC);
    analyze(&root, true).expect("fingerprint commit analyzes");
    let r = analyze(&root, false).expect("golden tree analyzes");

    let expected = format!(
        "{{\"schema_version\":{},\"tool\":\"melreq-analyze\",\"files_scanned\":2,\
         \"findings\":[{{\"rule\":\"D01\",\"file\":\"crates/dram/src/lib.rs\",\"line\":1,\
         \"message\":\"HashMap in simulation crate `dram`: iteration order is host-seeded; \
         use BTreeMap/BTreeSet/Vec or justify with melreq-allow(D01)\"}}],\
         \"suppressed\":[{{\"rule\":\"D01\",\"file\":\"crates/dram/src/lib.rs\",\"line\":3,\
         \"message\":\"HashSet in simulation crate `dram`: iteration order is host-seeded; \
         use BTreeMap/BTreeSet/Vec or justify with melreq-allow(D01)\",\
         \"reason\":\"golden suppressed entry\"}}],\
         \"fingerprint\":{{\"status\":\"ok\",\"schema_version\":1,\
         \"layout\":\"{:016x}\",\"structs\":1}},\
         \"counts\":{{\"A01\":0,\"D01\":1,\"D02\":0,\"S01\":0,\"S02\":0}}}}",
        melreq_snap::SCHEMA_VERSION,
        r.layout_hash,
    );
    assert_eq!(r.render_json(), expected);

    // The stamp is the shared melreq-snap schema version, first key.
    let stamp = format!("{{\"schema_version\":{},", melreq_snap::SCHEMA_VERSION);
    assert!(r.render_json().starts_with(&stamp));

    let _ = std::fs::remove_dir_all(&root);
}
