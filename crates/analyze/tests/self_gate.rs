//! The analyzer run against this repository itself: `cargo test` fails
//! the moment anyone introduces an unsuppressed determinism or
//! snapshot-coverage hazard, mirroring the CI `melreq analyze` step.

use melreq_analyze::{analyze, FingerprintStatus};
use std::path::Path;

#[test]
fn own_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let r = analyze(root, false).expect("workspace analyzes");
    assert!(
        r.clean(),
        "the workspace must stay at zero unsuppressed findings:\n{}",
        r.render_text()
    );
    assert_eq!(
        r.fingerprint,
        FingerprintStatus::Ok,
        "snap.fingerprint must match the tree (run `melreq analyze --fix-fingerprint` \
         after a deliberate SCHEMA_VERSION bump)"
    );
    assert!(r.snap_structs > 0, "the fingerprint must actually cover snapshot'd structs");
}
