use std::collections::HashMap;
// melreq-allow(D01): fixture justification text
use std::collections::HashSet;

pub fn sizes(m: &HashMap<u64, u64>, s: &HashSet<u64>) -> (usize, usize) {
    (m.len(), s.len())
}
