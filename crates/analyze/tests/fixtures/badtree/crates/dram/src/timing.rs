pub fn horizon(now: u64, t_cl: u64) -> u64 {
    now + t_cl
}

pub fn wrap(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}

pub fn narrow(x: u64) -> u16 {
    x as u16
}

pub fn ok_cast(x: u64) -> u16 {
    // melreq-allow(A01): fixture — masked to 16 bits before the cast
    (x & 0xffff) as u16
}

pub fn reasonless(a: u64, b: u64) -> u64 {
    // melreq-allow(A01)
    a * b
}
