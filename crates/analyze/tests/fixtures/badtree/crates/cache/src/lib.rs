pub struct Lru {
    stamp: u64,
    hits: u64,
    cfg: u32,
}

impl Lru {
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.stamp);
        out.push(self.hits);
    }

    pub fn load_state(&mut self, src: &[u64]) {
        self.stamp = src[0];
        self.hits = src[1];
    }
}

pub struct HalfSnap {
    val: u64,
}

impl HalfSnap {
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.val);
    }
}
