pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn threads() -> Option<String> {
    // melreq-allow(D02): fixture — documented wall-clock exception
    std::env::var("FIXTURE_THREADS").ok()
}
