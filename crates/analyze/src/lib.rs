//! # melreq-analyze — workspace determinism & snapshot-coverage analyzer
//!
//! Everything this reproduction proves — bit-exact fast-forward vs
//! tick-exact kernels, snapshot forking across policies, byte-identical
//! `reproduce` artifacts — rests on determinism invariants that used to
//! be enforced only by runtime tests and reviewer discipline. This crate
//! is a dependency-free static pass over the workspace's *own Rust
//! sources* (a small lexer + item/field/impl extractor — no `syn`,
//! consistent with the vendored-offline build) that turns those
//! invariants into a `cargo test`-time / CI gate:
//!
//! | rule | hazard |
//! |------|--------|
//! | D01  | `HashMap`/`HashSet` in simulation crates (iteration order) |
//! | D02  | ambient entropy (`Instant::now`, `SystemTime`, `RandomState`, `env::var`) outside serve/bench/cli |
//! | S01  | snapshot-coverage drift: a field missing from `save_state`/`load_state` |
//! | S02  | snapshot layout changed without a `SCHEMA_VERSION` bump (`snap.fingerprint`) |
//! | A01  | narrowing `as` casts / unchecked cycle arithmetic in dram/memctrl timing modules |
//!
//! Findings carry a stable rule ID and a `file:line` span and are
//! suppressible in place with `// melreq-allow(RULE): reason` (the
//! reason is mandatory — a bare allow does not count). The CLI surfaces
//! the pass as `melreq analyze [--json] [--fix-fingerprint]`.

pub mod fingerprint;
pub mod items;
pub mod lexer;
pub mod rules;

use fingerprint::{LayoutSet, FINGERPRINT_FILE};
use rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Outcome of the S02 fingerprint comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FingerprintStatus {
    /// Committed fingerprint matches the tree.
    Ok,
    /// Layouts changed while `SCHEMA_VERSION` did not: the hard gate.
    Drift,
    /// `SCHEMA_VERSION` moved (or layouts changed alongside a bump):
    /// the fingerprint must be regenerated with `--fix-fingerprint`.
    Stale,
    /// No `snap.fingerprint` committed yet.
    Missing,
    /// `--fix-fingerprint` rewrote the file this run.
    Fixed,
}

impl FingerprintStatus {
    /// Lower-case label used in the JSON report.
    pub fn label(self) -> &'static str {
        match self {
            FingerprintStatus::Ok => "ok",
            FingerprintStatus::Drift => "drift",
            FingerprintStatus::Stale => "stale",
            FingerprintStatus::Missing => "missing",
            FingerprintStatus::Fixed => "fixed",
        }
    }
}

/// The full result of one analysis pass.
#[derive(Debug)]
pub struct Report {
    /// Workspace root analyzed.
    pub root: PathBuf,
    /// Number of `.rs` files scanned under `crates/*/src`.
    pub files_scanned: usize,
    /// Unsuppressed findings — any entry here fails the gate.
    pub findings: Vec<Finding>,
    /// Findings carrying a `melreq-allow` justification.
    pub suppressed: Vec<Finding>,
    /// S02 status.
    pub fingerprint: FingerprintStatus,
    /// `SCHEMA_VERSION` read from `crates/snap/src/lib.rs`.
    pub schema_version: u32,
    /// Combined layout hash of every snapshot'd struct.
    pub layout_hash: u64,
    /// Snapshot'd struct count contributing to the fingerprint.
    pub snap_structs: usize,
}

impl Report {
    /// Whether the gate passes (no unsuppressed findings).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Per-rule counts of unsuppressed findings.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> =
            [("A01", 0), ("D01", 0), ("D02", 0), ("S01", 0), ("S02", 0)].into_iter().collect();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Human-readable multi-line rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}: {}:{}: {}", f.rule, f.file, f.line, f.message);
        }
        let _ = writeln!(
            out,
            "melreq-analyze: {} file(s), {} snapshot'd struct(s), layout {:016x}, \
             fingerprint {}; {} finding(s), {} suppressed",
            self.files_scanned,
            self.snap_structs,
            self.layout_hash,
            self.fingerprint.label(),
            self.findings.len(),
            self.suppressed.len(),
        );
        out
    }

    /// Single-line machine-readable rendering, schema-stamped like every
    /// other machine output in the workspace (the stamp is the *snap*
    /// schema version: the report describes snapshot-governed state).
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut o = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => o.push_str("\\\""),
                    '\\' => o.push_str("\\\\"),
                    '\n' => o.push_str("\\n"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(o, "\\u{:04x}", c as u32);
                    }
                    c => o.push(c),
                }
            }
            o
        }
        fn finding(f: &Finding) -> String {
            let mut s = format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"",
                f.rule,
                esc(&f.file),
                f.line,
                esc(&f.message)
            );
            if let Some(reason) = &f.suppressed {
                let _ = write!(s, ",\"reason\":\"{}\"", esc(reason));
            }
            s.push('}');
            s
        }
        let findings: Vec<String> = self.findings.iter().map(finding).collect();
        let suppressed: Vec<String> = self.suppressed.iter().map(finding).collect();
        let counts: Vec<String> =
            self.counts().iter().map(|(r, n)| format!("\"{r}\":{n}")).collect();
        format!(
            "{{\"schema_version\":{},\"tool\":\"melreq-analyze\",\"files_scanned\":{},\
             \"findings\":[{}],\"suppressed\":[{}],\
             \"fingerprint\":{{\"status\":\"{}\",\"schema_version\":{},\
             \"layout\":\"{:016x}\",\"structs\":{}}},\"counts\":{{{}}}}}",
            melreq_snap::SCHEMA_VERSION,
            self.files_scanned,
            findings.join(","),
            suppressed.join(","),
            self.fingerprint.label(),
            self.schema_version,
            self.layout_hash,
            self.snap_structs,
            counts.join(","),
        )
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyze the workspace rooted at `root` (the directory containing
/// `crates/`). With `fix_fingerprint`, `snap.fingerprint` is rewritten
/// from the current tree before the S02 comparison.
pub fn analyze(root: &Path, fix_fingerprint: bool) -> Result<Report, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} has no crates/ directory — run from the workspace root or pass --root",
            root.display()
        ));
    }
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for dir in &crate_dirs {
        rust_files(&dir.join("src"), &mut files)?;
    }

    let mut all: Vec<Finding> = Vec::new();
    let mut layouts = LayoutSet::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let lexed = lexer::lex(&src);
        let items = items::extract(&lexed);
        rules::d01(&rel, &lexed, &items, &mut all);
        rules::d02(&rel, &lexed, &items, &mut all);
        rules::s01(&rel, &lexed, &items, &mut all);
        rules::a01(&rel, &lexed, &items, &mut all);
        for s in &items.structs {
            let has_both = items
                .snaps
                .get(&s.name)
                .is_some_and(|snap| snap.save.is_some() && snap.load.is_some());
            if has_both {
                layouts.add(&rel, s);
            }
        }
    }

    for dup in &layouts.duplicates {
        all.push(Finding {
            rule: "S02",
            file: FINGERPRINT_FILE.to_string(),
            line: 0,
            message: format!(
                "two snapshot'd structs named `{dup}`: fingerprint entries collide — \
                 rename one"
            ),
            suppressed: None,
        });
    }

    let schema_version = fingerprint::schema_version_from_source(root)?;
    if fix_fingerprint {
        let path = root.join(FINGERPRINT_FILE);
        std::fs::write(&path, layouts.render(schema_version))
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let status = match fingerprint::read_committed(root)? {
        None => {
            all.push(Finding {
                rule: "S02",
                file: FINGERPRINT_FILE.to_string(),
                line: 0,
                message: "no committed snapshot-layout fingerprint; generate one with \
                          `melreq analyze --fix-fingerprint` and commit it"
                    .to_string(),
                suppressed: None,
            });
            FingerprintStatus::Missing
        }
        Some(committed) if fix_fingerprint => {
            debug_assert_eq!(committed.layout, layouts.combined());
            FingerprintStatus::Fixed
        }
        Some(committed) => {
            let layout_matches = committed.layout == layouts.combined();
            if layout_matches && committed.schema_version == schema_version {
                FingerprintStatus::Ok
            } else if committed.schema_version == schema_version {
                all.push(Finding {
                    rule: "S02",
                    file: FINGERPRINT_FILE.to_string(),
                    line: 0,
                    message: format!(
                        "snapshot layout changed without a SCHEMA_VERSION bump \
                         ({}) — bump SCHEMA_VERSION in crates/snap/src/lib.rs in \
                         the same diff, then run `melreq analyze --fix-fingerprint`",
                        fingerprint::diff(&committed, &layouts)
                    ),
                    suppressed: None,
                });
                FingerprintStatus::Drift
            } else {
                all.push(Finding {
                    rule: "S02",
                    file: FINGERPRINT_FILE.to_string(),
                    line: 0,
                    message: format!(
                        "SCHEMA_VERSION moved ({} -> {schema_version}); refresh the \
                         fingerprint with `melreq analyze --fix-fingerprint` and \
                         commit it",
                        committed.schema_version
                    ),
                    suppressed: None,
                });
                FingerprintStatus::Stale
            }
        }
    };

    all.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let (suppressed, findings): (Vec<_>, Vec<_>) =
        all.into_iter().partition(|f| f.suppressed.is_some());

    Ok(Report {
        root: root.to_path_buf(),
        files_scanned: files.len(),
        findings,
        suppressed,
        fingerprint: status,
        schema_version,
        layout_hash: layouts.combined(),
        snap_structs: layouts.structs.len(),
    })
}
