//! A minimal Rust lexer: just enough to tokenize the workspace's own
//! sources for pattern rules and item extraction. No `syn`, no external
//! crates — consistent with the vendored-offline build.
//!
//! The lexer produces identifiers, punctuation and literals with line
//! numbers; comments and string/char literal *contents* are consumed
//! (so `"Instant::now"` inside a string never matches a rule), but
//! `// melreq-allow(RULE): reason` comments are collected into a
//! side-table keyed by line, which is how findings are suppressed.

use std::collections::BTreeMap;

/// One lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and text.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// The token classes the analyzer distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `struct`, `HashMap`, `as`, ...).
    Ident(String),
    /// A punctuation token. Multi-character operators are NOT combined
    /// except `::` and `->`, which the item extractor and path rules
    /// need as units (leaving `>` free for generic-depth counting).
    Punct(char),
    /// The `::` path separator.
    PathSep,
    /// The `->` return arrow.
    Arrow,
    /// Numeric, string, char or byte literal (text dropped except for
    /// numbers, which fingerprinting of array lengths wants verbatim).
    Literal(String),
    /// A lifetime (`'a`); distinguished from char literals.
    Lifetime,
}

/// One parsed `melreq-allow(RULE): reason` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule ID being suppressed (e.g. `S01`).
    pub rule: String,
    /// The human justification after the colon (must be non-empty for
    /// the suppression to count).
    pub reason: String,
    /// Line the comment appears on.
    pub line: u32,
}

/// A lexed source file: token stream plus the allow-comment side table.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Allow annotations keyed by the line they appear on.
    pub allows: BTreeMap<u32, Vec<Allow>>,
}

impl Lexed {
    /// Whether `rule` is suppressed at `line`: an allow comment on the
    /// same line (trailing) or on the line directly above counts.
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<&Allow> {
        for l in [line, line.saturating_sub(1)] {
            if let Some(list) = self.allows.get(&l) {
                if let Some(a) = list.iter().find(|a| a.rule == rule) {
                    return Some(a);
                }
            }
        }
        None
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scan a comment body for `melreq-allow(RULE): reason` and record it.
fn collect_allow(body: &str, line: u32, allows: &mut BTreeMap<u32, Vec<Allow>>) {
    let mut rest = body;
    while let Some(idx) = rest.find("melreq-allow(") {
        rest = &rest[idx + "melreq-allow(".len()..];
        let Some(close) = rest.find(')') else { return };
        let rule = rest[..close].trim().to_string();
        rest = &rest[close + 1..];
        let reason = match rest.strip_prefix(':') {
            Some(r) => {
                // The reason runs to the end of this comment line.
                let r = r.lines().next().unwrap_or("").trim();
                r.to_string()
            }
            None => String::new(),
        };
        if !rule.is_empty() && !reason.is_empty() {
            allows.entry(line).or_default().push(Allow { rule, reason, line });
        }
    }
}

/// Tokenize `src`. Never fails: unrecognized bytes are skipped (the
/// workspace's own sources are the only input, and they compile).
#[allow(clippy::too_many_lines)]
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    macro_rules! push {
        ($kind:expr) => {
            out.tokens.push(Token { kind: $kind, line })
        };
    }

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line comment (incl. doc comments): consume to newline,
                // harvesting any allow annotation.
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let body: String = chars[start..i].iter().collect();
                collect_allow(&body, line, &mut out.allows);
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment, nesting per Rust. Allow annotations are
                // attributed to the line the comment *starts* on.
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let body: String = chars[start..i.min(n)].iter().collect();
                collect_allow(&body, start_line, &mut out.allows);
            }
            '"' => {
                // String literal (handles escapes; raw strings handled
                // below at the `r` ident path).
                i += 1;
                while i < n {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                push!(TokenKind::Literal(String::new()));
            }
            '\'' => {
                // Lifetime or char literal. `'a` (not closed by `'`) is a
                // lifetime; `'x'` / `'\n'` are chars.
                if i + 1 < n && chars[i + 1] == '\\' {
                    // Escaped char literal.
                    i += 2;
                    while i < n && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    push!(TokenKind::Literal(String::new()));
                } else if i + 2 < n && chars[i + 2] == '\'' {
                    i += 3;
                    push!(TokenKind::Literal(String::new()));
                } else {
                    i += 1;
                    while i < n && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    push!(TokenKind::Lifetime);
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (is_ident_continue(chars[i]) || chars[i] == '.') {
                    // `0..4` must not swallow the range: a dot only joins
                    // when followed by a digit.
                    if chars[i] == '.' && !(i + 1 < n && chars[i + 1].is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                push!(TokenKind::Literal(chars[start..i].iter().collect()));
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                // Raw string r"..." / r#"..."# (and byte strings).
                if (word == "r" || word == "br" || word == "b")
                    && i < n
                    && (chars[i] == '"' || chars[i] == '#')
                {
                    let mut hashes = 0;
                    while i < n && chars[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && chars[i] == '"' {
                        i += 1;
                        'raw: while i < n {
                            if chars[i] == '\n' {
                                line += 1;
                            } else if chars[i] == '"' {
                                let mut j = i + 1;
                                let mut h = 0;
                                while j < n && chars[j] == '#' && h < hashes {
                                    j += 1;
                                    h += 1;
                                }
                                if h == hashes {
                                    i = j;
                                    break 'raw;
                                }
                            } else if word == "b" && hashes == 0 && chars[i] == '\\' {
                                i += 1; // escaped byte in b"..."
                            }
                            i += 1;
                        }
                        push!(TokenKind::Literal(String::new()));
                        continue;
                    }
                    // Lone `r#ident` raw identifier: fall through, token
                    // text keeps the word without hashes.
                }
                push!(TokenKind::Ident(word));
            }
            ':' if i + 1 < n && chars[i + 1] == ':' => {
                i += 2;
                push!(TokenKind::PathSep);
            }
            '-' if i + 1 < n && chars[i + 1] == '>' => {
                i += 2;
                push!(TokenKind::Arrow);
            }
            c => {
                i += 1;
                push!(TokenKind::Punct(c));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r#"
            // HashMap in a comment
            /* SystemTime in a block */
            let x = "Instant::now inside a string";
            let y = 'H';
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("impl<'a> Dec<'a> { fn f(&'a self) {} }").tokens;
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count(), 3);
    }

    #[test]
    fn path_sep_and_arrow_combine() {
        let toks = lex("fn f() -> std::time::Instant").tokens;
        assert!(toks.iter().any(|t| t.kind == TokenKind::Arrow));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::PathSep).count(), 2);
    }

    #[test]
    fn allow_comments_are_collected_with_reasons() {
        let src = "\nlet m = x; // melreq-allow(D01): keyed lookups only\n\
                   // melreq-allow(S01): rebuilt from config\nlet y = 1;\n\
                   // melreq-allow(A01)\nlet z = 2;\n";
        let lexed = lex(src);
        let a = lexed.allow_for("D01", 2).expect("trailing allow");
        assert_eq!(a.reason, "keyed lookups only");
        assert!(lexed.allow_for("S01", 4).is_some(), "line-above allow");
        assert!(lexed.allow_for("A01", 6).is_none(), "reasonless allow must not count");
        assert!(lexed.allow_for("D01", 4).is_none());
    }

    #[test]
    fn raw_strings_are_opaque() {
        let ids = idents("let s = r#\"HashMap \" quote\"#; let t = r\"HashSet\"; end");
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"HashSet".to_string()));
        assert!(ids.contains(&"end".to_string()));
    }

    #[test]
    fn numeric_literals_do_not_eat_ranges() {
        let toks = lex("for i in 0..4 {}").tokens;
        assert!(toks.iter().any(|t| t.kind == TokenKind::Literal("0".into())));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Literal("4".into())));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\nb";
        let toks = lex(src).tokens;
        assert_eq!(toks.last().unwrap().line, 4);
    }
}
