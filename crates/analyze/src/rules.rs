//! The rule catalogue. Every rule has a stable ID, fires with a
//! `file:line` span, and is suppressible at the span with a
//! `// melreq-allow(RULE): reason` comment (same line or the line
//! above). See DESIGN.md "Static analysis" for the contract.

use crate::items::FileItems;
use crate::lexer::{Lexed, TokenKind};

/// Crates whose simulation state must be iteration-order deterministic
/// (rule D01): a `HashMap`/`HashSet` anywhere in them is a hazard
/// because any iteration is host-RandomState ordered.
pub const D01_CRATES: &[&str] =
    &["cpu", "dram", "memctrl", "cache", "core", "trace", "stats", "snap"];

/// Crates allowed to touch ambient entropy (wall clocks, environment):
/// the service, the bench harness, the CLI and the analyzer itself.
/// Everything else is simulation code where rule D02 applies.
pub const D02_EXEMPT_CRATES: &[&str] = &["serve", "bench", "cli", "analyze"];

/// The dram/memctrl timing modules where rule A01 additionally flags
/// bare `+`/`-`/`*` arithmetic: these files compute the cycle horizons
/// (`ready_at`, bus occupancy, refresh schedules) where a silent wrap
/// would corrupt timing rather than crash.
pub const A01_TIMING_FILES: &[&str] =
    &["crates/dram/src/timing.rs", "crates/dram/src/bank.rs", "crates/dram/src/channel.rs"];

/// Crates where A01's narrowing-cast and `wrapping_*` checks apply.
pub const A01_CRATES: &[&str] = &["dram", "memctrl"];

/// One reported finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (`D01`, `D02`, `S01`, `S02`, `A01`).
    pub rule: &'static str,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the hazard.
    pub message: String,
    /// `Some(reason)` when a `melreq-allow` comment suppresses it.
    pub suppressed: Option<String>,
}

/// Emit a finding, attaching any matching allow-comment suppression.
fn emit(
    out: &mut Vec<Finding>,
    lexed: &Lexed,
    rule: &'static str,
    file: &str,
    line: u32,
    message: String,
) {
    let suppressed = lexed.allow_for(rule, line).map(|a| a.reason.clone());
    out.push(Finding { rule, file: file.to_string(), line, message, suppressed });
}

/// The crate a repo-relative `crates/<name>/src/...` path belongs to.
pub fn crate_of(rel_path: &str) -> Option<&str> {
    rel_path.strip_prefix("crates/")?.split('/').next()
}

/// D01 — no `HashMap`/`HashSet` in simulation crates. Iteration order
/// of the std hash containers is seeded per-process; any iteration in
/// simulation state silently breaks byte-exact reproduction. Use
/// `BTreeMap`/`BTreeSet`/`Vec`, or justify keyed-lookup-only use with
/// an allow comment.
pub fn d01(rel_path: &str, lexed: &Lexed, items: &FileItems, out: &mut Vec<Finding>) {
    let Some(krate) = crate_of(rel_path) else { return };
    if !D01_CRATES.contains(&krate) {
        return;
    }
    for (i, t) in lexed.tokens.iter().enumerate() {
        if let TokenKind::Ident(w) = &t.kind {
            if (w == "HashMap" || w == "HashSet") && !items.in_test(i) {
                emit(
                    out,
                    lexed,
                    "D01",
                    rel_path,
                    t.line,
                    format!(
                        "{w} in simulation crate `{krate}`: iteration order is \
                         host-seeded; use BTreeMap/BTreeSet/Vec or justify with \
                         melreq-allow(D01)"
                    ),
                );
            }
        }
    }
}

/// D02 — no ambient entropy in simulation crates: `Instant::now`,
/// `SystemTime`, `RandomState`, `env::var`/`env::var_os`. Wall clocks
/// and environment reads are fine for *reporting*, but every use in a
/// simulation crate must carry a written justification that it cannot
/// feed simulated state.
pub fn d02(rel_path: &str, lexed: &Lexed, items: &FileItems, out: &mut Vec<Finding>) {
    let Some(krate) = crate_of(rel_path) else { return };
    if D02_EXEMPT_CRATES.contains(&krate) {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if items.in_test(i) {
            continue;
        }
        let line = toks[i].line;
        let TokenKind::Ident(w) = &toks[i].kind else { continue };
        let path_call = |name: &str| {
            matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokenKind::PathSep))
                && matches!(toks.get(i + 2).map(|t| &t.kind),
                            Some(TokenKind::Ident(m)) if m == name)
        };
        let hazard = match w.as_str() {
            "Instant" if path_call("now") => Some("Instant::now() is wall-clock"),
            "SystemTime" => Some("SystemTime is wall-clock"),
            "RandomState" => Some("RandomState is per-process entropy"),
            "env" if path_call("var") || path_call("var_os") => {
                Some("environment reads make behavior host-dependent")
            }
            _ => None,
        };
        if let Some(why) = hazard {
            emit(
                out,
                lexed,
                "D02",
                rel_path,
                line,
                format!(
                    "ambient entropy in simulation crate `{krate}`: {why}; move it \
                     behind serve/bench/cli or justify with melreq-allow(D02)"
                ),
            );
        }
    }
}

/// S01 — snapshot-coverage drift: every field of a struct with
/// `save_state`/`load_state` must be referenced in BOTH methods (or
/// carry an allow on the field naming why it is deliberately not
/// serialized). This is exactly the hazard byte-exact snapshot forking
/// created: a forgotten field silently diverges after restore.
pub fn s01(rel_path: &str, lexed: &Lexed, items: &FileItems, out: &mut Vec<Finding>) {
    for s in &items.structs {
        let Some(snap) = items.snaps.get(&s.name) else { continue };
        let (Some(save), Some(load)) = (&snap.save, &snap.load) else {
            // A type with only one half is itself drift.
            let (present, missing, line) = match (&snap.save, &snap.load) {
                (Some(m), None) => ("save_state", "load_state", m.line),
                (None, Some(m)) => ("load_state", "save_state", m.line),
                _ => continue,
            };
            emit(
                out,
                lexed,
                "S01",
                rel_path,
                line,
                format!("`{}` has {present} but no {missing} in this file", s.name),
            );
            continue;
        };
        for f in &s.fields {
            let in_save = save.idents.contains(&f.name);
            let in_load = load.idents.contains(&f.name);
            if in_save && in_load {
                continue;
            }
            let missing = match (in_save, in_load) {
                (false, false) => "save_state or load_state",
                (false, true) => "save_state",
                (true, false) => "load_state",
                (true, true) => unreachable!(),
            };
            emit(
                out,
                lexed,
                "S01",
                rel_path,
                f.line,
                format!(
                    "field `{}.{}` is not referenced in {missing}: snapshot \
                     round-trips will silently drop it (serialize it, or \
                     melreq-allow(S01) on the field with why it is safe)",
                    s.name, f.name
                ),
            );
        }
    }
}

/// Integer types a cast *to* is considered narrowing for A01.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// A01 — unchecked cycle/timing arithmetic, generalizing the
/// `DramTiming::scaled` overflow-checked precedent: in dram/memctrl,
/// flag narrowing `as` casts and `wrapping_*` calls; in the designated
/// timing modules additionally flag bare `+`/`-`/`*` (and their
/// compound assignments), which wrap silently in release builds.
pub fn a01(rel_path: &str, lexed: &Lexed, items: &FileItems, out: &mut Vec<Finding>) {
    let Some(krate) = crate_of(rel_path) else { return };
    if !A01_CRATES.contains(&krate) {
        return;
    }
    let toks = &lexed.tokens;
    let timing_file = A01_TIMING_FILES.contains(&rel_path);
    for i in 0..toks.len() {
        if items.in_test(i) {
            continue;
        }
        let line = toks[i].line;
        match &toks[i].kind {
            TokenKind::Ident(w) if w == "as" => {
                if let Some(TokenKind::Ident(ty)) = toks.get(i + 1).map(|t| &t.kind) {
                    if NARROW_INTS.contains(&ty.as_str()) {
                        emit(
                            out,
                            lexed,
                            "A01",
                            rel_path,
                            line,
                            format!(
                                "narrowing `as {ty}` cast: silently truncates; use \
                                 `{ty}::try_from(..)` or melreq-allow(A01) with the \
                                 bound that makes it safe"
                            ),
                        );
                    }
                }
            }
            TokenKind::Ident(w) if w.starts_with("wrapping_") => {
                emit(
                    out,
                    lexed,
                    "A01",
                    rel_path,
                    line,
                    format!(
                        "`{w}` on dram/memctrl state: wrapping semantics corrupt \
                         timing silently; use checked arithmetic"
                    ),
                );
            }
            TokenKind::Punct(op @ ('+' | '-' | '*')) if timing_file => {
                // Binary-operator heuristic: the previous token must be
                // something an expression can end with. This excludes
                // unary deref/negation, `&`-patterns and attributes.
                let binary = matches!(
                    toks.get(i.wrapping_sub(1)).map(|t| &t.kind),
                    Some(
                        TokenKind::Ident(_)
                            | TokenKind::Literal(_)
                            | TokenKind::Punct(')')
                            | TokenKind::Punct(']')
                    )
                ) && i > 0;
                if binary {
                    emit(
                        out,
                        lexed,
                        "A01",
                        rel_path,
                        line,
                        format!(
                            "bare `{op}` on cycle/timing values in a timing module: \
                             wraps silently in release builds; use the checked \
                             helpers (melreq_stats::types::cyc_add/cyc_mul) or \
                             melreq-allow(A01) with the bound"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::lexer::lex;

    fn run_all(path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let items = extract(&lexed);
        let mut out = Vec::new();
        d01(path, &lexed, &items, &mut out);
        d02(path, &lexed, &items, &mut out);
        s01(path, &lexed, &items, &mut out);
        a01(path, &lexed, &items, &mut out);
        out
    }

    #[test]
    fn d01_fires_in_sim_crates_only() {
        let src = "use std::collections::HashMap;";
        assert_eq!(run_all("crates/core/src/x.rs", src).len(), 1);
        assert!(run_all("crates/serve/src/x.rs", src).is_empty());
        assert!(run_all("crates/cli/src/x.rs", src).is_empty());
    }

    #[test]
    fn d02_matches_calls_not_type_mentions() {
        let hit = "fn f() { let t = Instant::now(); }";
        let miss = "fn f(deadline: Instant) -> Instant { deadline }";
        assert_eq!(
            run_all("crates/core/src/x.rs", hit).iter().filter(|f| f.rule == "D02").count(),
            1
        );
        assert!(run_all("crates/core/src/x.rs", miss).iter().all(|f| f.rule != "D02"));
        let env = "fn f() { std::env::var(\"X\").ok(); }";
        assert_eq!(
            run_all("crates/core/src/x.rs", env).iter().filter(|f| f.rule == "D02").count(),
            1
        );
        assert!(run_all("crates/bench/src/x.rs", env).is_empty());
    }

    #[test]
    fn s01_flags_unserialized_field_and_halves() {
        let src = "struct A { x: u64, y: u64 }\n\
            impl A { fn save_state(&self, e: &mut Enc) { e.u64(self.x); }\n\
            fn load_state(&mut self, d: &mut Dec<'_>) -> R { self.x = d.u64()?; Ok(()) } }";
        let f = run_all("crates/dram/src/x.rs", src);
        let s: Vec<_> = f.iter().filter(|f| f.rule == "S01").collect();
        assert_eq!(s.len(), 1);
        assert!(s[0].message.contains("A.y"));
        assert_eq!(s[0].line, 1);

        let half =
            "struct B { x: u64 }\nimpl B { fn save_state(&self, e: &mut Enc) { e.u64(self.x); } }";
        let f = run_all("crates/dram/src/x.rs", half);
        assert!(f.iter().any(|f| f.rule == "S01" && f.message.contains("no load_state")));
    }

    #[test]
    fn a01_flags_narrowing_casts_and_bare_ops_in_timing_files() {
        let cast = "fn f(x: u64) -> u32 { x as u32 }";
        assert_eq!(run_all("crates/dram/src/system.rs", cast).len(), 1);
        assert!(run_all("crates/core/src/x.rs", cast).is_empty(), "A01 scoped to dram/memctrl");
        // Widening casts are fine.
        assert!(run_all("crates/dram/src/system.rs", "fn f(x: u32) -> u64 { x as u64 }").is_empty());

        let arith = "fn f(a: Cycle, b: Cycle) -> Cycle { a + b }";
        assert_eq!(run_all("crates/dram/src/bank.rs", arith).len(), 1);
        assert!(
            run_all("crates/dram/src/system.rs", arith).is_empty(),
            "bare ops only in timing files"
        );

        // Unary deref and negation are not binary arithmetic.
        let unary = "fn f(a: &mut u64) { *a = 1; let _b = -1i64; }";
        assert!(run_all("crates/dram/src/bank.rs", unary).is_empty());

        let wrap = "fn f(a: u64) -> u64 { a.wrapping_add(1) }";
        assert!(run_all("crates/memctrl/src/queue.rs", wrap).iter().any(|f| f.rule == "A01"));
    }

    #[test]
    fn allow_comments_suppress_with_reason() {
        let src = "use std::collections::HashMap; // melreq-allow(D01): keyed lookup only\n";
        let f = run_all("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].suppressed.as_deref(), Some("keyed lookup only"));
        // Wrong rule ID does not suppress.
        let src = "use std::collections::HashMap; // melreq-allow(D02): wrong rule\n";
        assert!(run_all("crates/core/src/x.rs", src)[0].suppressed.is_none());
    }

    #[test]
    fn test_modules_are_exempt_everywhere() {
        let src = "struct R { a: u8 }\n#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n fn f() { let _ = Instant::now(); let _ = 1 + 2; }\n}";
        assert!(run_all("crates/dram/src/bank.rs", src).is_empty());
    }
}
