//! Item extraction over the token stream: struct declarations with
//! their fields, `impl` blocks with their `save_state`/`load_state`
//! method bodies, and the spans of `#[cfg(test)]` modules (which every
//! rule skips — test code may do whatever it likes).

use crate::lexer::{Lexed, Token, TokenKind};

/// One declared struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// The type, rendered as a canonical token join (no whitespace
    /// games) — part of the snapshot-layout fingerprint.
    pub ty: String,
    /// 1-based line of the field declaration.
    pub line: u32,
}

/// One `struct` item with named fields (tuple and unit structs are
/// skipped — nothing in the snapshot layer uses them).
#[derive(Debug, Clone)]
pub struct StructDecl {
    /// Struct name.
    pub name: String,
    /// Declared fields in source order.
    pub fields: Vec<Field>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
}

/// A `save_state`/`load_state` method body found in an `impl` block.
#[derive(Debug, Clone)]
pub struct SnapMethod {
    /// Identifier tokens appearing anywhere in the body. A declared
    /// field counts as covered when its name appears here (via
    /// `self.field`, a struct-literal key, or destructuring).
    pub idents: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// The snapshot surface of one type: its `save_state` and/or
/// `load_state` bodies, keyed by the `impl` self-type name.
#[derive(Debug, Clone, Default)]
pub struct SnapImpl {
    /// `fn save_state` body, if present in this file.
    pub save: Option<SnapMethod>,
    /// `fn load_state` body, if present in this file.
    pub load: Option<SnapMethod>,
}

/// Everything the rules need from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Structs with named fields, in source order.
    pub structs: Vec<StructDecl>,
    /// Snapshot method bodies keyed by impl self-type name.
    pub snaps: std::collections::BTreeMap<String, SnapImpl>,
    /// Half-open token-index ranges of `#[cfg(test)] mod` bodies.
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileItems {
    /// Whether token index `idx` falls inside a `#[cfg(test)]` module.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx < b)
    }
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == c)
}

/// Index just past the brace-balanced block opening at `open` (which
/// must point at `{`). Returns `tokens.len()` on unbalanced input.
fn skip_block(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Skip a balanced `<...>` generics list starting at `open` (pointing at
/// `<`); returns the index just past the matching `>`.
fn skip_angles(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            // A parenthesized or bracketed group inside generics
            // (e.g. `Fn(A) -> B`) cannot contain a bare `<`/`>` that
            // unbalances us in this codebase's types.
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Render a token slice as a canonical type string.
fn render_type(tokens: &[Token]) -> String {
    let mut s = String::new();
    for t in tokens {
        match &t.kind {
            TokenKind::Ident(w) => {
                if s.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                    s.push(' ');
                }
                s.push_str(w);
            }
            TokenKind::Punct(c) => s.push(*c),
            TokenKind::PathSep => s.push_str("::"),
            TokenKind::Arrow => s.push_str("->"),
            TokenKind::Literal(l) => s.push_str(l),
            TokenKind::Lifetime => s.push('\''),
        }
    }
    s
}

/// Parse the named fields of a struct body; `open` points at `{`.
fn parse_fields(tokens: &[Token], open: usize) -> Vec<Field> {
    let end = skip_block(tokens, open) - 1; // index of closing `}`
    let mut fields = Vec::new();
    let mut i = open + 1;
    while i < end {
        // Skip attributes and visibility.
        if punct_at(tokens, i, '#') {
            if punct_at(tokens, i + 1, '[') {
                let mut depth = 0;
                i += 1;
                while i < end {
                    if punct_at(tokens, i, '[') {
                        depth += 1;
                    } else if punct_at(tokens, i, ']') {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
                continue;
            }
            i += 1;
            continue;
        }
        if ident_at(tokens, i) == Some("pub") {
            i += 1;
            if punct_at(tokens, i, '(') {
                // pub(crate) etc.
                while i < end && !punct_at(tokens, i, ')') {
                    i += 1;
                }
                i += 1;
            }
            continue;
        }
        // Expect `name : type ,`
        let Some(name) = ident_at(tokens, i) else {
            i += 1;
            continue;
        };
        if !punct_at(tokens, i + 1, ':') {
            i += 1;
            continue;
        }
        let name = name.to_string();
        let line = tokens[i].line;
        let ty_start = i + 2;
        // Type runs to the next top-level comma (angle/paren/bracket
        // depth aware) or the closing brace.
        let mut depth = 0isize;
        let mut j = ty_start;
        while j < end {
            match tokens[j].kind {
                TokenKind::Punct('<') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct('>') | TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct(',') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        fields.push(Field { name, ty: render_type(&tokens[ty_start..j]), line });
        i = j + 1;
    }
    fields
}

/// The self-type name of an `impl` header starting right after the
/// `impl` keyword at `i`; also returns the index of the opening `{`.
fn impl_target(tokens: &[Token], mut i: usize) -> (Option<String>, usize) {
    // Skip `<...>` generic params.
    if punct_at(tokens, i, '<') {
        i = skip_angles(tokens, i);
    }
    // Collect the first path; if a `for` follows, the real self type is
    // after it.
    let mut name: Option<String> = None;
    let mut last_ident: Option<String> = None;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Ident(w) if w == "for" => {
                last_ident = None; // discard the trait path
                i += 1;
            }
            TokenKind::Ident(w) if w == "where" => {
                name = name.or(last_ident.take());
                // Skip to the impl body.
                while i < tokens.len() && !punct_at(tokens, i, '{') {
                    i += 1;
                }
                break;
            }
            TokenKind::Ident(w) => {
                last_ident = Some(w.clone());
                i += 1;
            }
            TokenKind::Punct('<') => i = skip_angles(tokens, i),
            TokenKind::Punct('{') => {
                name = name.or(last_ident.take());
                break;
            }
            _ => i += 1,
        }
    }
    (name, i)
}

/// Collect identifier tokens in `tokens[range]`.
fn body_idents(tokens: &[Token], start: usize, end: usize) -> Vec<String> {
    tokens[start..end]
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::Ident(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

/// Extract structs, snapshot impls and test-module spans from a lexed
/// file.
pub fn extract(lexed: &Lexed) -> FileItems {
    let tokens = &lexed.tokens;
    let mut out = FileItems::default();
    let mut i = 0usize;
    while i < tokens.len() {
        match ident_at(tokens, i) {
            Some("struct") => {
                let Some(name) = ident_at(tokens, i + 1) else {
                    i += 1;
                    continue;
                };
                let name = name.to_string();
                let line = tokens[i].line;
                let mut j = i + 2;
                if punct_at(tokens, j, '<') {
                    j = skip_angles(tokens, j);
                }
                // `where` clauses on structs don't occur in this
                // workspace; named-field structs open with `{` here.
                if punct_at(tokens, j, '{') {
                    let fields = parse_fields(tokens, j);
                    if !out.in_test(i) {
                        out.structs.push(StructDecl { name, fields, line });
                    }
                    i = skip_block(tokens, j);
                } else {
                    // Tuple struct or unit struct — skip to `;` or the
                    // end of the parenthesized list.
                    while j < tokens.len() && !punct_at(tokens, j, ';') && !punct_at(tokens, j, '{')
                    {
                        j += 1;
                    }
                    i = j + 1;
                }
            }
            Some("impl") => {
                let (target, open) = impl_target(tokens, i + 1);
                let end = skip_block(tokens, open);
                if let Some(target) = target {
                    if !out.in_test(i) {
                        collect_snap_methods(tokens, open, end, &target, &mut out);
                    }
                }
                i = end;
            }
            Some("mod") => {
                // `#[cfg(test)] mod name { ... }` — look back for the
                // attribute tokens `# [ cfg ( test ) ]`.
                let is_test_mod = i >= 7
                    && punct_at(tokens, i - 7, '#')
                    && punct_at(tokens, i - 6, '[')
                    && ident_at(tokens, i - 5) == Some("cfg")
                    && punct_at(tokens, i - 4, '(')
                    && ident_at(tokens, i - 3) == Some("test")
                    && punct_at(tokens, i - 2, ')')
                    && punct_at(tokens, i - 1, ']');
                if is_test_mod {
                    let mut j = i + 1;
                    while j < tokens.len() && !punct_at(tokens, j, '{') {
                        if punct_at(tokens, j, ';') {
                            break; // `mod tests;` — out-of-line, skip
                        }
                        j += 1;
                    }
                    if punct_at(tokens, j, '{') {
                        let end = skip_block(tokens, j);
                        out.test_ranges.push((i, end));
                        i = end;
                        continue;
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Scan an impl body for `fn save_state` / `fn load_state` with bodies
/// (trait *declarations* end in `;` and are skipped).
fn collect_snap_methods(
    tokens: &[Token],
    open: usize,
    end: usize,
    target: &str,
    out: &mut FileItems,
) {
    let mut i = open + 1;
    while i < end.saturating_sub(1) {
        if ident_at(tokens, i) == Some("fn") {
            let name = ident_at(tokens, i + 1).unwrap_or("").to_string();
            let fn_line = tokens[i].line;
            // Find the body `{` (or `;` for a bodiless declaration),
            // skipping the signature. Generic bounds in these
            // signatures contain no braces.
            let mut j = i + 2;
            while j < end && !punct_at(tokens, j, '{') && !punct_at(tokens, j, ';') {
                j += 1;
            }
            if punct_at(tokens, j, '{') {
                let body_end = skip_block(tokens, j);
                if name == "save_state" || name == "load_state" {
                    let m = SnapMethod { idents: body_idents(tokens, j, body_end), line: fn_line };
                    let entry = out.snaps.entry(target.to_string()).or_default();
                    if name == "save_state" {
                        entry.save = Some(m);
                    } else {
                        entry.load = Some(m);
                    }
                }
                i = body_end;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn struct_fields_extract_with_types_and_lines() {
        let src = "pub struct Bank {\n    state: BankState,\n    /// doc\n    ready_at: Cycle,\n    ring: [Cycle; 4],\n    v: Vec<Option<u64>>,\n}";
        let items = extract(&lex(src));
        assert_eq!(items.structs.len(), 1);
        let s = &items.structs[0];
        assert_eq!(s.name, "Bank");
        let names: Vec<_> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["state", "ready_at", "ring", "v"]);
        assert_eq!(s.fields[1].line, 4);
        assert_eq!(s.fields[2].ty, "[Cycle;4]");
        assert_eq!(s.fields[3].ty, "Vec<Option<u64>>");
    }

    #[test]
    fn snap_methods_attach_to_impl_target() {
        let src = "struct A { x: u64, y: u64 }\n\
                   impl A {\n  pub fn save_state(&self, e: &mut Enc) { e.u64(self.x); }\n\
                   fn other(&self) {}\n\
                   pub fn load_state(&mut self, d: &mut Dec<'_>) -> R { self.x = d.u64()?; Ok(()) }\n}";
        let items = extract(&lex(src));
        let snap = items.snaps.get("A").expect("impl A snap methods");
        assert!(snap.save.as_ref().unwrap().idents.contains(&"x".to_string()));
        assert!(!snap.save.as_ref().unwrap().idents.contains(&"y".to_string()));
        assert!(snap.load.is_some());
    }

    #[test]
    fn trait_impls_and_generic_impls_resolve_self_type() {
        let src = "impl Snap for Phased {\n fn save_state(&self, e: &mut Enc) {} }\n\
                   impl<'a> Dec<'a> {\n fn load_state(&mut self) {} }";
        let items = extract(&lex(src));
        assert!(items.snaps.contains_key("Phased"));
        assert!(items.snaps.contains_key("Dec"));
    }

    #[test]
    fn bodiless_trait_declarations_are_skipped() {
        let src = "trait Snap { fn save_state(&self, e: &mut Enc); fn load_state(&mut self); }";
        let items = extract(&lex(src));
        assert!(items.snaps.is_empty());
    }

    #[test]
    fn cfg_test_modules_are_spanned() {
        let src = "struct Real { a: u8 }\n#[cfg(test)]\nmod tests {\n struct Fake { b: u8 }\n}";
        let items = extract(&lex(src));
        assert_eq!(items.structs.len(), 1);
        assert_eq!(items.structs[0].name, "Real");
        assert_eq!(items.test_ranges.len(), 1);
    }

    #[test]
    fn tuple_and_unit_structs_are_skipped() {
        let items = extract(&lex("struct T(u64);\nstruct U;\nstruct N { f: u8 }"));
        assert_eq!(items.structs.len(), 1);
        assert_eq!(items.structs[0].name, "N");
    }
}
