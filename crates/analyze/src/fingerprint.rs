//! Snapshot-layout fingerprinting (rule S02).
//!
//! Every struct that participates in snapshotting (has both
//! `save_state` and `load_state` in its file) contributes its declared
//! layout — name plus ordered `field:type` pairs — to a committed
//! fingerprint file, `snap.fingerprint` at the workspace root. The
//! analyzer recomputes the layouts on every run:
//!
//! * layouts changed, `SCHEMA_VERSION` unchanged → **S02 finding**: a
//!   layout change invalidates every persisted checkpoint, so it must
//!   bump `SCHEMA_VERSION` in `crates/snap` in the same diff;
//! * layouts changed *and* the version bumped → S02 finding instructing
//!   `melreq analyze --fix-fingerprint`, which rewrites the file (the
//!   gate stays red until the refreshed fingerprint is committed);
//! * fingerprint file missing → S02 finding (run `--fix-fingerprint`).
//!
//! The fingerprint deliberately hashes *declared* layouts, not encoder
//! call sequences: together with S01 (every field referenced in both
//! methods) a changed or added field cannot reach `main` without a
//! conscious schema decision.

use crate::items::StructDecl;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// File name of the committed fingerprint, relative to the root.
pub const FINGERPRINT_FILE: &str = "snap.fingerprint";

/// One snapshot'd struct's contribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Struct name.
    pub name: String,
    /// Number of declared fields.
    pub fields: usize,
    /// FNV-1a over `name{field:ty,field:ty,...}` in declaration order.
    pub hash: u64,
    /// Repo-relative file the struct lives in.
    pub file: String,
}

/// The computed layout set plus its combined hash.
#[derive(Debug, Clone, Default)]
pub struct LayoutSet {
    /// Per-struct layouts keyed by struct name (sorted — two structs
    /// with the same name in different files would collide, which the
    /// computation reports as a duplicate).
    pub structs: BTreeMap<String, StructLayout>,
    /// Struct names that appeared more than once across the workspace.
    pub duplicates: Vec<String>,
}

impl LayoutSet {
    /// Fold one file's snapshot'd structs in.
    pub fn add(&mut self, file: &str, s: &StructDecl) {
        let mut canon = String::new();
        let _ = write!(canon, "{}{{", s.name);
        for f in &s.fields {
            let _ = write!(canon, "{}:{},", f.name, f.ty);
        }
        canon.push('}');
        let layout = StructLayout {
            name: s.name.clone(),
            fields: s.fields.len(),
            hash: melreq_snap::fnv1a(canon.as_bytes()),
            file: file.to_string(),
        };
        if self.structs.insert(s.name.clone(), layout).is_some() {
            self.duplicates.push(s.name.clone());
        }
    }

    /// Combined hash over every struct line, order-independent by
    /// construction (the map iterates sorted by name).
    pub fn combined(&self) -> u64 {
        let mut acc = String::new();
        for s in self.structs.values() {
            let _ = writeln!(acc, "{} {} {:016x}", s.name, s.fields, s.hash);
        }
        melreq_snap::fnv1a(acc.as_bytes())
    }

    /// Render the committed fingerprint file contents.
    pub fn render(&self, schema_version: u32) -> String {
        let mut out = String::new();
        out.push_str(
            "# melreq snapshot-layout fingerprint — regenerate with `melreq analyze --fix-fingerprint`\n",
        );
        let _ = writeln!(out, "schema_version {schema_version}");
        let _ = writeln!(out, "layout {:016x}", self.combined());
        for s in self.structs.values() {
            let _ = writeln!(out, "struct {} {} {:016x} {}", s.name, s.fields, s.hash, s.file);
        }
        out
    }
}

/// A parsed committed fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Committed {
    /// `SCHEMA_VERSION` recorded at generation time.
    pub schema_version: u32,
    /// Combined layout hash recorded at generation time.
    pub layout: u64,
    /// Struct name → recorded per-struct hash.
    pub structs: BTreeMap<String, u64>,
}

/// Parse the committed fingerprint file. `Ok(None)` when absent.
pub fn read_committed(root: &Path) -> Result<Option<Committed>, String> {
    let path = root.join(FINGERPRINT_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut schema_version = None;
    let mut layout = None;
    let mut structs = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = || format!("{}:{}: malformed fingerprint line", path.display(), i + 1);
        match parts.next() {
            Some("schema_version") => {
                schema_version = Some(parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?);
            }
            Some("layout") => {
                layout = Some(
                    parts.next().and_then(|v| u64::from_str_radix(v, 16).ok()).ok_or_else(bad)?,
                );
            }
            Some("struct") => {
                let name = parts.next().ok_or_else(bad)?.to_string();
                let _fields = parts.next().ok_or_else(bad)?;
                let hash =
                    parts.next().and_then(|v| u64::from_str_radix(v, 16).ok()).ok_or_else(bad)?;
                structs.insert(name, hash);
            }
            _ => return Err(bad()),
        }
    }
    match (schema_version, layout) {
        (Some(schema_version), Some(layout)) => {
            Ok(Some(Committed { schema_version, layout, structs }))
        }
        _ => Err(format!("{}: missing schema_version/layout header", path.display())),
    }
}

/// Extract `SCHEMA_VERSION` from `crates/snap/src/lib.rs` *source* (not
/// the compiled constant — the analyzer must see the tree as committed,
/// and tests doctor temporary trees with other versions).
pub fn schema_version_from_source(root: &Path) -> Result<u32, String> {
    let path = root.join("crates/snap/src/lib.rs");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("pub const SCHEMA_VERSION: u32 =") {
            let digits: String = rest.chars().filter(|c| c.is_ascii_digit() || *c == '_').collect();
            return digits
                .replace('_', "")
                .parse()
                .map_err(|_| format!("{}: unparsable SCHEMA_VERSION", path.display()));
        }
    }
    Err(format!("{}: SCHEMA_VERSION not found", path.display()))
}

/// Human-readable struct-level diff between the committed fingerprint
/// and the computed layouts (used in the S02 message so the finding
/// names what drifted, not just that something did).
pub fn diff(committed: &Committed, computed: &LayoutSet) -> String {
    let mut changed = Vec::new();
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for (name, s) in &computed.structs {
        match committed.structs.get(name) {
            Some(&h) if h == s.hash => {}
            Some(_) => changed.push(name.as_str()),
            None => added.push(name.as_str()),
        }
    }
    for name in committed.structs.keys() {
        if !computed.structs.contains_key(name) {
            removed.push(name.as_str());
        }
    }
    let mut parts = Vec::new();
    if !changed.is_empty() {
        parts.push(format!("changed: {}", changed.join(", ")));
    }
    if !added.is_empty() {
        parts.push(format!("added: {}", added.join(", ")));
    }
    if !removed.is_empty() {
        parts.push(format!("removed: {}", removed.join(", ")));
    }
    if parts.is_empty() {
        parts.push("(per-struct hashes match; header drift)".to_string());
    }
    parts.join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::Field;

    fn decl(name: &str, fields: &[(&str, &str)]) -> StructDecl {
        StructDecl {
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(n, t)| Field { name: (*n).to_string(), ty: (*t).to_string(), line: 1 })
                .collect(),
            line: 1,
        }
    }

    #[test]
    fn layout_hash_is_field_order_sensitive() {
        let mut a = LayoutSet::default();
        a.add("f.rs", &decl("Bank", &[("state", "BankState"), ("ready_at", "Cycle")]));
        let mut b = LayoutSet::default();
        b.add("f.rs", &decl("Bank", &[("ready_at", "Cycle"), ("state", "BankState")]));
        assert_ne!(a.combined(), b.combined());
    }

    #[test]
    fn render_parses_back() {
        let mut set = LayoutSet::default();
        set.add("crates/dram/src/bank.rs", &decl("Bank", &[("state", "BankState")]));
        set.add("crates/dram/src/channel.rs", &decl("Channel", &[("banks", "Vec<Bank>")]));
        let dir = std::env::temp_dir().join(format!("melreq-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(FINGERPRINT_FILE), set.render(2)).unwrap();
        let c = read_committed(&dir).unwrap().expect("present");
        assert_eq!(c.schema_version, 2);
        assert_eq!(c.layout, set.combined());
        assert_eq!(c.structs.len(), 2);
        assert_eq!(diff(&c, &set), "(per-struct hashes match; header drift)");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_names_what_drifted() {
        let mut old = LayoutSet::default();
        old.add("f.rs", &decl("A", &[("x", "u64")]));
        old.add("f.rs", &decl("B", &[("y", "u64")]));
        let committed = Committed {
            schema_version: 2,
            layout: old.combined(),
            structs: old.structs.iter().map(|(k, v)| (k.clone(), v.hash)).collect(),
        };
        let mut new = LayoutSet::default();
        new.add("f.rs", &decl("A", &[("x", "u64"), ("z", "u64")]));
        new.add("f.rs", &decl("C", &[("w", "u64")]));
        let d = diff(&committed, &new);
        assert!(d.contains("changed: A") && d.contains("added: C") && d.contains("removed: B"));
    }
}
