//! # melreq-loadgen — deterministic open-loop load generation
//!
//! Drives `melreq-serve` with a seeded, reproducible arrival process
//! and measures what the paper-adjacent serving literature says matters
//! under contention: tail latency (p50/p95/p99), sustained throughput,
//! and shed/timeout counts. Two phases run back to back in one
//! invocation and land in one artifact (`BENCH_serve.json`):
//!
//! 1. **`baseline_close`** — every request opens a fresh connection,
//!    sends `Connection: close`, and carries a unique identity (a
//!    rotating `max_cycles` salt over a deterministic mixture of
//!    workload mixes), so nothing caches and nothing coalesces. This is
//!    the cold thread-per-connection model the event loop replaced.
//! 2. **`keepalive_cached`** — every connection is kept alive for the
//!    whole phase and every request is byte-identical, so after the
//!    first completion the response cache (and, while it is in flight,
//!    request coalescing) answers without simulating.
//!
//! The arrival process is open-loop: exponential inter-arrival gaps
//! drawn from the vendored xoshiro `SmallRng` at a fixed seed, request
//! latency measured from the *scheduled* arrival time — queueing delay
//! under overload shows up in the tail, as it should. The full arrival
//! stream (offsets and request bodies) is precomputed and hashed into
//! the artifact (`stream_hash`), so two runs with the same flags offer
//! byte-identical load.

use melreq_core::api::{resolve_mix, MelreqError, PolicyKind, SimRequest, SCHEMA_VERSION};
use melreq_core::experiment::ExperimentOptions;
use melreq_serve::http::ClientConn;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-request socket timeout — generous, so slow (queued) responses
/// count as latency rather than transport errors.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(120);

/// The deterministic workload mixture the unique-identity phase cycles
/// through (all 2-core mixes: cheap enough that the pool, not the
/// simulator, is the interesting bottleneck).
const MIXTURE: [&str; 4] = ["2MEM-1", "2MEM-2", "2MIX-1", "2MIX-2"];

/// Base for the rotating `max_cycles` salt that makes baseline-phase
/// requests unique without changing their cost (quick runs finish far
/// below a billion cycles).
const SALT_BASE: u64 = 1 << 40;

/// Load-generator configuration (`melreq loadbench` flags map onto it).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Offered arrival rate, requests per second (open loop).
    pub rps: f64,
    /// Client connections (worker threads issuing requests).
    pub conns: usize,
    /// Arrival-window length per phase, seconds.
    pub duration_s: f64,
    /// Arrival-process seed.
    pub seed: u64,
    /// Mix for the repeated identical request of the cached phase.
    pub mix: String,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7700".to_string(),
            rps: 200.0,
            conns: 16,
            duration_s: 2.0,
            seed: 42,
            mix: "2MEM-1".to_string(),
        }
    }
}

/// How one phase offers its load.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSpec {
    /// Phase name in the artifact.
    pub name: &'static str,
    /// Keep one connection per worker alive (vs reconnect per request).
    pub keepalive: bool,
    /// Give every request a unique identity (vs byte-identical repeats).
    pub unique: bool,
}

/// The two standard phases, in measurement order.
pub const PHASES: [PhaseSpec; 2] = [
    PhaseSpec { name: "baseline_close", keepalive: false, unique: true },
    PhaseSpec { name: "keepalive_cached", keepalive: true, unique: false },
];

/// Everything one phase measured.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    pub name: &'static str,
    pub keepalive: bool,
    pub unique: bool,
    /// Arrivals generated for the phase window.
    pub offered: u64,
    /// Requests actually issued (offered minus `dropped_at_cutoff`).
    pub sent: u64,
    pub completed_200: u64,
    pub http_429: u64,
    pub http_504: u64,
    pub http_5xx: u64,
    pub http_other: u64,
    pub transport_errors: u64,
    /// Backlogged arrivals discarded when the phase window closed.
    pub dropped_at_cutoff: u64,
    /// 200s answered from the response cache (`"cache":"response"`).
    pub cache_responses: u64,
    /// 200s coalesced onto an in-flight run (`"cache":"coalesced"`).
    pub coalesced: u64,
    /// Latency of completed (any status) requests, milliseconds, from
    /// scheduled arrival to full response.
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    pub mean_ms: f64,
    /// Wall clock from first scheduled arrival to last response.
    pub elapsed_s: f64,
    /// Successful (200) responses per second of elapsed time.
    pub throughput_rps: f64,
    /// FNV-1a over the precomputed arrival stream (offsets + bodies).
    pub stream_hash: u64,
}

/// One precomputed arrival: scheduled offset from phase start plus the
/// fully rendered request body.
struct PlannedArrival {
    offset: Duration,
    body: String,
}

/// A scheduled arrival in flight between the pacer and a worker.
struct QueuedArrival {
    scheduled: Instant,
    body: String,
}

#[derive(Default)]
struct Tally {
    completed_200: u64,
    http_429: u64,
    http_504: u64,
    http_5xx: u64,
    http_other: u64,
    transport_errors: u64,
    cache_responses: u64,
    coalesced: u64,
    latencies_ms: Vec<f64>,
}

struct PhaseShared {
    queue: Mutex<VecDeque<QueuedArrival>>,
    cond: Condvar,
    cutoff: AtomicBool,
    tally: Mutex<Tally>,
}

/// Render the request body for the repeated identical request of the
/// cached phase.
fn repeated_body(mix: &str) -> String {
    SimRequest::new(mix)
        .policy(PolicyKind::parse("me-lreq").expect("known policy token"))
        .opts(ExperimentOptions::quick())
        .to_json()
}

/// Precompute the phase's full arrival stream from the seed: offsets
/// via exponential inter-arrival gaps, bodies via the mixture + salt
/// rotation (unique phase) or verbatim repetition (cached phase).
fn plan_arrivals(cfg: &LoadConfig, spec: PhaseSpec) -> Vec<PlannedArrival> {
    let tag = u64::from_le_bytes(*b"loadgen\0");
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ tag ^ spec.name.len() as u64);
    let repeated = repeated_body(&cfg.mix);
    let mut arrivals = Vec::new();
    let mut t = 0.0f64;
    let mut salt = 0u64;
    loop {
        let u: f64 = rng.gen_range(0.0..1.0);
        t += -(1.0 - u).ln() / cfg.rps.max(1e-9);
        if t >= cfg.duration_s {
            break;
        }
        let body = if spec.unique {
            let mix = MIXTURE[rng.gen_range(0..MIXTURE.len())];
            salt += 1;
            SimRequest::new(mix)
                .policy(PolicyKind::parse("me-lreq").expect("known policy token"))
                .opts(ExperimentOptions::quick())
                .max_cycles(SALT_BASE + salt)
                .to_json()
        } else {
            repeated.clone()
        };
        arrivals.push(PlannedArrival { offset: Duration::from_secs_f64(t), body });
    }
    arrivals
}

/// FNV-hash the planned stream so the artifact can prove two runs
/// offered identical load.
fn stream_hash(arrivals: &[PlannedArrival]) -> u64 {
    let mut desc = String::new();
    for a in arrivals {
        let _ = write!(
            desc,
            "{}us:{:016x};",
            a.offset.as_micros(),
            melreq_snap::keyed("loadgen-req", &a.body)
        );
    }
    melreq_snap::keyed("loadgen-stream", &desc)
}

fn classify(tally: &mut Tally, status: u16, body: &str, latency_ms: f64) {
    tally.latencies_ms.push(latency_ms);
    match status {
        200 => {
            tally.completed_200 += 1;
            if body.contains("\"cache\":\"response\"") {
                tally.cache_responses += 1;
            } else if body.contains("\"cache\":\"coalesced\"") {
                tally.coalesced += 1;
            }
        }
        429 => tally.http_429 += 1,
        504 => tally.http_504 += 1,
        500..=599 => tally.http_5xx += 1,
        _ => tally.http_other += 1,
    }
}

fn worker(addr: &str, keepalive: bool, shared: &PhaseShared) {
    let mut conn: Option<ClientConn> = None;
    loop {
        let arrival = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(a) = queue.pop_front() {
                    break Some(a);
                }
                if shared.cutoff.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .cond
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("queue poisoned");
                queue = guard;
            }
        };
        let Some(arrival) = arrival else { break };

        if conn.is_none() || !keepalive {
            conn = ClientConn::connect(addr, REQUEST_TIMEOUT).ok();
        }
        let outcome = match conn.as_mut() {
            Some(c) => c.request("POST", "/run", Some(&arrival.body), !keepalive),
            None => Err("connect failed".to_string()),
        };
        let latency_ms = arrival.scheduled.elapsed().as_secs_f64() * 1e3;
        let mut tally = shared.tally.lock().expect("tally poisoned");
        match outcome {
            Ok((status, body)) => classify(&mut tally, status, &body, latency_ms),
            Err(_) => {
                tally.transport_errors += 1;
                conn = None;
            }
        }
        if !keepalive {
            conn = None;
        }
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // Nearest-rank: the smallest value with at least q of the mass at
    // or below it.
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Run one phase against the server: pace the planned arrivals in real
/// time, fan them out over `cfg.conns` worker threads, and aggregate.
pub fn run_phase(cfg: &LoadConfig, spec: PhaseSpec) -> Result<PhaseStats, String> {
    let arrivals = plan_arrivals(cfg, spec);
    let hash = stream_hash(&arrivals);
    let offered = arrivals.len() as u64;
    let shared = Arc::new(PhaseShared {
        queue: Mutex::new(VecDeque::new()),
        cond: Condvar::new(),
        cutoff: AtomicBool::new(false),
        tally: Mutex::new(Tally::default()),
    });

    let workers: Vec<_> = (0..cfg.conns.max(1))
        .map(|i| {
            let addr = cfg.addr.clone();
            let shared = shared.clone();
            let keepalive = spec.keepalive;
            std::thread::Builder::new()
                .name(format!("loadgen-{i}"))
                .spawn(move || worker(&addr, keepalive, &shared))
                .map_err(|e| format!("spawn worker: {e}"))
        })
        .collect::<Result<_, _>>()?;

    // The pacer: dispatch each arrival at its scheduled offset. Wall
    // clock is the whole point of a load generator.
    // melreq-allow(D02): load generation is real-time measurement
    let start = Instant::now();
    for a in arrivals {
        let target = start + a.offset;
        // melreq-allow(D02): pacing sleeps until the scheduled arrival
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let mut queue = shared.queue.lock().expect("queue poisoned");
        queue.push_back(QueuedArrival { scheduled: target, body: a.body });
        drop(queue);
        shared.cond.notify_one();
    }

    // Cutoff: the offer window is over. Unstarted arrivals are dropped
    // (and counted); in-flight requests run to completion.
    let dropped_at_cutoff = {
        let mut queue = shared.queue.lock().expect("queue poisoned");
        let n = queue.len() as u64;
        queue.clear();
        n
    };
    shared.cutoff.store(true, Ordering::SeqCst);
    shared.cond.notify_all();
    for w in workers {
        w.join().map_err(|_| "worker panicked".to_string())?;
    }
    let elapsed_s = start.elapsed().as_secs_f64();

    let tally = Arc::try_unwrap(shared)
        .map_err(|_| "phase state still shared".to_string())?
        .tally
        .into_inner()
        .expect("tally poisoned");
    let mut lat = tally.latencies_ms.clone();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let mean_ms = if lat.is_empty() { 0.0 } else { lat.iter().sum::<f64>() / lat.len() as f64 };
    #[allow(clippy::cast_precision_loss)]
    let throughput_rps = if elapsed_s > 0.0 { tally.completed_200 as f64 / elapsed_s } else { 0.0 };

    Ok(PhaseStats {
        name: spec.name,
        keepalive: spec.keepalive,
        unique: spec.unique,
        offered,
        sent: offered - dropped_at_cutoff,
        completed_200: tally.completed_200,
        http_429: tally.http_429,
        http_504: tally.http_504,
        http_5xx: tally.http_5xx,
        http_other: tally.http_other,
        transport_errors: tally.transport_errors,
        dropped_at_cutoff,
        cache_responses: tally.cache_responses,
        coalesced: tally.coalesced,
        p50_ms: percentile(&lat, 0.50),
        p90_ms: percentile(&lat, 0.90),
        p95_ms: percentile(&lat, 0.95),
        p99_ms: percentile(&lat, 0.99),
        max_ms: lat.last().copied().unwrap_or(0.0),
        mean_ms,
        elapsed_s,
        throughput_rps,
        stream_hash: hash,
    })
}

/// The full two-phase benchmark.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub phases: Vec<PhaseStats>,
    pub baseline_throughput_rps: f64,
    pub cached_throughput_rps: f64,
    pub speedup_cached_vs_baseline: f64,
}

/// Run both standard phases back to back and compute the headline
/// speedup (cached keep-alive throughput over the cold
/// connection-per-request baseline).
pub fn run(cfg: &LoadConfig) -> Result<BenchReport, MelreqError> {
    resolve_mix(&cfg.mix)?;
    if cfg.rps <= 0.0 || cfg.duration_s <= 0.0 {
        return Err(MelreqError::Usage("loadbench needs --rps > 0 and --duration > 0".into()));
    }
    let mut phases = Vec::new();
    for spec in PHASES {
        phases.push(run_phase(cfg, spec).map_err(MelreqError::Io)?);
    }
    let baseline = phases[0].throughput_rps;
    let cached = phases[1].throughput_rps;
    Ok(BenchReport {
        phases,
        baseline_throughput_rps: baseline,
        cached_throughput_rps: cached,
        speedup_cached_vs_baseline: if baseline > 0.0 { cached / baseline } else { 0.0 },
    })
}

fn phase_json(p: &PhaseStats) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"name\": \"{name}\",\n",
            "      \"keepalive\": {keepalive},\n",
            "      \"unique_requests\": {unique},\n",
            "      \"offered\": {offered},\n",
            "      \"sent\": {sent},\n",
            "      \"completed_200\": {completed}, \n",
            "      \"http_429\": {h429},\n",
            "      \"http_504\": {h504},\n",
            "      \"http_5xx\": {h5xx},\n",
            "      \"http_other\": {hother},\n",
            "      \"transport_errors\": {terr},\n",
            "      \"dropped_at_cutoff\": {dropped},\n",
            "      \"cache_responses\": {cacher},\n",
            "      \"coalesced\": {coal},\n",
            "      \"latency_ms\": {{\"p50\": {p50:.3}, \"p90\": {p90:.3}, \"p95\": {p95:.3}, \"p99\": {p99:.3}, \"max\": {max:.3}, \"mean\": {mean:.3}}},\n",
            "      \"elapsed_s\": {elapsed:.3},\n",
            "      \"throughput_rps\": {tput:.2},\n",
            "      \"stream_hash\": \"{hash:016x}\"\n",
            "    }}"
        ),
        name = p.name,
        keepalive = p.keepalive,
        unique = p.unique,
        offered = p.offered,
        sent = p.sent,
        completed = p.completed_200,
        h429 = p.http_429,
        h504 = p.http_504,
        h5xx = p.http_5xx,
        hother = p.http_other,
        terr = p.transport_errors,
        dropped = p.dropped_at_cutoff,
        cacher = p.cache_responses,
        coal = p.coalesced,
        p50 = p.p50_ms,
        p90 = p.p90_ms,
        p95 = p.p95_ms,
        p99 = p.p99_ms,
        max = p.max_ms,
        mean = p.mean_ms,
        elapsed = p.elapsed_s,
        tput = p.throughput_rps,
        hash = p.stream_hash,
    )
}

/// Render the artifact (`BENCH_serve.json` content).
pub fn render_json(cfg: &LoadConfig, report: &BenchReport) -> String {
    let phases: Vec<String> = report.phases.iter().map(phase_json).collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema_version\": {schema},\n",
            "  \"tool\": \"loadbench\",\n",
            "  \"addr\": \"{addr}\",\n",
            "  \"rps\": {rps:.1},\n",
            "  \"conns\": {conns},\n",
            "  \"duration_s\": {duration:.1},\n",
            "  \"seed\": {seed},\n",
            "  \"mix\": \"{mix}\",\n",
            "  \"phases\": [\n{phases}\n  ],\n",
            "  \"baseline_throughput_rps\": {base:.2},\n",
            "  \"cached_throughput_rps\": {cached:.2},\n",
            "  \"speedup_cached_vs_baseline\": {speedup:.2}\n",
            "}}\n"
        ),
        schema = SCHEMA_VERSION,
        addr = cfg.addr,
        rps = cfg.rps,
        conns = cfg.conns,
        duration = cfg.duration_s,
        seed = cfg.seed,
        mix = cfg.mix,
        phases = phases.join(",\n"),
        base = report.baseline_throughput_rps,
        cached = report.cached_throughput_rps,
        speedup = report.speedup_cached_vs_baseline,
    )
}

/// Extract a numeric field from a (flat-keyed) JSON artifact.
pub fn read_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Guard this run's cached throughput against a committed baseline
/// artifact: fail when it drops below `ratio` of the baseline's
/// `cached_throughput_rps`. Returns the OK line to print.
pub fn guard_check(
    artifact: &str,
    baseline: &str,
    baseline_path: &str,
    ratio: f64,
) -> Result<String, MelreqError> {
    let current = read_json_number(artifact, "cached_throughput_rps")
        .ok_or_else(|| MelreqError::Io("artifact has no cached_throughput_rps".into()))?;
    let base = read_json_number(baseline, "cached_throughput_rps").ok_or_else(|| {
        MelreqError::Usage(format!(
            "guard baseline {baseline_path} has no \"cached_throughput_rps\" field"
        ))
    })?;
    let floor = base * ratio;
    if current < floor {
        return Err(MelreqError::Timeout(format!(
            "loadbench guard FAILED: cached throughput {current:.2} rps is below \
             {floor:.2} rps (baseline {base:.2} rps x ratio {ratio})"
        )));
    }
    Ok(format!(
        "load guard OK: cached throughput {current:.2} rps >= {floor:.2} rps \
         (baseline {base:.2} rps x ratio {ratio})"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LoadConfig {
        LoadConfig { rps: 100.0, duration_s: 1.0, seed: 7, ..LoadConfig::default() }
    }

    #[test]
    fn arrival_streams_are_deterministic_per_seed_and_phase() {
        let a = plan_arrivals(&cfg(), PHASES[0]);
        let b = plan_arrivals(&cfg(), PHASES[0]);
        assert!(!a.is_empty());
        assert_eq!(stream_hash(&a), stream_hash(&b), "same seed, same stream");
        let other_seed = LoadConfig { seed: 8, ..cfg() };
        let c = plan_arrivals(&other_seed, PHASES[0]);
        assert_ne!(stream_hash(&a), stream_hash(&c), "different seed, different stream");
    }

    #[test]
    fn baseline_phase_requests_are_unique_and_cached_phase_repeats() {
        let unique = plan_arrivals(&cfg(), PHASES[0]);
        let mut bodies: Vec<&str> = unique.iter().map(|a| a.body.as_str()).collect();
        bodies.sort_unstable();
        let before = bodies.len();
        bodies.dedup();
        assert_eq!(bodies.len(), before, "every baseline request has a unique identity");

        let repeated = plan_arrivals(&cfg(), PHASES[1]);
        assert!(repeated.iter().all(|a| a.body == repeated[0].body), "cached phase repeats");
    }

    #[test]
    fn percentiles_and_classification_work() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.99), 0.0);

        let mut tally = Tally::default();
        classify(&mut tally, 200, "{\"cache\":\"response\",...}", 1.0);
        classify(&mut tally, 200, "{\"cache\":\"coalesced\",...}", 2.0);
        classify(&mut tally, 200, "{\"cache\":\"cold\",...}", 3.0);
        classify(&mut tally, 429, "", 4.0);
        classify(&mut tally, 504, "", 5.0);
        classify(&mut tally, 500, "", 6.0);
        assert_eq!(tally.completed_200, 3);
        assert_eq!(tally.cache_responses, 1);
        assert_eq!(tally.coalesced, 1);
        assert_eq!(tally.http_429, 1);
        assert_eq!(tally.http_504, 1);
        assert_eq!(tally.http_5xx, 1);
        assert_eq!(tally.latencies_ms.len(), 6);
    }

    #[test]
    fn artifact_renders_and_guard_reads_it_back() {
        let report = BenchReport {
            phases: vec![],
            baseline_throughput_rps: 10.0,
            cached_throughput_rps: 80.0,
            speedup_cached_vs_baseline: 8.0,
        };
        let json = render_json(&cfg(), &report);
        assert_eq!(read_json_number(&json, "cached_throughput_rps"), Some(80.0));
        assert_eq!(read_json_number(&json, "speedup_cached_vs_baseline"), Some(8.0));

        let ok = guard_check(&json, &json, "BENCH_serve.json", 0.25).expect("guard passes");
        assert!(ok.contains("load guard OK"), "{ok}");
        let fail = render_json(
            &cfg(),
            &BenchReport {
                phases: vec![],
                baseline_throughput_rps: 10.0,
                cached_throughput_rps: 1.0,
                speedup_cached_vs_baseline: 0.1,
            },
        );
        let err = guard_check(&fail, &json, "BENCH_serve.json", 0.25).unwrap_err();
        assert_eq!(err.exit_code(), 6, "guard failure is timeout-class: {err}");
    }
}
