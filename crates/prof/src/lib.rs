//! # melreq-prof — host-side wall-clock span profiler
//!
//! A dependency-free instrumentation layer for attributing *host* time
//! (as opposed to the deterministic *simulated* time melreq-obs
//! traces): where the wall-clock goes inside the work-stealing sweep
//! executor, the HTTP service event loop, and the experiment kernel.
//!
//! Design:
//!
//! * **Thread-local ring recorders** — each thread records spans
//!   (category + name + start/duration + up to four `u64` args) into a
//!   bounded [`Ring`]; when full the oldest span is dropped and a
//!   dropped counter incremented, so recording never blocks and never
//!   grows without bound.
//! * **Process-wide collector** — a thread's ring is flushed into a
//!   global collector when the thread exits (worker threads) or when
//!   [`drain`] runs (the calling thread); [`drain`] merges tracks by
//!   label into a [`Profile`].
//! * **Negligible overhead when disabled** — every entry point checks
//!   one relaxed atomic and returns; span names are built lazily
//!   (closures), so the disabled path allocates nothing.
//!
//! **Inertness contract**: profiling reads the wall clock and writes
//! thread-local memory — nothing else. It never touches simulation
//! state, RNG streams, or audit streams, so a profiled run is
//! bit-identical to an unprofiled one (pinned by the profiler-inertness
//! integration test). This crate is the *only* non-exempt home of
//! wall-clock reads; each carries its `melreq-allow(D02)` justification
//! for `melreq analyze`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum `u64` args carried per span.
pub const MAX_ARGS: usize = 4;

/// Default per-thread ring capacity in spans.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One recorded span: a closed `[start, start+dur)` interval on the
/// profiler clock (ns since the first [`enable`]).
#[derive(Debug, Clone)]
pub struct Span {
    /// Stage category (`"exec.job"`, `"warmup"`, `"serve.request"`...).
    pub cat: &'static str,
    /// Instance label (mix/policy names, request ids...).
    pub name: String,
    pub start_ns: u64,
    pub dur_ns: u64,
    args: [(&'static str, u64); MAX_ARGS],
    nargs: u8,
}

impl Span {
    /// The span's key/value args, in recording order.
    pub fn args(&self) -> &[(&'static str, u64)] {
        &self.args[..usize::from(self.nargs)]
    }

    /// Value of arg `key`, if recorded.
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args().iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// Bounded drop-oldest span buffer with an accurate dropped counter.
#[derive(Debug)]
pub struct Ring {
    cap: usize,
    spans: VecDeque<Span>,
    dropped: u64,
}

impl Ring {
    pub fn new(cap: usize) -> Self {
        Ring { cap: cap.max(1), spans: VecDeque::new(), dropped: 0 }
    }

    /// Record one span, evicting the oldest when at capacity.
    pub fn push(&mut self, span: Span) {
        if self.spans.len() >= self.cap {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans dropped to the capacity bound since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Remove and return all buffered spans (dropped counter persists).
    pub fn take(&mut self) -> Vec<Span> {
        self.spans.drain(..).collect()
    }

    /// Oldest-to-newest view of the buffered spans.
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }
}

/// One thread's worth of drained spans.
#[derive(Debug)]
pub struct TrackData {
    /// Track label (`"main"`, `"worker 0"`, `"serve-worker-1"`...).
    pub label: String,
    /// Spans sorted by `start_ns`.
    pub spans: Vec<Span>,
    /// Spans lost to ring overflow on this track.
    pub dropped: u64,
}

/// Everything recorded since the last [`drain`], merged by track label.
#[derive(Debug, Default)]
pub struct Profile {
    pub tracks: Vec<TrackData>,
}

impl Profile {
    pub fn total_spans(&self) -> usize {
        self.tracks.iter().map(|t| t.spans.len()).sum()
    }

    pub fn total_dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// `[min start, max end]` over every span, or `None` when empty.
    pub fn window(&self) -> Option<(u64, u64)> {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for t in &self.tracks {
            for s in &t.spans {
                lo = lo.min(s.start_ns);
                hi = hi.max(s.end_ns());
            }
        }
        (lo != u64::MAX).then_some((lo, hi))
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static COLLECTOR: Mutex<Vec<TrackData>> = Mutex::new(Vec::new());

struct Recorder {
    label: Option<String>,
    ring: Ring,
}

impl Recorder {
    fn flush_into_collector(&mut self) {
        if self.ring.is_empty() && self.ring.dropped() == 0 {
            return;
        }
        let track = TrackData {
            label: self.label.take().unwrap_or_else(|| "thread".to_string()),
            spans: self.ring.take(),
            dropped: self.ring.dropped(),
        };
        self.ring.dropped = 0;
        if let Ok(mut c) = COLLECTOR.lock() {
            c.push(track);
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        // Best-effort net for threads that never call [`flush_thread`].
        // Not sufficient on its own: scoped pools observe thread
        // completion when the closure returns, which can be *before*
        // TLS destructors run — instrumented worker loops must flush
        // explicitly on their way out.
        self.flush_into_collector();
    }
}

thread_local! {
    static RECORDER: RefCell<Recorder> =
        RefCell::new(Recorder { label: None, ring: Ring::new(DEFAULT_RING_CAPACITY) });
}

/// Turn span recording on. The first call fixes the profiler epoch; all
/// spans across enable/disable cycles share one monotonic clock.
pub fn enable() {
    // melreq-allow(D02): the profiler epoch is the reference point all host-time spans are measured from; no simulated state ever derives from it
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Release);
}

/// Turn span recording off (already-buffered spans stay drainable).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Is recording currently on? One relaxed atomic load — the fast path
/// every instrumentation site bails out through when profiling is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the profiler epoch; `0` when profiling is off.
#[inline]
pub fn now_ns() -> u64 {
    if !enabled() {
        return 0;
    }
    let Some(epoch) = EPOCH.get() else { return 0 };
    // melreq-allow(D02): host-time span stamp for the self-profile; simulation state never observes it
    ns_since(*epoch, Instant::now())
}

/// Map an externally-taken [`Instant`] onto the profiler clock; `0`
/// when profiling is off. Lets already-instrumented code (the serve
/// event loop keeps wall stamps for its latency histograms regardless)
/// reuse its stamps for spans.
pub fn ns_of(t: Instant) -> u64 {
    if !enabled() {
        return 0;
    }
    let Some(epoch) = EPOCH.get() else { return 0 };
    ns_since(*epoch, t)
}

fn ns_since(epoch: Instant, t: Instant) -> u64 {
    t.checked_duration_since(epoch).map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

/// Label the current thread's track (`"worker 3"`...). Lazy: the label
/// closure only runs while profiling is on.
pub fn set_thread_track(label: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    let label = label();
    RECORDER.with(|r| r.borrow_mut().label = Some(label));
}

/// Record a span from explicit profiler-clock stamps (for intervals
/// that start on one code path and end on another, e.g. queue waits).
/// No-op when profiling is off or the stamps predate it.
pub fn record(
    cat: &'static str,
    name: impl FnOnce() -> String,
    start_ns: u64,
    end_ns: u64,
    args: &[(&'static str, u64)],
) {
    if !enabled() || end_ns < start_ns || (start_ns == 0 && end_ns == 0) {
        return;
    }
    let mut packed = [("", 0u64); MAX_ARGS];
    let n = args.len().min(MAX_ARGS);
    packed[..n].copy_from_slice(&args[..n]);
    let span = Span {
        cat,
        name: name(),
        start_ns,
        dur_ns: end_ns - start_ns,
        args: packed,
        nargs: u8::try_from(n).expect("MAX_ARGS fits in u8"),
    };
    RECORDER.with(|r| r.borrow_mut().ring.push(span));
}

/// RAII span: records `[creation, drop)` on the current thread's track.
/// Inert (and allocation-free) when profiling is off.
pub struct SpanGuard {
    cat: &'static str,
    name: Option<String>,
    start_ns: u64,
    args: [(&'static str, u64); MAX_ARGS],
    nargs: u8,
}

impl SpanGuard {
    /// Attach a `u64` arg (silently ignored past [`MAX_ARGS`]).
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.name.is_none() {
            return;
        }
        let n = usize::from(self.nargs);
        if n < MAX_ARGS {
            self.args[n] = (key, value);
            self.nargs += 1;
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else { return };
        let end = now_ns();
        if end < self.start_ns {
            return;
        }
        let span = Span {
            cat: self.cat,
            name,
            start_ns: self.start_ns,
            dur_ns: end - self.start_ns,
            args: self.args,
            nargs: self.nargs,
        };
        RECORDER.with(|r| r.borrow_mut().ring.push(span));
    }
}

/// Open a span that closes (and records) when the guard drops. The name
/// closure only runs while profiling is on.
pub fn span(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard { cat, name: None, start_ns: 0, args: [("", 0); MAX_ARGS], nargs: 0 };
    }
    SpanGuard { cat, name: Some(name()), start_ns: now_ns(), args: [("", 0); MAX_ARGS], nargs: 0 }
}

/// Flush the calling thread's recorder into the process-wide
/// collector. Worker loops call this before returning: joining a
/// scoped thread does not wait for its TLS destructors, so the Drop
/// flush alone can lose a race against [`drain`].
pub fn flush_thread() {
    RECORDER.with(|r| r.borrow_mut().flush_into_collector());
}

/// Flush the calling thread's recorder and collect every track flushed
/// so far (threads that exited, plus this one) into a [`Profile`].
/// Tracks sharing a label — e.g. `"worker 0"` across two scoped pools —
/// are merged. The collector is left empty.
pub fn drain() -> Profile {
    flush_thread();
    let raw = {
        let mut c = COLLECTOR.lock().expect("prof collector poisoned");
        std::mem::take(&mut *c)
    };
    let mut tracks: Vec<TrackData> = Vec::new();
    for t in raw {
        match tracks.iter_mut().find(|have| have.label == t.label) {
            Some(have) => {
                have.spans.extend(t.spans);
                have.dropped += t.dropped;
            }
            None => tracks.push(t),
        }
    }
    for t in &mut tracks {
        t.spans.sort_by_key(|s| s.start_ns);
    }
    tracks.sort_by(|a, b| a.label.cmp(&b.label));
    Profile { tracks }
}

// ---------------------------------------------------------------------
// Aggregation: the self-profile summary.
// ---------------------------------------------------------------------

/// Per-track utilization over the profile window.
#[derive(Debug)]
pub struct TrackStat {
    pub label: String,
    pub spans: u64,
    /// Union of span intervals on this track (nested spans counted once).
    pub busy_ns: u64,
    /// `busy_ns` over the whole profile window, in percent.
    pub busy_pct: f64,
    /// `exec.job` spans this track ran that were stolen from another
    /// worker's local deque.
    pub steals: u64,
    pub dropped: u64,
}

/// Per-category (stage) aggregate.
#[derive(Debug)]
pub struct StageStat {
    pub cat: String,
    pub count: u64,
    /// Sum of span durations (total work attributed to the stage).
    pub busy_ns: u64,
    /// Stage critical path: `max(end) - min(start)` over its spans —
    /// the elapsed window the stage kept *some* thread occupied.
    pub critical_path_ns: u64,
}

/// One `(category, name)` total for the top-N table.
#[derive(Debug)]
pub struct TopSpan {
    pub cat: String,
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
}

/// The aggregated self-profile: what `--profile` prints and embeds.
#[derive(Debug, Default)]
pub struct Summary {
    /// Whole profile window (first span start to last span end), ns.
    pub window_ns: u64,
    pub tracks: Vec<TrackStat>,
    pub stages: Vec<StageStat>,
    pub top: Vec<TopSpan>,
    pub total_spans: u64,
    pub total_dropped: u64,
}

/// Union length of a set of `[start, end)` intervals.
fn interval_union_ns(spans: &[Span]) -> u64 {
    // Spans arrive sorted by start (drain guarantees it).
    let mut busy = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for s in spans {
        let (a, b) = (s.start_ns, s.end_ns());
        match &mut cur {
            Some((_, end)) if a <= *end => *end = (*end).max(b),
            Some((start, end)) => {
                busy += *end - *start;
                cur = Some((a, b));
            }
            None => cur = Some((a, b)),
        }
    }
    if let Some((start, end)) = cur {
        busy += end - start;
    }
    busy
}

/// Aggregate a drained [`Profile`] into the printable/embeddable
/// summary: per-track busy %, per-stage totals and critical paths, and
/// the `top_n` largest `(category, name)` time sinks.
pub fn summarize(profile: &Profile, top_n: usize) -> Summary {
    let Some((lo, hi)) = profile.window() else { return Summary::default() };
    let window_ns = hi - lo;
    let tracks = profile
        .tracks
        .iter()
        .map(|t| {
            let busy_ns = interval_union_ns(&t.spans);
            let steals =
                t.spans.iter().filter(|s| s.cat == "exec.job" && s.arg("steal") == Some(1)).count()
                    as u64;
            TrackStat {
                label: t.label.clone(),
                spans: t.spans.len() as u64,
                busy_ns,
                busy_pct: if window_ns == 0 {
                    0.0
                } else {
                    busy_ns as f64 / window_ns as f64 * 100.0
                },
                steals,
                dropped: t.dropped,
            }
        })
        .collect();

    let mut stages: Vec<StageStat> = Vec::new();
    let mut totals: Vec<TopSpan> = Vec::new();
    for t in &profile.tracks {
        for s in &t.spans {
            match stages.iter_mut().find(|g| g.cat == s.cat) {
                Some(g) => {
                    g.count += 1;
                    g.busy_ns += s.dur_ns;
                    // Track the stage window via (min start, max end)
                    // packed in critical_path_ns afterwards; store raw
                    // extremes in a parallel pass below instead.
                    g.critical_path_ns = g.critical_path_ns.max(s.end_ns());
                }
                None => stages.push(StageStat {
                    cat: s.cat.to_string(),
                    count: 1,
                    busy_ns: s.dur_ns,
                    critical_path_ns: s.end_ns(),
                }),
            }
            match totals.iter_mut().find(|g| g.cat == s.cat && g.name == s.name) {
                Some(g) => {
                    g.count += 1;
                    g.total_ns += s.dur_ns;
                }
                None => totals.push(TopSpan {
                    cat: s.cat.to_string(),
                    name: s.name.clone(),
                    count: 1,
                    total_ns: s.dur_ns,
                }),
            }
        }
    }
    // Second pass: turn the stored max-end into (max end - min start).
    for g in &mut stages {
        let min_start = profile
            .tracks
            .iter()
            .flat_map(|t| t.spans.iter())
            .filter(|s| s.cat == g.cat)
            .map(|s| s.start_ns)
            .min()
            .unwrap_or(0);
        g.critical_path_ns = g.critical_path_ns.saturating_sub(min_start);
    }
    stages.sort_by_key(|g| std::cmp::Reverse(g.busy_ns));
    totals.sort_by_key(|g| std::cmp::Reverse(g.total_ns));
    totals.truncate(top_n);

    Summary {
        window_ns,
        tracks,
        stages,
        top: totals,
        total_spans: profile.total_spans() as u64,
        total_dropped: profile.total_dropped(),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl Summary {
    /// Render the summary as one JSON object — the block embedded both
    /// in the Perfetto artifact (viewers ignore unknown top-level keys)
    /// and in `BENCH_sweep.json` under `"host_profile"`. Deliberately
    /// avoids the key names CI's deterministic artifact diff greps for.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write_kv(&mut out, "window_ms", &format!("{:.3}", ms(self.window_ns)));
        let _ = write_kv(&mut out, "spans", &self.total_spans.to_string());
        let _ = write_kv(&mut out, "dropped_spans", &self.total_dropped.to_string());
        out.push_str("\"workers\":[");
        for (i, t) in self.tracks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"track\":\"{}\",\"spans\":{},\"busy_ms\":{:.3},\"busy_pct\":{:.2},\"steals\":{},\"dropped\":{}}}",
                json_escape(&t.label),
                t.spans,
                ms(t.busy_ns),
                t.busy_pct,
                t.steals,
                t.dropped
            ));
        }
        out.push_str("],\"stages\":[");
        for (i, g) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stage\":\"{}\",\"count\":{},\"busy_ms\":{:.3},\"critical_path_ms\":{:.3}}}",
                json_escape(&g.cat),
                g.count,
                ms(g.busy_ns),
                ms(g.critical_path_ns)
            ));
        }
        out.push_str("],\"top_spans\":[");
        for (i, t) in self.top.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"cat\":\"{}\",\"name\":\"{}\",\"count\":{},\"total_ms\":{:.3}}}",
                json_escape(&t.cat),
                json_escape(&t.name),
                t.count,
                ms(t.total_ns)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Human rendering: the tables `--profile` prints after a run.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "host profile: {:.1} ms window, {} spans ({} dropped)\n",
            ms(self.window_ns),
            self.total_spans,
            self.total_dropped
        );
        out.push_str("  track utilization:\n");
        for t in &self.tracks {
            out.push_str(&format!(
                "    {:<16} busy {:>8.1} ms ({:>5.1}%), {} spans, {} steals\n",
                t.label,
                ms(t.busy_ns),
                t.busy_pct,
                t.spans,
                t.steals
            ));
        }
        out.push_str("  stages (total work / critical path):\n");
        for g in &self.stages {
            out.push_str(&format!(
                "    {:<16} {:>8.1} ms / {:>8.1} ms over {} span(s)\n",
                g.cat,
                ms(g.busy_ns),
                ms(g.critical_path_ns),
                g.count
            ));
        }
        if !self.top.is_empty() {
            out.push_str("  top spans by total time:\n");
            for t in &self.top {
                out.push_str(&format!(
                    "    {:<16} {:<24} {:>8.1} ms over {} span(s)\n",
                    t.cat,
                    t.name,
                    ms(t.total_ns),
                    t.count
                ));
            }
        }
        out
    }
}

fn write_kv(out: &mut String, key: &str, raw_value: &str) -> std::fmt::Result {
    use std::fmt::Write as _;
    write!(out, "\"{key}\":{raw_value},")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Enable/disable and the collector are process-global; tests that
    /// touch them serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn mk(cat: &'static str, name: &str, start: u64, dur: u64) -> Span {
        Span {
            cat,
            name: name.to_string(),
            start_ns: start,
            dur_ns: dur,
            args: [("", 0); MAX_ARGS],
            nargs: 0,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = Ring::new(3);
        for i in 0..5u64 {
            ring.push(mk("t", &format!("s{i}"), i, 1));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2, "two oldest spans evicted");
        let names: Vec<&str> = ring.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["s2", "s3", "s4"], "drop-oldest keeps the newest spans");
    }

    #[test]
    fn ring_take_preserves_dropped_counter() {
        let mut ring = Ring::new(1);
        ring.push(mk("t", "a", 0, 1));
        ring.push(mk("t", "b", 1, 1));
        assert_eq!(ring.dropped(), 1);
        let spans = ring.take();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "b");
        assert_eq!(ring.dropped(), 1, "take() reports, not resets, the loss");
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let _g = locked();
        disable();
        let _ = drain(); // clear any residue from other tests
        assert_eq!(now_ns(), 0);
        {
            let mut s = span("test", || unreachable!("name closure must not run when disabled"));
            s.arg("k", 1);
        }
        record("test", || unreachable!("disabled record must not name"), 1, 2, &[]);
        set_thread_track(|| unreachable!("disabled track label must not build"));
        let p = drain();
        assert_eq!(p.total_spans(), 0, "nothing recorded while disabled");
    }

    #[test]
    fn enabled_spans_round_trip_through_drain() {
        let _g = locked();
        disable();
        let _ = drain();
        enable();
        set_thread_track(|| "unit".to_string());
        {
            let mut s = span("test.cat", || "outer".to_string());
            s.arg("k", 7);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let t0 = now_ns();
        record("test.cat", || "stamped".to_string(), t0, t0 + 500, &[("steal", 1)]);
        disable();
        let p = drain();
        let track = p.tracks.iter().find(|t| t.label == "unit").expect("unit track present");
        assert_eq!(track.spans.len(), 2);
        let outer = track.spans.iter().find(|s| s.name == "outer").expect("outer span");
        assert!(outer.dur_ns >= 1_000_000, "slept 2 ms, span must be >= 1 ms");
        assert_eq!(outer.arg("k"), Some(7));
        let stamped = track.spans.iter().find(|s| s.name == "stamped").expect("stamped span");
        assert_eq!(stamped.dur_ns, 500);
        assert_eq!(stamped.arg("steal"), Some(1));
        assert_eq!(drain().total_spans(), 0, "drain leaves the collector empty");
    }

    #[test]
    fn drain_merges_same_labeled_tracks_and_collects_dead_threads() {
        let _g = locked();
        disable();
        let _ = drain();
        enable();
        for round in 0..2u64 {
            std::thread::scope(|s| {
                s.spawn(move || {
                    set_thread_track(|| "pool worker".to_string());
                    record(
                        "test.merge",
                        || format!("round {round}"),
                        10 * round + 1,
                        10 * round + 5,
                        &[],
                    );
                    flush_thread();
                });
            });
        }
        disable();
        let p = drain();
        let track =
            p.tracks.iter().find(|t| t.label == "pool worker").expect("merged worker track");
        assert_eq!(track.spans.len(), 2, "both scoped-pool generations merged into one track");
        assert!(track.spans[0].start_ns <= track.spans[1].start_ns, "spans sorted by start");
    }

    #[test]
    fn summary_busy_uses_interval_union() {
        let profile = Profile {
            tracks: vec![TrackData {
                label: "worker 0".to_string(),
                // An outer 0..100 span with a nested 10..50 span: busy
                // must be 100, not 140.
                spans: vec![mk("exec.job", "outer", 0, 100), mk("warmup", "inner", 10, 40)],
                dropped: 3,
            }],
        };
        let s = summarize(&profile, 5);
        assert_eq!(s.window_ns, 100);
        assert_eq!(s.tracks.len(), 1);
        assert_eq!(s.tracks[0].busy_ns, 100, "nested spans are not double-counted");
        assert!((s.tracks[0].busy_pct - 100.0).abs() < 1e-9);
        assert_eq!(s.tracks[0].dropped, 3);
        assert_eq!(s.total_dropped, 3);
        let warm = s.stages.iter().find(|g| g.cat == "warmup").expect("warmup stage");
        assert_eq!(warm.busy_ns, 40);
        assert_eq!(warm.critical_path_ns, 40, "stage window is max end - min start");
    }

    #[test]
    fn summary_counts_steals_and_ranks_top_spans() {
        let steal = {
            let mut s = mk("exec.job", "job 4", 0, 10);
            s.args[0] = ("steal", 1);
            s.nargs = 1;
            s
        };
        let profile = Profile {
            tracks: vec![TrackData {
                label: "worker 1".to_string(),
                spans: vec![
                    steal,
                    mk("exec.job", "job 5", 20, 5),
                    mk("policy", "RR 2MEM-1", 30, 90),
                ],
                dropped: 0,
            }],
        };
        let s = summarize(&profile, 2);
        assert_eq!(s.tracks[0].steals, 1);
        assert_eq!(s.top.len(), 2);
        assert_eq!(s.top[0].name, "RR 2MEM-1", "largest total first");
        let json = s.render_json();
        assert!(json.contains("\"workers\":["));
        assert!(json.contains("\"busy_pct\":"));
        assert!(json.contains("\"critical_path_ms\":"));
        assert!(!json.contains("results_hash"), "must not collide with CI's determinism grep");
        assert!(!json.contains("sim_cycles"), "must not collide with CI's determinism grep");
        let text = s.render_text();
        assert!(text.contains("track utilization"));
        assert!(text.contains("worker 1"));
    }
}
