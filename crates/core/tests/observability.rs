//! Observability-inertness regression: attaching the trace collector,
//! the epoch sampler, or both must not perturb the simulation.
//!
//! The observed run fans the same audit tap out to both the auditor and
//! the collector, so the strongest available check is free: the FNV-1a
//! hash over the full audit event stream must match the un-observed run
//! bit for bit, along with every paper metric. A collector that ever
//! fed back into scheduling (e.g. by consuming the ME-LREQ tie-break
//! RNG) would shift at least one grant and fail the hash comparison.

use melreq_core::experiment::{ObserveOptions, ProfileCache};
use melreq_core::{run_mix_audited, run_mix_audited_observed, run_mix_observed, ExperimentOptions};
use melreq_memctrl::policy::PolicyKind;
use melreq_workloads::mix_by_name;
use proptest::prelude::*;

#[test]
fn tracing_and_sampling_are_inert_for_every_policy() {
    let mix = mix_by_name("2MEM-1");
    let observe = ObserveOptions { sample_epoch: Some(2_000), ..ObserveOptions::default() };
    for policy in &PolicyKind::figure2_set() {
        let name = policy.name();
        // Fresh caches per arm: shared profile state must not be what
        // makes the two runs agree.
        let opts = ExperimentOptions::quick();
        let plain_cache = ProfileCache::new();
        let (plain, plain_audit) = run_mix_audited(&mix, policy, &opts, &plain_cache);
        let obs_cache = ProfileCache::new();
        let (observed, obs_audit, collector) =
            run_mix_audited_observed(&mix, policy, &opts, &observe, &obs_cache);

        assert!(plain_audit.is_clean(), "[{name}] plain audit:\n{}", plain_audit.render());
        assert!(obs_audit.is_clean(), "[{name}] observed audit:\n{}", obs_audit.render());
        assert_eq!(
            plain_audit.stream_hash, obs_audit.stream_hash,
            "[{name}] tracing changed the audit event stream"
        );
        assert_eq!(plain_audit.events, obs_audit.events, "[{name}] event counts diverged");
        assert_eq!(plain.sim_cycles, observed.sim_cycles, "[{name}] cycle counts diverged");
        assert_eq!(plain.ipc_multi, observed.ipc_multi, "[{name}] per-core IPC diverged");
        assert_eq!(plain.read_latency, observed.read_latency, "[{name}] read latency diverged");
        assert_eq!(plain.smt_speedup, observed.smt_speedup, "[{name}] SMT speedup diverged");
        assert_eq!(plain.unfairness, observed.unfairness, "[{name}] unfairness diverged");

        let c = collector.lock().expect("collector");
        assert!(c.decisions_seen() > 0, "[{name}] collector saw no decisions");
        assert!(!c.series().is_empty(), "[{name}] sampler produced no rows");
        let (active, totals) = c.active_rule_totals().expect("active policy totals");
        assert_eq!(active, name, "[{name}] provenance bucketed under the wrong policy");
        assert!(totals.total() > 0, "[{name}] no grants attributed to a rule");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The epoch sampler reads identical state under the fast-forward
    /// and cycle-exact kernels: every `EpochRow` — IPC, pending reads,
    /// ME, queue depth, bus utilization, traffic rates — must match
    /// bit for bit at every sample point, for any epoch length and any
    /// paper policy. This pins the `step_window` clamp that forces the
    /// fast-forward kernel to tick sampling boundaries explicitly.
    #[test]
    fn epoch_series_is_kernel_independent(
        epoch in 500u64..6_000,
        policy_pick in 0usize..5,
    ) {
        let mix = mix_by_name("2MEM-1");
        let policy = PolicyKind::figure2_set()[policy_pick].clone();
        let observe = ObserveOptions { sample_epoch: Some(epoch), ..ObserveOptions::default() };
        let run = |tick_exact: bool| {
            let cache = ProfileCache::new();
            let opts = ExperimentOptions { tick_exact, ..ExperimentOptions::quick() };
            run_mix_observed(&mix, &policy, &opts, &observe, &cache)
        };
        let (fast, fast_c) = run(false);
        let (exact, exact_c) = run(true);
        prop_assert_eq!(fast.sim_cycles, exact.sim_cycles, "cycle counts diverged");
        let fast_c = fast_c.lock().expect("collector");
        let exact_c = exact_c.lock().expect("collector");
        prop_assert!(!fast_c.series().is_empty(), "sampler produced no rows");
        prop_assert_eq!(
            fast_c.series(),
            exact_c.series(),
            "epoch series diverged between kernels (epoch {})",
            epoch
        );
    }
}
