//! Property-based tests of the cache hierarchy: conservation and
//! liveness under arbitrary access streams.

use melreq_cache::CacheConfig;
use melreq_core::Hierarchy;
use melreq_cpu::{CoreMemory, CoreToken, MemResponse};
use melreq_dram::DramSystem;
use melreq_memctrl::controller::ControllerConfig;
use melreq_memctrl::policy::PolicyKind;
use melreq_memctrl::MemoryController;
use melreq_stats::types::CoreId;
use proptest::prelude::*;
use std::collections::HashSet;

fn hierarchy(cores: usize, policy: PolicyKind) -> Hierarchy {
    let me: Vec<f64> = (0..cores).map(|i| 1.0 + i as f64).collect();
    let ctrl = MemoryController::new(
        ControllerConfig::paper(),
        DramSystem::paper(),
        policy.build(&me, cores, 11),
        policy.read_first(),
        cores,
    );
    Hierarchy::new(
        cores,
        CacheConfig::l1i_paper(),
        CacheConfig::l1d_paper(),
        CacheConfig::l2_paper(),
        ctrl,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every accepted load completes exactly once, regardless of the
    /// access pattern, the policy, or how many cores interleave.
    #[test]
    fn loads_complete_exactly_once(
        accesses in proptest::collection::vec((0u16..4, 0u64..4096, any::<bool>()), 1..120),
        policy_pick in 0usize..5
    ) {
        let policy = PolicyKind::figure2_set()[policy_pick].clone();
        let mut h = hierarchy(4, policy);
        let mut outstanding: HashSet<(u16, u64)> = HashSet::new();
        let mut now = 0u64;
        let mut done = Vec::new();
        for (token, (core, line, is_store)) in accesses.into_iter().enumerate() {
            let token = token as u64;
            let addr = 0x100_0000 + line * 64;
            if is_store {
                // Stores may be rejected (MSHR full); that is allowed.
                let _ = h.store(CoreId(core), addr, now);
            } else {
                match h.load(CoreId(core), CoreToken::Load(token), addr, now) {
                    MemResponse::Pending => {
                        outstanding.insert((core, token));
                    }
                    MemResponse::HitAt(at) => prop_assert!(at > now),
                    MemResponse::Blocked => {}
                }
            }
            // Advance a little between accesses.
            for _ in 0..3 {
                done.clear();
                h.advance(now, &mut done);
                for &(c, t) in &done {
                    if let CoreToken::Load(seq) = t {
                        prop_assert!(
                            outstanding.remove(&(c.0, seq)),
                            "completion for unknown load (core {c}, seq {seq})"
                        );
                    }
                }
                now += 1;
            }
        }
        // Drain: everything outstanding must eventually complete.
        let deadline = now + 1_000_000;
        while !outstanding.is_empty() && now < deadline {
            done.clear();
            h.advance(now, &mut done);
            for &(c, t) in &done {
                if let CoreToken::Load(seq) = t {
                    prop_assert!(outstanding.remove(&(c.0, seq)), "duplicate completion");
                }
            }
            now += 1;
        }
        prop_assert!(outstanding.is_empty(), "lost {} loads", outstanding.len());
    }

    /// The hierarchy never invents traffic: DRAM reads are bounded by the
    /// number of distinct lines requested (no duplicated fetches thanks to
    /// MSHR merging, no spurious fetches).
    #[test]
    fn dram_reads_bounded_by_distinct_lines(
        lines in proptest::collection::vec(0u64..64, 1..100)
    ) {
        let mut h = hierarchy(1, PolicyKind::HfRf);
        let distinct: HashSet<u64> = lines.iter().copied().collect();
        let mut now = 0u64;
        let mut pending = 0u64;
        let mut done = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            let addr = 0x200_0000 + line * 64;
            match h.load(CoreId(0), CoreToken::Load(i as u64), addr, now) {
                MemResponse::Pending => pending += 1,
                MemResponse::HitAt(_) => {}
                MemResponse::Blocked => {}
            }
            done.clear();
            h.advance(now, &mut done);
            pending -= done.len() as u64;
            now += 1;
        }
        let deadline = now + 1_000_000;
        while pending > 0 && now < deadline {
            done.clear();
            h.advance(now, &mut done);
            pending -= done.len() as u64;
            now += 1;
        }
        prop_assert_eq!(pending, 0, "hierarchy wedged");
        prop_assert!(
            h.stats().mem_reads.get() <= distinct.len() as u64,
            "{} DRAM reads for {} distinct lines",
            h.stats().mem_reads.get(),
            distinct.len()
        );
    }
}
