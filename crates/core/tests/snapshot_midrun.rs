//! Mid-run snapshot fidelity: pausing a multiprogrammed run at an
//! arbitrary cycle, serializing the machine, and restoring the bytes into
//! a freshly constructed system must be indistinguishable from never
//! having paused at all.
//!
//! For every paper policy (the Figure 2 set) on two core counts, the run
//! is driven to the measurement boundary and then a proptest-chosen
//! number of extra cycles into the measured window — a point where
//! in-flight MSHRs, queued DRAM commands, partially drained write buffers
//! and mid-burst timers are all live. The machine is snapshotted and
//! forked: one arm simply continues, the other restores the bytes into a
//! fresh system. Both arms must produce the same [`RunOutcome`] field for
//! field *and* end in bit-identical architectural state (FNV-1a over the
//! final snapshot bytes).
//!
//! The audit oracle is deliberately absent here: an attached audit models
//! the machine from reset, so restoring a snapshot detaches it by design
//! (see `MemoryController::load_state`). End-state snapshot hashes are
//! the stronger check anyway — they fingerprint every serialized
//! component, not just the command stream.

use melreq_core::{System, SystemConfig};
use melreq_memctrl::policy::PolicyKind;
use melreq_snap::fnv1a;
use melreq_trace::InstrStream;
use melreq_workloads::{mix_by_name, SliceKind};
use proptest::prelude::*;

const WARMUP: u64 = 4_000;
const TARGET: u64 = 6_000;
const MAX_CYCLES: u64 = 1 << 26;

fn build(mix_name: &str, kind: &PolicyKind, me: &[f64]) -> System {
    let mix = mix_by_name(mix_name);
    let streams: Vec<Box<dyn InstrStream + Send>> = mix
        .apps()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            Box::new(a.build_stream(i, SliceKind::Evaluation(0))) as Box<dyn InstrStream + Send>
        })
        .collect();
    System::new(SystemConfig::paper(mix.cores(), kind.clone()), streams, me)
}

proptest! {
    // Each case sweeps 5 policies x 2 core counts with two full runs
    // apiece; a handful of random pause points buys plenty of state-space
    // coverage without dominating the suite's runtime.
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn midrun_snapshot_continue_equals_restore(seed in any::<u64>()) {
        for (combo, (mix_name, cores)) in [("2MEM-1", 2usize), ("4MEM-1", 4usize)]
            .into_iter()
            .enumerate()
        {
            for (pi, kind) in PolicyKind::figure2_set().iter().enumerate() {
                // A distinct, deterministic pause offset per combination.
                let k = seed
                    .rotate_left((combo * 5 + pi) as u32 * 7)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    % 3_000;
                let me: Vec<f64> = (0..cores).map(|i| 0.5 + i as f64).collect();

                let mut sys = build(mix_name, kind, &me);
                sys.prepare_window(WARMUP, TARGET);
                prop_assert!(sys.run_to_boundary(MAX_CYCLES), "warm-up must complete");
                for _ in 0..k {
                    sys.tick();
                }
                let snap = sys.snapshot();

                let mut restored = build(mix_name, kind, &me);
                restored
                    .load_snapshot(&snap)
                    .expect("mid-run snapshot must restore into an identical fresh system");
                prop_assert_eq!(restored.now(), sys.now());

                let name = kind.name();
                let out_a = sys.run_window(MAX_CYCLES);
                let out_b = restored.run_window(MAX_CYCLES);
                prop_assert!(!out_a.timed_out && !out_b.timed_out, "[{}] must finish", name);
                prop_assert_eq!(out_a.cycles, out_b.cycles, "[{}] cycles", name);
                prop_assert_eq!(out_a.ipc, out_b.ipc, "[{}] IPC", name);
                prop_assert_eq!(out_a.read_latency, out_b.read_latency, "[{}] latency", name);
                prop_assert_eq!(
                    out_a.mean_read_latency, out_b.mean_read_latency,
                    "[{}] mean latency", name
                );
                prop_assert_eq!(out_a.bytes_by_core, out_b.bytes_by_core, "[{}] bytes", name);
                prop_assert_eq!(
                    fnv1a(&sys.snapshot()),
                    fnv1a(&restored.snapshot()),
                    "[{}] final machine state diverged after a mid-run restore",
                    name
                );
            }
        }
    }
}
