//! The grown scheduler zoo through the open policy registry: BLISS and
//! TCM-cluster (plus the externally contributed FQ/STF) must be
//! first-class citizens of every harness path the paper's policies
//! enjoy — name resolution, audited runs with deterministic event
//! streams, shared-warm-up forking, and mid-run pause/restore.

use melreq_core::experiment::{run_mix, run_mix_audited, run_mix_group, ProfileCache};
use melreq_core::{ExperimentOptions, PolicyKind, System, SystemConfig};
use melreq_memctrl::{canonical_name, registry};
use melreq_snap::fnv1a;
use melreq_trace::InstrStream;
use melreq_workloads::{mix_by_name, SliceKind};

/// The grown set: every non-paper policy the registry resolves,
/// including parameterized variants off their defaults.
fn grown_set() -> Vec<PolicyKind> {
    vec![
        PolicyKind::parse("fq").unwrap(),
        PolicyKind::parse("stf").unwrap(),
        PolicyKind::parse("bliss").unwrap(),
        PolicyKind::parse("bliss(threshold=2,clear=3000)").unwrap(),
        PolicyKind::parse("tcm").unwrap(),
        PolicyKind::parse("tcm(quantum=1500)").unwrap(),
        PolicyKind::parse("me-lreq-on(epoch=20000)").unwrap(),
    ]
}

#[test]
fn every_registered_policy_round_trips_through_the_api() {
    for d in registry() {
        let kind = PolicyKind::parse(d.id).expect("id resolves");
        let token = canonical_name(&kind);
        let back = PolicyKind::parse(&token).expect("canonical token resolves");
        assert_eq!(kind, back, "{}: parse -> canonical -> parse must be identity", d.id);
        for alias in d.aliases {
            assert_eq!(
                PolicyKind::parse(alias).expect("alias resolves"),
                d.default_kind(),
                "alias {alias} must resolve to {}",
                d.id
            );
        }
    }
}

#[test]
fn grown_set_audits_clean_with_deterministic_streams() {
    let cache = ProfileCache::new();
    let opts = ExperimentOptions::quick();
    let mix = mix_by_name("2MEM-1");
    for kind in grown_set() {
        let (ra, a) = run_mix_audited(&mix, &kind, &opts, &cache);
        let (rb, b) = run_mix_audited(&mix, &kind, &opts, &cache);
        assert!(a.is_clean(), "[{}] audit must pass:\n{}", kind.name(), a.render());
        assert!(a.events > 0, "[{}] instrumentation must emit events", kind.name());
        assert_eq!(a.stream_hash, b.stream_hash, "[{}] stream must replay", kind.name());
        assert_eq!(ra.smt_speedup, rb.smt_speedup, "[{}]", kind.name());
        assert!(ra.harmonic_speedup > 0.0, "[{}] no core may starve", kind.name());
        assert!(ra.max_slowdown >= 1.0 - 1e-9, "[{}]", kind.name());
        assert!(ra.unfairness >= 1.0, "[{}]", kind.name());
    }
}

#[test]
fn zoo_forks_match_fresh_runs_bit_exactly() {
    let cache = ProfileCache::new();
    let opts = ExperimentOptions::quick();
    let mix = mix_by_name("2MEM-1");
    let policies = [
        PolicyKind::HfRf,
        PolicyKind::parse("bliss").unwrap(),
        PolicyKind::parse("tcm").unwrap(),
        PolicyKind::Fq,
        PolicyKind::Stf,
    ];
    let group = run_mix_group(&mix, &policies, &opts, &cache, None);
    assert!(!group[0].warmup_from_checkpoint, "first policy owns the warm-up");
    for r in &group[1..] {
        assert!(r.warmup_from_checkpoint, "{} must fork the shared warm-up", r.policy);
    }
    for (p, forked) in policies.iter().zip(&group) {
        let fresh = run_mix(&mix, p, &opts, &cache);
        assert_eq!(forked.ipc_multi, fresh.ipc_multi, "{}", p.name());
        assert_eq!(forked.read_latency, fresh.read_latency, "{}", p.name());
        assert_eq!(forked.sim_cycles, fresh.sim_cycles, "{}", p.name());
        assert_eq!(forked.smt_speedup, fresh.smt_speedup, "{}", p.name());
        assert_eq!(forked.harmonic_speedup, fresh.harmonic_speedup, "{}", p.name());
        assert_eq!(forked.max_slowdown, fresh.max_slowdown, "{}", p.name());
    }
}

fn build(mix_name: &str, kind: &PolicyKind, me: &[f64]) -> System {
    let mix = mix_by_name(mix_name);
    let streams: Vec<Box<dyn InstrStream + Send>> = mix
        .apps()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            Box::new(a.build_stream(i, SliceKind::Evaluation(0))) as Box<dyn InstrStream + Send>
        })
        .collect();
    System::new(SystemConfig::paper(mix.cores(), kind.clone()), streams, me)
}

/// Pause each zoo policy mid-window — with blacklist bits, cluster
/// ranks, epoch counters and attained-service state all live — snapshot,
/// restore into a fresh system, and require both arms to finish in
/// bit-identical architectural state.
#[test]
fn zoo_midrun_snapshot_continue_equals_restore() {
    const WARMUP: u64 = 4_000;
    const TARGET: u64 = 6_000;
    const MAX_CYCLES: u64 = 1 << 26;
    for (pi, kind) in grown_set().iter().enumerate() {
        // A distinct deterministic pause offset per policy.
        let k = (pi as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 3_000;
        let me = [0.5, 1.5];

        let mut sys = build("2MEM-1", kind, &me);
        sys.prepare_window(WARMUP, TARGET);
        assert!(sys.run_to_boundary(MAX_CYCLES), "warm-up must complete");
        for _ in 0..k {
            sys.tick();
        }
        let snap = sys.snapshot();

        let mut restored = build("2MEM-1", kind, &me);
        restored
            .load_snapshot(&snap)
            .expect("mid-run snapshot must restore into an identical fresh system");
        assert_eq!(restored.now(), sys.now());

        let name = kind.name();
        let out_a = sys.run_window(MAX_CYCLES);
        let out_b = restored.run_window(MAX_CYCLES);
        assert!(!out_a.timed_out && !out_b.timed_out, "[{name}] must finish");
        assert_eq!(out_a.cycles, out_b.cycles, "[{name}] cycles");
        assert_eq!(out_a.ipc, out_b.ipc, "[{name}] IPC");
        assert_eq!(out_a.read_latency, out_b.read_latency, "[{name}] latency");
        assert_eq!(
            fnv1a(&sys.snapshot()),
            fnv1a(&restored.snapshot()),
            "[{name}] final machine state diverged after a mid-run restore"
        );
    }
}
