//! Host-profiler inertness: the span profiler observes wall-clock time
//! only, so enabling it must not perturb a single simulated bit. An
//! audited run of all five paper policies is compared byte-for-byte —
//! the versioned report JSON embeds every paper metric and the audit
//! event-stream hashes, so byte equality here is bit equality of the
//! outcomes and of the full audited event streams.

use melreq_core::api::{Session, SimRequest};
use melreq_core::experiment::{ExperimentOptions, RunControl};
use melreq_memctrl::policy::PolicyKind;

#[test]
fn profiling_is_bit_inert_across_all_paper_policies() {
    let policies = vec![
        PolicyKind::HfRf,
        PolicyKind::RoundRobin,
        PolicyKind::Lreq,
        PolicyKind::Me,
        PolicyKind::MeLreq,
    ];
    let req = SimRequest::new("4MEM-1")
        .policies(policies)
        .opts(ExperimentOptions::quick())
        .audit(true)
        .threads(2);

    let unprofiled = Session::new().run(&req, &RunControl::default()).expect("unprofiled run");
    melreq_prof::enable();
    let profiled = Session::new().run(&req, &RunControl::default()).expect("profiled run");
    melreq_prof::disable();
    let profile = melreq_prof::drain();

    assert_eq!(
        unprofiled.to_json(),
        profiled.to_json(),
        "profiled report must be byte-identical (paper metrics AND audit stream hashes)"
    );
    // And the profiled run did actually record something — inertness by
    // inactivity would prove nothing.
    let spans: usize = profile.tracks.iter().map(|t| t.spans.len()).sum();
    assert!(spans > 0, "the profiled arm must have captured spans");
    assert!(
        profile.tracks.iter().any(|t| t.spans.iter().any(|s| s.cat == "session")),
        "the facade session span must be present"
    );
}
