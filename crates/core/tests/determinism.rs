//! Kernel-equivalence regression: the event-driven fast-forward loop must
//! be indistinguishable from the cycle-exact loop.
//!
//! `System::set_tick_exact(true)` forces the pre-optimization behaviour of
//! ticking every cycle. For each of the paper's five policies the same
//! (mix, options) run is executed under both kernels with the audit
//! instrumentation attached, and the results must agree *bit for bit*:
//! the FNV-1a hash over the full audit event stream (every submission,
//! scheduling decision, grant, refresh, and precharge, in order), every
//! per-core IPC, and the cycle count. A fast-forward kernel that ever
//! skips a cycle in which some component could have acted would perturb
//! at least one grant time and fail the hash comparison.

use melreq_core::experiment::ProfileCache;
use melreq_core::{run_mix_audited, ExperimentOptions};
use melreq_memctrl::policy::PolicyKind;
use melreq_workloads::mix_by_name;

#[test]
fn fast_forward_matches_tick_exact_for_every_policy() {
    let mix = mix_by_name("2MEM-1");
    let policies = [
        PolicyKind::HfRf,
        PolicyKind::Lreq,
        PolicyKind::Me,
        PolicyKind::MeLreq,
        PolicyKind::MeLreqOnline { epoch_cycles: 3_000 },
    ];
    for policy in &policies {
        // Fresh caches per mode: profiling runs are kernel-independent
        // inputs, and separate caches prove that rather than assume it.
        let run = |tick_exact: bool| {
            let cache = ProfileCache::new();
            let opts = ExperimentOptions { tick_exact, ..ExperimentOptions::quick() };
            run_mix_audited(&mix, policy, &opts, &cache)
        };
        let (fast, fast_audit) = run(false);
        let (exact, exact_audit) = run(true);
        let name = policy.name();
        assert!(fast_audit.is_clean(), "[{name}] fast-forward audit:\n{}", fast_audit.render());
        assert!(exact_audit.is_clean(), "[{name}] tick-exact audit:\n{}", exact_audit.render());
        assert!(fast_audit.events > 0, "[{name}] instrumentation must emit events");
        assert_eq!(
            fast_audit.stream_hash, exact_audit.stream_hash,
            "[{name}] audit event streams diverged between kernels"
        );
        assert_eq!(fast_audit.events, exact_audit.events, "[{name}] event counts diverged");
        assert_eq!(fast.ipc_multi, exact.ipc_multi, "[{name}] per-core IPC diverged");
        assert_eq!(fast.read_latency, exact.read_latency, "[{name}] read latency diverged");
        assert_eq!(fast.smt_speedup, exact.smt_speedup, "[{name}] SMT speedup diverged");
        assert_eq!(fast.unfairness, exact.unfairness, "[{name}] unfairness diverged");
        assert!(!fast.timed_out && !exact.timed_out, "[{name}] runs must complete");
    }
}
