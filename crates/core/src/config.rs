//! Whole-system configuration (Table 1).

use melreq_cache::CacheConfig;
use melreq_cpu::CoreConfig;
use melreq_dram::{DramGeometry, DramTiming};
use melreq_memctrl::controller::ControllerConfig;
use melreq_memctrl::policy::PolicyKind;

/// Every structural and timing parameter of the simulated machine.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of cores (1/2/4/8 in the paper).
    pub cores: usize,
    /// Core microarchitecture.
    pub core: CoreConfig,
    /// L1 instruction cache (per core).
    pub l1i: CacheConfig,
    /// L1 data cache (per core).
    pub l1d: CacheConfig,
    /// Shared L2.
    pub l2: CacheConfig,
    /// DRAM geometry.
    pub geometry: DramGeometry,
    /// DRAM timing (in CPU cycles).
    pub timing: DramTiming,
    /// Memory-controller buffering and thresholds.
    pub ctrl: ControllerConfig,
    /// Scheduling policy under test.
    pub policy: PolicyKind,
    /// Core clock in Hz (for GB/s conversion only).
    pub freq_hz: f64,
    /// Seed for the policy's tie-breaker RNG.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's machine with `cores` cores and the given policy.
    pub fn paper(cores: usize, policy: PolicyKind) -> Self {
        SystemConfig {
            cores,
            core: CoreConfig::paper(),
            l1i: CacheConfig::l1i_paper(),
            l1d: CacheConfig::l1d_paper(),
            l2: CacheConfig::l2_paper(),
            geometry: DramGeometry::paper(),
            timing: DramTiming::ddr2_800_at_3_2ghz(),
            ctrl: ControllerConfig::paper(),
            policy,
            freq_hz: 3.2e9,
            seed: 0xC0FFEE,
        }
    }

    /// Validate cross-component invariants.
    pub fn validate(&self) {
        assert!(self.cores >= 1, "need at least one core");
        assert!(self.cores <= 64, "priority tables support up to 64 cores");
        self.core.validate();
        self.l1i.validate();
        self.l1d.validate();
        self.l2.validate();
        assert!(self.freq_hz > 0.0, "core frequency must be positive");
        if let PolicyKind::Fixed { order, .. } = &self.policy {
            assert_eq!(order.len(), self.cores, "fixed priority order must cover all cores");
        }
    }

    /// Render the Table 1 parameter dump (used by the quickstart example).
    pub fn describe(&self) -> String {
        format!(
            "cores: {} x {}-issue (ROB {}, IQ {}, LQ/SQ {}/{})\n\
             L1I/L1D: {}KB/{}KB {}-way, L2: {}MB {}-way shared\n\
             memory: {} logical channels x {} banks, DDR2 {}-{}-{} (cpu cycles), burst {}\n\
             controller: {}-entry buffer, drain at {}/{}, overhead {} cycles, policy {}",
            self.cores,
            self.core.width,
            self.core.rob,
            self.core.iq,
            self.core.lq,
            self.core.sq,
            self.l1i.size_bytes >> 10,
            self.l1d.size_bytes >> 10,
            self.l1d.ways,
            self.l2.size_bytes >> 20,
            self.l2.ways,
            self.geometry.channels,
            self.geometry.banks_per_channel(),
            self.timing.t_cl,
            self.timing.t_rcd,
            self.timing.t_rp,
            self.timing.burst,
            self.ctrl.buffer_entries,
            self.ctrl.drain_start,
            self.ctrl.drain_stop,
            self.ctrl.overhead,
            self.policy.name(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_validate() {
        for cores in [1, 2, 4, 8] {
            SystemConfig::paper(cores, PolicyKind::HfRf).validate();
        }
    }

    #[test]
    fn describe_mentions_policy() {
        let c = SystemConfig::paper(4, PolicyKind::MeLreq);
        assert!(c.describe().contains("ME-LREQ"));
        assert!(c.describe().contains("64-entry"));
    }

    #[test]
    #[should_panic(expected = "cover all cores")]
    fn fixed_policy_must_match_core_count() {
        let c = SystemConfig::paper(4, PolicyKind::Fixed { name: "FIX-10", order: vec![1, 0] });
        c.validate();
    }
}
