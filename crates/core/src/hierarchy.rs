//! The two-level cache hierarchy bound to the memory controller.
//!
//! Implements [`CoreMemory`] for all cores at once: per-core L1I/L1D with
//! MSHRs, a shared L2 with its own MSHRs, write-back propagation, and the
//! transaction plumbing down to [`MemoryController`].
//!
//! # Transaction flows
//!
//! *Load / instruction fetch*: L1 lookup → hit (fixed latency) or MSHR
//! allocation → L2 lookup after the L1 tag latency → L2 hit (fill L1 after
//! the L2 latency) or L2 MSHR allocation → memory read. When DRAM data
//! returns, the L2 is filled (possibly evicting a dirty victim → memory
//! write), every waiting L1 is filled (possibly evicting a dirty victim →
//! L2), and the stalled micro-ops resume.
//!
//! *Store*: write-allocate, write-back. A store that hits L1D dirties the
//! line and retires; a miss allocates an MSHR and fetches the line like a
//! load (the core does **not** wait — stores retire into the store path,
//! per the paper's "write requests normally can be well handled by write
//! buffers"). DRAM *write* traffic arises only from dirty evictions.
//!
//! # Simplifications (documented in DESIGN.md)
//!
//! * No back-invalidation on L2 eviction (programs are private per core;
//!   no sharing exists, so this affects neither correctness nor the
//!   scheduling comparison).
//! * The L2→L1 return path costs one cycle on top of the DRAM data-ready
//!   time; the controller's 15 ns fixed overhead models the round trip.

use melreq_cache::{AllocOutcome, CacheArray, CacheConfig, MshrFile};
use melreq_cpu::{CoreMemory, CoreToken, MemResponse};
use melreq_memctrl::MemoryController;
use melreq_stats::types::{line_addr, AccessKind, Addr, CoreId, Cycle};
use melreq_stats::Counter;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Which L1 a transaction originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Inst,
    Data,
}

/// An L1-level waiter parked in an L1D/L1I MSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L1Waiter {
    /// A load (or ifetch) whose core op must be resumed.
    Token(CoreToken),
    /// A write-allocate store: no token, but the line fills dirty.
    Store,
}

/// An L2-level waiter: which core's L1 (and which one) wants the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct L2Waiter {
    core: CoreId,
    origin: Origin,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// The L1 tag check finished and missed: look up the L2.
    L2Access { core: CoreId, line: Addr, origin: Origin },
    /// Data for `line` is at the L2 boundary: fill the L1 and wake waiters.
    L1Fill { core: CoreId, line: Addr, origin: Origin },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    at: Cycle,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Hierarchy-level statistics (cache stats live in the arrays themselves).
#[derive(Debug, Default, Clone)]
pub struct HierarchyStats {
    /// Loads that hit in L1D.
    pub l1d_load_hits: Counter,
    /// Demand reads sent to memory.
    pub mem_reads: Counter,
    /// Write-backs sent to memory.
    pub mem_writes: Counter,
    /// Stores rejected because the L1D MSHR file was full.
    pub store_stalls: Counter,
}

/// The assembled hierarchy for `n` cores.
#[derive(Debug)]
pub struct Hierarchy {
    l1i: Vec<CacheArray>,
    l1i_mshr: Vec<MshrFile<L1Waiter>>,
    l1d: Vec<CacheArray>,
    l1d_mshr: Vec<MshrFile<L1Waiter>>,
    l2: CacheArray,
    l2_mshr: MshrFile<L2Waiter>,
    ctrl: MemoryController,
    events: BinaryHeap<Reverse<Event>>,
    event_seq: u64,
    /// Lines that missed L2 but could not enter the controller yet.
    pending_mem: VecDeque<(CoreId, Addr)>,
    /// Dirty L2 victims waiting for controller space.
    pending_wb: VecDeque<(CoreId, Addr)>,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Build the hierarchy for `cores` cores over `ctrl`.
    pub fn new(
        cores: usize,
        l1i_cfg: CacheConfig,
        l1d_cfg: CacheConfig,
        l2_cfg: CacheConfig,
        ctrl: MemoryController,
    ) -> Self {
        assert!(cores >= 1, "need at least one core");
        Hierarchy {
            l1i: (0..cores).map(|_| CacheArray::new(l1i_cfg)).collect(),
            l1i_mshr: (0..cores).map(|_| MshrFile::new(l1i_cfg.mshrs)).collect(),
            l1d: (0..cores).map(|_| CacheArray::new(l1d_cfg)).collect(),
            l1d_mshr: (0..cores).map(|_| MshrFile::new(l1d_cfg.mshrs)).collect(),
            l2: CacheArray::new(l2_cfg),
            l2_mshr: MshrFile::new(l2_cfg.mshrs),
            ctrl,
            events: BinaryHeap::new(),
            event_seq: 0,
            pending_mem: VecDeque::new(),
            pending_wb: VecDeque::new(),
            stats: HierarchyStats::default(),
        }
    }

    /// The memory controller (policy stats, DRAM stats).
    pub fn controller(&self) -> &MemoryController {
        &self.ctrl
    }

    /// Hierarchy statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Clear measurement statistics after warm-up (controller latency and
    /// byte counters; cache arrays keep their contents — that is the
    /// point of warming up).
    pub fn reset_stats(&mut self) {
        self.ctrl.reset_stats();
        self.stats = HierarchyStats::default();
    }

    /// Forward fresh memory-efficiency estimates to the scheduling
    /// policy (the online-profiling hook).
    pub fn update_profile(&mut self, me: &[f64]) {
        self.ctrl.update_profile(me);
    }

    /// Attach audit instrumentation to the controller (and the DRAM
    /// device beneath it) — see [`melreq_audit`].
    pub fn attach_audit(&mut self, audit: melreq_audit::AuditHandle) {
        self.ctrl.attach_audit(audit);
    }

    /// Swap the controller's scheduling policy in place (warmup sharing:
    /// one warmed hierarchy forks into one copy per measured policy).
    pub fn set_policy(
        &mut self,
        policy: Box<dyn melreq_memctrl::policy::SchedulerPolicy>,
        read_first: bool,
    ) {
        self.ctrl.set_policy(policy, read_first);
    }

    /// Announce a memory-efficiency profile on the audit stream without
    /// reprogramming the policy (see
    /// [`melreq_memctrl::MemoryController::announce_profile`]).
    pub fn announce_profile(&self, me: &[f64]) {
        self.ctrl.announce_profile(me);
    }

    /// Serialize all mutable hierarchy state: cache arrays, MSHR files
    /// (with their parked waiters), in-flight cache events, stalled
    /// memory submissions, statistics, and the controller beneath.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        let save_l1_waiter = |w: &L1Waiter, enc: &mut melreq_snap::Enc| match *w {
            L1Waiter::Token(CoreToken::Load(seq)) => {
                enc.u8(0);
                enc.u64(seq);
            }
            L1Waiter::Token(CoreToken::Fetch) => enc.u8(1),
            L1Waiter::Store => enc.u8(2),
        };
        enc.usize(self.l1i.len());
        for c in 0..self.l1i.len() {
            self.l1i[c].save_state(enc);
            self.l1i_mshr[c].save_state(enc, save_l1_waiter);
            self.l1d[c].save_state(enc);
            self.l1d_mshr[c].save_state(enc, save_l1_waiter);
        }
        self.l2.save_state(enc);
        self.l2_mshr.save_state(enc, |w, enc| {
            enc.u16(w.core.0);
            enc.u8(match w.origin {
                Origin::Inst => 0,
                Origin::Data => 1,
            });
        });
        // BinaryHeap iteration order is unspecified; sort so identical
        // states serialize to identical bytes.
        let mut events: Vec<Event> = self.events.iter().map(|Reverse(e)| *e).collect();
        events.sort();
        enc.usize(events.len());
        for e in &events {
            enc.u64(e.at);
            enc.u64(e.seq);
            match e.kind {
                EventKind::L2Access { core, line, origin } => {
                    enc.u8(0);
                    enc.u16(core.0);
                    enc.u64(line);
                    enc.u8(matches!(origin, Origin::Data) as u8);
                }
                EventKind::L1Fill { core, line, origin } => {
                    enc.u8(1);
                    enc.u16(core.0);
                    enc.u64(line);
                    enc.u8(matches!(origin, Origin::Data) as u8);
                }
            }
        }
        enc.u64(self.event_seq);
        for q in [&self.pending_mem, &self.pending_wb] {
            enc.usize(q.len());
            for &(core, addr) in q {
                enc.u16(core.0);
                enc.u64(addr);
            }
        }
        for c in [
            &self.stats.l1d_load_hits,
            &self.stats.mem_reads,
            &self.stats.mem_writes,
            &self.stats.store_stalls,
        ] {
            c.save_state(enc);
        }
        self.ctrl.save_state(enc);
    }

    /// Restore state written by [`Hierarchy::save_state`] into a
    /// hierarchy constructed with the same configuration.
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        let load_l1_waiter =
            |dec: &mut melreq_snap::Dec<'_>| -> Result<L1Waiter, melreq_snap::SnapError> {
                Ok(match dec.u8()? {
                    0 => L1Waiter::Token(CoreToken::Load(dec.u64()?)),
                    1 => L1Waiter::Token(CoreToken::Fetch),
                    2 => L1Waiter::Store,
                    t => return Err(melreq_snap::SnapError::BadTag(t)),
                })
            };
        let origin = |b: u8| -> Result<Origin, melreq_snap::SnapError> {
            Ok(match b {
                0 => Origin::Inst,
                1 => Origin::Data,
                t => return Err(melreq_snap::SnapError::BadTag(t)),
            })
        };
        let n = dec.usize()?;
        if n != self.l1i.len() {
            return Err(melreq_snap::SnapError::Invalid("hierarchy core count mismatch"));
        }
        for c in 0..n {
            self.l1i[c].load_state(dec)?;
            self.l1i_mshr[c].load_state(dec, load_l1_waiter)?;
            self.l1d[c].load_state(dec)?;
            self.l1d_mshr[c].load_state(dec, load_l1_waiter)?;
        }
        self.l2.load_state(dec)?;
        self.l2_mshr.load_state(dec, |dec| {
            let core = CoreId(dec.u16()?);
            Ok(L2Waiter { core, origin: origin(dec.u8()?)? })
        })?;
        let n_events = dec.usize()?;
        self.events.clear();
        for _ in 0..n_events {
            let at = dec.u64()?;
            let seq = dec.u64()?;
            let kind = match dec.u8()? {
                0 => {
                    let core = CoreId(dec.u16()?);
                    let line = dec.u64()?;
                    EventKind::L2Access { core, line, origin: origin(dec.u8()?)? }
                }
                1 => {
                    let core = CoreId(dec.u16()?);
                    let line = dec.u64()?;
                    EventKind::L1Fill { core, line, origin: origin(dec.u8()?)? }
                }
                t => return Err(melreq_snap::SnapError::BadTag(t)),
            };
            self.events.push(Reverse(Event { at, seq, kind }));
        }
        self.event_seq = dec.u64()?;
        for q in [&mut self.pending_mem, &mut self.pending_wb] {
            let len = dec.usize()?;
            q.clear();
            for _ in 0..len {
                let core = CoreId(dec.u16()?);
                let addr = dec.u64()?;
                q.push_back((core, addr));
            }
        }
        for c in [
            &mut self.stats.l1d_load_hits,
            &mut self.stats.mem_reads,
            &mut self.stats.mem_writes,
            &mut self.stats.store_stalls,
        ] {
            c.load_state(dec)?;
        }
        self.ctrl.load_state(dec)
    }

    /// L1D array of one core (hit rates in reports/tests).
    pub fn l1d(&self, core: CoreId) -> &CacheArray {
        &self.l1d[core.index()]
    }

    /// The shared L2 array.
    pub fn l2(&self) -> &CacheArray {
        &self.l2
    }

    /// Functionally pre-warm one core's caches from its program's address
    /// regions — the stand-in for the architectural-checkpoint warm-up of
    /// SimPoint methodology. Code fills the L1I (and L2); data fills the
    /// L1D when it fits there, else the L2 up to an even per-core quota.
    /// Working sets beyond the quota stream from DRAM regardless, so
    /// nothing useful can be pre-loaded for them beyond the most recent
    /// lines.
    pub fn prewarm(&mut self, core: CoreId, hints: &melreq_trace::WarmHints) {
        let c = core.index();
        let line = 64u64;
        // Code: footprints are small (≤ 64 KB) — fill L1I and L2.
        let code_lines = (hints.code_len / line).min(self.l1i[c].config().size_bytes / line);
        for i in 0..code_lines {
            let addr = hints.code_base + i * line;
            self.l1i[c].fill(addr, false);
            self.l2.fill(addr, false);
        }
        // Data. A quarter of the pre-warmed lines are installed dirty:
        // a long-running program's cached data is a mix of clean and
        // modified lines (~ the store share of its accesses), and without
        // this the short measured slices would never age dirty lines out
        // of the 4 MB L2 — DRAM write traffic (and the write-drain
        // machinery) would be unrealistically absent.
        let dirty = |i: u64| i.is_multiple_of(4);
        let l1d_cap = self.l1d[c].config().size_bytes;
        let l2_quota = self.l2.config().size_bytes / self.l1d.len() as u64;
        if hints.data_len <= l1d_cap {
            for i in 0..hints.data_len / line {
                let addr = hints.data_base + i * line;
                self.l1d[c].fill(addr, dirty(i));
                self.l2.fill(addr, false);
            }
        } else {
            let lines = hints.data_len.min(l2_quota) / line;
            for i in 0..lines {
                self.l2.fill(hints.data_base + i * line, dirty(i));
            }
        }
    }

    fn schedule(&mut self, at: Cycle, kind: EventKind) {
        self.event_seq += 1;
        self.events.push(Reverse(Event { at, seq: self.event_seq, kind }));
    }

    /// O(1) pre-filter for [`Hierarchy::next_event_at`]: `true` when the
    /// hierarchy certainly has work at `now` (a stalled submission can
    /// retry, an event is due, or a read completion is ready). `false`
    /// still requires the full bound — a DRAM grant may be possible.
    pub fn can_act_now(&self, now: Cycle) -> bool {
        if (!self.pending_wb.is_empty() || !self.pending_mem.is_empty()) && self.ctrl.can_accept() {
            return true;
        }
        if matches!(self.events.peek(), Some(&Reverse(ev)) if ev.at <= now) {
            return true;
        }
        matches!(self.ctrl.next_completion_at(), Some(at) if at <= now)
    }

    /// Conservative lower bound on the next cycle at which this hierarchy
    /// (including the controller and DRAM beneath it) can make progress:
    /// a stalled submission can retry, a cache event comes due, a DRAM
    /// grant or completion becomes possible, or a refresh boundary is
    /// crossed. `None` when fully idle.
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        if (!self.pending_wb.is_empty() || !self.pending_mem.is_empty()) && self.ctrl.can_accept() {
            return Some(now);
        }
        let events = self.events.peek().map(|&Reverse(ev)| ev.at);
        match (events, self.ctrl.next_event_at(now)) {
            (Some(a), Some(b)) => Some(a.min(b).max(now)),
            (a, b) => a.or(b).map(|t| t.max(now)),
        }
    }

    /// Advance the hierarchy to `now`, appending the core completions
    /// that became ready to `finished` (a caller-owned scratch buffer;
    /// not cleared here, so one buffer can be reused across cycles
    /// without per-cycle allocation).
    pub fn advance(&mut self, now: Cycle, finished: &mut Vec<(CoreId, CoreToken)>) {
        // 1. Retry memory submissions stalled on a full controller buffer.
        while let Some(&(core, line)) = self.pending_wb.front() {
            if !self.ctrl.can_accept() {
                break;
            }
            self.ctrl.submit(core, line, AccessKind::Write, now);
            self.stats.mem_writes.inc();
            self.pending_wb.pop_front();
        }
        while let Some(&(core, line)) = self.pending_mem.front() {
            if !self.ctrl.can_accept() {
                break;
            }
            self.ctrl.submit(core, line, AccessKind::Read, now);
            self.stats.mem_reads.inc();
            self.pending_mem.pop_front();
        }

        // 2. Process due hierarchy events.
        while let Some(&Reverse(ev)) = self.events.peek() {
            if ev.at > now {
                break;
            }
            let Reverse(ev) = self.events.pop().expect("peeked");
            match ev.kind {
                EventKind::L2Access { core, line, origin } => {
                    self.do_l2_access(core, line, origin, now);
                }
                EventKind::L1Fill { core, line, origin } => {
                    self.do_l1_fill(core, line, origin, finished);
                }
            }
        }

        // 3. Let the controller schedule DRAM transactions.
        self.ctrl.tick(now);

        // 4. Drain DRAM read completions: fill the L2 and fan out L1 fills.
        while let Some((_, core, addr)) = self.ctrl.pop_completed(now) {
            let line = line_addr(addr);
            if let Some(victim) = self.l2.fill(line, false) {
                if victim.dirty {
                    // Attribute the write-back to the core whose fill
                    // displaced the victim.
                    self.pending_wb.push_back((core, victim.line_addr));
                }
            }
            for w in self.l2_mshr.complete(line) {
                self.schedule(now + 1, EventKind::L1Fill { core: w.core, line, origin: w.origin });
            }
        }
    }

    fn do_l2_access(&mut self, core: CoreId, line: Addr, origin: Origin, now: Cycle) {
        if self.l2.access(line, false) {
            // L2 hit: data at the L1 boundary after the L2 latency.
            let at = now + self.l2.config().hit_latency;
            self.schedule(at, EventKind::L1Fill { core, line, origin });
            return;
        }
        match self.l2_mshr.allocate(line, L2Waiter { core, origin }) {
            AllocOutcome::Primary => {
                if self.ctrl.can_accept() {
                    self.ctrl.submit(core, line, AccessKind::Read, now);
                    self.stats.mem_reads.inc();
                } else {
                    self.pending_mem.push_back((core, line));
                }
            }
            AllocOutcome::Merged => {}
            AllocOutcome::Full => {
                // Structural stall at the L2: retry next cycle.
                self.schedule(now + 1, EventKind::L2Access { core, line, origin });
            }
        }
    }

    fn do_l1_fill(
        &mut self,
        core: CoreId,
        line: Addr,
        origin: Origin,
        finished: &mut Vec<(CoreId, CoreToken)>,
    ) {
        let c = core.index();
        let (l1, mshr) = match origin {
            Origin::Inst => (&mut self.l1i[c], &mut self.l1i_mshr[c]),
            Origin::Data => (&mut self.l1d[c], &mut self.l1d_mshr[c]),
        };
        let waiters = mshr.complete(line);
        let fill_dirty = waiters.iter().any(|w| matches!(w, L1Waiter::Store));
        if let Some(victim) = l1.fill(line, fill_dirty) {
            if victim.dirty {
                // L1 dirty victim retires into the L2 (full line, no
                // memory fetch needed); may push an L2 victim to memory.
                if let Some(l2_victim) = self.l2.fill(victim.line_addr, true) {
                    if l2_victim.dirty {
                        self.pending_wb.push_back((core, l2_victim.line_addr));
                    }
                }
            }
        }
        for w in waiters {
            if let L1Waiter::Token(tok) = w {
                finished.push((core, tok));
            }
        }
    }

    fn l1_request(
        &mut self,
        core: CoreId,
        token: CoreToken,
        addr: Addr,
        origin: Origin,
        now: Cycle,
    ) -> MemResponse {
        let c = core.index();
        let (l1, mshr) = match origin {
            Origin::Inst => (&mut self.l1i[c], &mut self.l1i_mshr[c]),
            Origin::Data => (&mut self.l1d[c], &mut self.l1d_mshr[c]),
        };
        let hit_latency = l1.config().hit_latency;
        if l1.access(addr, false) {
            if origin == Origin::Data {
                self.stats.l1d_load_hits.inc();
            }
            return MemResponse::HitAt(now + hit_latency);
        }
        match mshr.allocate(addr, L1Waiter::Token(token)) {
            AllocOutcome::Primary => {
                let line = line_addr(addr);
                self.schedule(now + hit_latency, EventKind::L2Access { core, line, origin });
                MemResponse::Pending
            }
            AllocOutcome::Merged => MemResponse::Pending,
            AllocOutcome::Full => MemResponse::Blocked,
        }
    }
}

impl CoreMemory for Hierarchy {
    fn load(&mut self, core: CoreId, token: CoreToken, addr: Addr, now: Cycle) -> MemResponse {
        self.l1_request(core, token, addr, Origin::Data, now)
    }

    fn ifetch(&mut self, core: CoreId, token: CoreToken, addr: Addr, now: Cycle) -> MemResponse {
        self.l1_request(core, token, addr, Origin::Inst, now)
    }

    fn store(&mut self, core: CoreId, addr: Addr, now: Cycle) -> bool {
        let c = core.index();
        if self.l1d[c].access(addr, true) {
            return true;
        }
        // Write-allocate: fetch the line; the store retires immediately.
        match self.l1d_mshr[c].allocate(addr, L1Waiter::Store) {
            AllocOutcome::Primary => {
                let line = line_addr(addr);
                let lat = self.l1d[c].config().hit_latency;
                self.schedule(now + lat, EventKind::L2Access { core, line, origin: Origin::Data });
                true
            }
            AllocOutcome::Merged => true,
            AllocOutcome::Full => {
                self.stats.store_stalls.inc();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use melreq_dram::DramSystem;
    use melreq_memctrl::controller::ControllerConfig;
    use melreq_memctrl::policy::PolicyKind;

    fn hierarchy(cores: usize) -> Hierarchy {
        let me = vec![1.0; cores];
        let ctrl = MemoryController::new(
            ControllerConfig::paper(),
            DramSystem::paper(),
            PolicyKind::HfRf.build(&me, cores, 1),
            true,
            cores,
        );
        Hierarchy::new(
            cores,
            CacheConfig::l1i_paper(),
            CacheConfig::l1d_paper(),
            CacheConfig::l2_paper(),
            ctrl,
        )
    }

    /// Drive the hierarchy until the given token completes; returns the
    /// completion cycle.
    fn run_until(h: &mut Hierarchy, core: CoreId, token: CoreToken, limit: Cycle) -> Cycle {
        let mut done = Vec::new();
        for now in 0..limit {
            done.clear();
            h.advance(now, &mut done);
            if done.iter().any(|&(c, t)| c == core && t == token) {
                return now;
            }
        }
        panic!("token never completed within {limit} cycles");
    }

    #[test]
    fn cold_load_misses_to_memory_and_returns() {
        let mut h = hierarchy(1);
        let tok = CoreToken::Load(0);
        assert_eq!(h.load(CoreId(0), tok, 0x100040, 0), MemResponse::Pending);
        let done = run_until(&mut h, CoreId(0), tok, 2000);
        // L1 (3) + L2 lookup + controller overhead (48) + DRAM (96) + fill.
        assert!(done > 140 && done < 250, "latency {done}");
        assert_eq!(h.stats().mem_reads.get(), 1);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut h = hierarchy(1);
        let tok = CoreToken::Load(0);
        h.load(CoreId(0), tok, 0x100040, 0);
        let done = run_until(&mut h, CoreId(0), tok, 2000);
        match h.load(CoreId(0), CoreToken::Load(1), 0x100040, done + 1) {
            MemResponse::HitAt(at) => assert_eq!(at, done + 1 + 3),
            r => panic!("expected L1 hit, got {r:?}"),
        }
        assert_eq!(h.stats().mem_reads.get(), 1);
    }

    #[test]
    fn same_line_loads_merge_in_mshr() {
        let mut h = hierarchy(1);
        assert_eq!(h.load(CoreId(0), CoreToken::Load(0), 0x100000, 0), MemResponse::Pending);
        assert_eq!(h.load(CoreId(0), CoreToken::Load(1), 0x100020, 0), MemResponse::Pending);
        let mut got = Vec::new();
        for now in 0..2000 {
            h.advance(now, &mut got);
            if got.len() == 2 {
                break;
            }
        }
        assert_eq!(got.len(), 2, "both merged loads must complete");
        assert_eq!(h.stats().mem_reads.get(), 1, "one memory read for the merged pair");
    }

    #[test]
    fn l1d_mshr_exhaustion_blocks() {
        let mut h = hierarchy(1);
        for i in 0..32 {
            assert_eq!(
                h.load(CoreId(0), CoreToken::Load(i), 0x100000 + i * 64, 0),
                MemResponse::Pending
            );
        }
        assert_eq!(h.load(CoreId(0), CoreToken::Load(99), 0x200000, 0), MemResponse::Blocked);
    }

    #[test]
    fn store_miss_allocates_and_fills_dirty() {
        let mut h = hierarchy(1);
        assert!(h.store(CoreId(0), 0x300000, 0));
        // Run until the fill lands.
        let mut sink = Vec::new();
        for now in 0..2000 {
            h.advance(now, &mut sink);
            if h.l1d(CoreId(0)).probe(0x300000) {
                break;
            }
        }
        assert!(h.l1d(CoreId(0)).probe(0x300000), "write-allocate must install the line");
        // Dirty bit visible via invalidate (hierarchy test backdoor).
    }

    #[test]
    fn store_hit_is_instant() {
        let mut h = hierarchy(1);
        let tok = CoreToken::Load(0);
        h.load(CoreId(0), tok, 0x400000, 0);
        let done = run_until(&mut h, CoreId(0), tok, 2000);
        assert!(h.store(CoreId(0), 0x400000, done + 1));
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut h = hierarchy(1);
        let tok = CoreToken::Fetch;
        assert_eq!(h.ifetch(CoreId(0), tok, 0x500000, 0), MemResponse::Pending);
        run_until(&mut h, CoreId(0), tok, 2000);
        match h.ifetch(CoreId(0), CoreToken::Fetch, 0x500000, 1000) {
            MemResponse::HitAt(at) => assert_eq!(at, 1001),
            r => panic!("expected L1I hit, got {r:?}"),
        }
    }

    #[test]
    fn l2_hit_avoids_memory() {
        let mut h = hierarchy(2);
        // Core 0 brings the line into L2 (and its own L1).
        let t0 = CoreToken::Load(0);
        h.load(CoreId(0), t0, 0x600000, 0);
        let done = run_until(&mut h, CoreId(0), t0, 2000);
        let reads_before = h.stats().mem_reads.get();
        // Core 1 misses L1 but hits the shared L2.
        let t1 = CoreToken::Load(1);
        assert_eq!(h.load(CoreId(1), t1, 0x600000, done + 1), MemResponse::Pending);
        let done1 = run_until(&mut h, CoreId(1), t1, done + 200);
        assert_eq!(h.stats().mem_reads.get(), reads_before, "L2 hit must not touch memory");
        // L1 tag (3) + L2 hit (15) + fill ~1.
        assert!(done1 - done < 40, "L2 hit latency too high: {}", done1 - done);
    }

    #[test]
    fn dirty_evictions_generate_memory_writes() {
        let mut h = hierarchy(1);
        // Dirty many lines mapping beyond L1/L2 capacity to force dirty
        // evictions all the way out. L2 is 4 MB/4-way: walk > 4 MB span
        // with stores, then stream loads over it again.
        let mut now = 0;
        let mut sink = Vec::new();
        for i in 0..(6 << 20) / 64u64 {
            let addr = 0x4000_0000 + i * 64;
            while !h.store(CoreId(0), addr, now) {
                h.advance(now, &mut sink);
                now += 1;
            }
            if i % 8 == 0 {
                h.advance(now, &mut sink);
                now += 1;
            }
        }
        for _ in 0..20_000 {
            h.advance(now, &mut sink);
            now += 1;
        }
        assert!(h.stats().mem_writes.get() > 0, "dirty L2 victims must become DRAM writes");
    }
}
