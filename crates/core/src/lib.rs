//! Full-system simulator for the ICPP'08 ME-LREQ study.
//!
//! This crate composes the substrates into the machine of Table 1 and
//! drives the paper's experiments:
//!
//! * [`config::SystemConfig`] — every Table 1 parameter in one place;
//! * [`hierarchy::Hierarchy`] — the two-level cache hierarchy
//!   (per-core L1I/L1D, shared L2, MSHRs, write-backs) glued to the
//!   memory controller, implementing the CPU crate's
//!   [`melreq_cpu::CoreMemory`] port;
//! * [`system::System`] — N cores + hierarchy + the global cycle loop,
//!   with the paper's run-to-target-then-keep-running methodology;
//! * [`profile`] — single-core profiling runs that measure each
//!   application's memory efficiency (Equation 1), the off-line step that
//!   fills the controller's priority tables;
//! * [`experiment`] — the multiprogrammed evaluation harness: runs a
//!   Table 3 mix under a policy and reports SMT speedup, per-core read
//!   latency and unfairness (Figures 2–5);
//! * [`report`] — plain-text table formatting shared by the bench
//!   binaries;
//! * [`api`] — the typed public facade ([`api::SimRequest`] →
//!   [`api::SimReport`]) shared by the CLI, the HTTP service and the
//!   benchmark harness, with the typed error taxonomy
//!   ([`api::MelreqError`]).

pub mod api;
pub mod config;
pub mod experiment;
pub mod hierarchy;
pub mod profile;
pub mod report;
pub mod store;
pub mod system;

pub use api::{MelreqError, PolicyKind, Session, SimReport, SimRequest};
pub use config::SystemConfig;
pub use experiment::{
    run_mix, run_mix_audited, run_mix_audited_observed, run_mix_observed, ExperimentOptions,
    MixResult, ObserveOptions, PolicyComparison, RunControl,
};
pub use hierarchy::Hierarchy;
pub use profile::{profile_app, profile_mix_apps, AppProfile};
pub use store::{CheckpointStore, StoreStats};
pub use system::{CancelToken, RunOutcome, System};
