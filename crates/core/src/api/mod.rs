//! The typed public facade of the simulator: one entry point shared by
//! the CLI, the HTTP service (`melreq-serve`) and the benchmark harness.
//!
//! A [`SimRequest`] names a Table 3 mix, a policy set and the harness
//! options; [`Session::run`] executes it — reusing the fork-per-policy
//! warm-up kernel and the persistent [`CheckpointStore`] when one is
//! attached — and returns a versioned [`SimReport`] whose
//! [`SimReport::to_json`] rendering is **byte-deterministic**: the same
//! request produces the same bytes whether it ran through `melreq run
//! --json`, the service's `/run` endpoint, or a warm checkpoint store.
//! Wall-clock time and cache provenance are deliberately *not* part of
//! the report (the service carries them in its response envelope), which
//! is what makes that identity hold.
//!
//! Failures are typed ([`MelreqError`]) and carry both a process exit
//! code and an HTTP status, so the CLI and the service map errors the
//! same way from the same values.

pub mod json;

use crate::experiment::{self, ExperimentOptions, MixResult, ProfileCache, RunControl};
use crate::store::CheckpointStore;
use crate::system::CancelToken;
use json::{esc, fmt_f64, Json};
pub use melreq_memctrl::policy::PolicyKind;
pub use melreq_memctrl::registry::registry_json;
use melreq_workloads::{all_mixes, Mix};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Schema version stamped on every machine-readable artifact this
/// workspace emits (reports, series files, checkpoint containers). The
/// single source of truth is `melreq_snap::SCHEMA_VERSION`.
pub const SCHEMA_VERSION: u32 = melreq_snap::SCHEMA_VERSION;

/// A typed failure, shared by every entry point. Each variant maps to
/// both a CLI exit code ([`MelreqError::exit_code`]) and an HTTP status
/// ([`MelreqError::http_status`]) so the CLI and the service agree.
#[derive(Debug, Clone, PartialEq)]
pub enum MelreqError {
    /// The request itself is invalid (unknown flag, mix, policy, or a
    /// malformed body). Exit 2 / HTTP 400.
    Usage(String),
    /// The host failed us (filesystem, sockets). Exit 3 / HTTP 500.
    Io(String),
    /// The simulation violated an invariant it must uphold (audit
    /// violations, reproduction divergence). Exit 4 / HTTP 500.
    Divergence(String),
    /// The service's job queue is full; retry later. Exit 5 / HTTP 429.
    Overload {
        /// Suggested client back-off, surfaced as `Retry-After`.
        retry_after_s: u64,
    },
    /// The run exceeded its wall-clock deadline and was cancelled at an
    /// epoch boundary. Exit 6 / HTTP 504.
    Timeout(String),
    /// The static-analysis gate found unsuppressed findings
    /// (`melreq analyze`). Exit 7 / HTTP 500. The payload is the full
    /// rendered report so the CLI shows the findings, not just a count.
    Analysis(String),
}

impl MelreqError {
    /// The process exit code the CLI maps this error to.
    pub fn exit_code(&self) -> i32 {
        match self {
            MelreqError::Usage(_) => 2,
            MelreqError::Io(_) => 3,
            MelreqError::Divergence(_) => 4,
            MelreqError::Overload { .. } => 5,
            MelreqError::Timeout(_) => 6,
            MelreqError::Analysis(_) => 7,
        }
    }

    /// The HTTP status the service maps this error to.
    pub fn http_status(&self) -> u16 {
        match self {
            MelreqError::Usage(_) => 400,
            MelreqError::Io(_) | MelreqError::Divergence(_) | MelreqError::Analysis(_) => 500,
            MelreqError::Overload { .. } => 429,
            MelreqError::Timeout(_) => 504,
        }
    }
}

impl std::fmt::Display for MelreqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MelreqError::Usage(m)
            | MelreqError::Io(m)
            | MelreqError::Timeout(m)
            | MelreqError::Analysis(m) => f.write_str(m),
            MelreqError::Divergence(m) => write!(f, "divergence: {m}"),
            MelreqError::Overload { retry_after_s } => {
                write!(f, "overloaded; retry after {retry_after_s}s")
            }
        }
    }
}

impl std::error::Error for MelreqError {}

/// A canonical, collision-free description of a policy (captures
/// `Fixed` orders and parameter values) for request hashing. The
/// `Debug` rendering of [`PolicyKind`] is stable and keeps the
/// pre-registry cache keys for the paper's schemes and FQ/STF.
fn canonical_kind(kind: &PolicyKind) -> String {
    format!("{kind:?}")
}

/// One simulation request: a mix, a policy set, and the harness knobs.
/// Build with [`SimRequest::new`] + the chainable setters, or decode a
/// wire body with [`SimRequest::from_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimRequest {
    /// Table 3 mix name (e.g. `2MEM-1`).
    pub mix: String,
    /// Policies to run, in report order (first = comparison baseline).
    /// Resolved by name through the policy registry
    /// (`melreq_memctrl::registry`): the CLI's `--policy`/`--policies`
    /// flags and the service's request bodies share the same grammar,
    /// `name` or `name(key=val,...)`.
    pub policies: Vec<PolicyKind>,
    /// Harness options.
    pub opts: ExperimentOptions,
    /// Attach the independent protocol/invariant auditor; a violated
    /// run fails with [`MelreqError::Divergence`].
    pub audit: bool,
    /// Optional simulated-cycle budget tightening the options' safety
    /// net; an exhausted budget reports `timed_out` in the result.
    pub max_cycles: Option<u64>,
    /// Optional wall-clock deadline in milliseconds; an expired run is
    /// cancelled at an epoch boundary and fails with
    /// [`MelreqError::Timeout`]. Not part of the request's identity
    /// ([`SimRequest::canonical_string`]) — it cannot change the
    /// deterministic result, only whether it is produced in time.
    pub timeout_ms: Option<u64>,
    /// Optional worker-thread count for the run's job pool (`--threads`).
    /// Like `timeout_ms`, excluded from the request's identity — the
    /// slot-indexed merge keeps results bit-identical at any
    /// parallelism, so thread count can never change the answer.
    pub threads: Option<usize>,
}

impl SimRequest {
    /// A request for `mix` with default options and no policies (add
    /// them with [`SimRequest::policy`] / [`SimRequest::policies`]).
    pub fn new(mix: impl Into<String>) -> Self {
        SimRequest {
            mix: mix.into(),
            policies: Vec::new(),
            opts: ExperimentOptions::default(),
            audit: false,
            max_cycles: None,
            timeout_ms: None,
            threads: None,
        }
    }

    /// Append one policy.
    #[must_use]
    pub fn policy(mut self, p: PolicyKind) -> Self {
        self.policies.push(p);
        self
    }

    /// Replace the policy set.
    #[must_use]
    pub fn policies(mut self, ps: Vec<PolicyKind>) -> Self {
        self.policies = ps;
        self
    }

    /// Set the harness options.
    #[must_use]
    pub fn opts(mut self, opts: ExperimentOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Attach the auditor.
    #[must_use]
    pub fn audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Set a simulated-cycle budget.
    #[must_use]
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = Some(cycles);
        self
    }

    /// Set a wall-clock deadline in milliseconds.
    #[must_use]
    pub fn timeout_ms(mut self, ms: u64) -> Self {
        self.timeout_ms = Some(ms);
        self
    }

    /// Set the worker-thread count for the run's job pool.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Decode a wire request. Unknown fields are rejected by name; a
    /// present-but-mismatched `schema_version` is rejected (an absent
    /// one is accepted for hand-written bodies).
    pub fn from_json(body: &str) -> Result<Self, MelreqError> {
        let usage = |m: String| MelreqError::Usage(m);
        let doc = Json::parse(body).map_err(|e| usage(format!("invalid JSON body: {e}")))?;
        let members =
            doc.as_obj().ok_or_else(|| usage("request body must be a JSON object".into()))?;

        let mut req = SimRequest::new("");
        let mut saw_mix = false;
        for (key, value) in members {
            match key.as_str() {
                "schema_version" => {
                    let v = value
                        .as_u64()
                        .ok_or_else(|| usage("schema_version must be an integer".into()))?;
                    if v != u64::from(SCHEMA_VERSION) {
                        return Err(usage(format!(
                            "schema_version mismatch: request has {v}, this server speaks {SCHEMA_VERSION}"
                        )));
                    }
                }
                "mix" => {
                    req.mix = value
                        .as_str()
                        .ok_or_else(|| usage("mix must be a string".into()))?
                        .to_string();
                    saw_mix = true;
                }
                "policies" => {
                    let arr = value
                        .as_arr()
                        .ok_or_else(|| usage("policies must be an array of strings".into()))?;
                    req.policies = arr
                        .iter()
                        .map(|p| {
                            p.as_str()
                                .ok_or_else(|| usage("policies must be an array of strings".into()))
                                .and_then(|s| PolicyKind::parse(s).map_err(usage))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "policy" => {
                    let s =
                        value.as_str().ok_or_else(|| usage("policy must be a string".into()))?;
                    req.policies = vec![PolicyKind::parse(s).map_err(usage)?];
                }
                "audit" => {
                    req.audit =
                        value.as_bool().ok_or_else(|| usage("audit must be a boolean".into()))?;
                }
                "instructions" | "warmup" | "profile_instructions" | "max_cycles_factor" => {
                    let v = value
                        .as_u64()
                        .ok_or_else(|| usage(format!("{key} must be a non-negative integer")))?;
                    match key.as_str() {
                        "instructions" => req.opts.instructions = v,
                        "warmup" => req.opts.warmup = v,
                        "profile_instructions" => req.opts.profile_instructions = v,
                        _ => req.opts.max_cycles_factor = v,
                    }
                }
                "eval_slice" => {
                    let v = value
                        .as_u64()
                        .ok_or_else(|| usage("eval_slice must be a non-negative integer".into()))?;
                    req.opts.eval_slice =
                        u32::try_from(v).map_err(|_| usage("eval_slice out of range".into()))?;
                }
                "tick_exact" => {
                    req.opts.tick_exact = value
                        .as_bool()
                        .ok_or_else(|| usage("tick_exact must be a boolean".into()))?;
                }
                "max_cycles" => {
                    req.max_cycles = Some(value.as_u64().ok_or_else(|| {
                        usage("max_cycles must be a non-negative integer".into())
                    })?);
                }
                "timeout_ms" => {
                    req.timeout_ms = Some(value.as_u64().ok_or_else(|| {
                        usage("timeout_ms must be a non-negative integer".into())
                    })?);
                }
                "threads" => {
                    let v = value
                        .as_u64()
                        .ok_or_else(|| usage("threads must be a positive integer".into()))?;
                    let v = usize::try_from(v)
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| usage("threads must be a positive integer".into()))?;
                    req.threads = Some(v);
                }
                other => {
                    return Err(usage(format!("unknown request field '{other}'")));
                }
            }
        }
        if !saw_mix {
            return Err(usage("request is missing required field 'mix'".into()));
        }
        if req.policies.is_empty() {
            return Err(usage("request must name at least one policy".into()));
        }
        Ok(req)
    }

    /// Encode as a wire body that [`SimRequest::from_json`] accepts.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        write!(s, "{{\"schema_version\":{SCHEMA_VERSION},\"mix\":\"{}\"", esc(&self.mix)).unwrap();
        let tokens: Vec<String> = self
            .policies
            .iter()
            .map(|p| format!("\"{}\"", melreq_memctrl::canonical_name(p)))
            .collect();
        write!(s, ",\"policies\":[{}]", tokens.join(",")).unwrap();
        let o = &self.opts;
        write!(
            s,
            ",\"audit\":{},\"instructions\":{},\"warmup\":{},\"profile_instructions\":{},\"eval_slice\":{},\"max_cycles_factor\":{},\"tick_exact\":{}",
            self.audit, o.instructions, o.warmup, o.profile_instructions, o.eval_slice,
            o.max_cycles_factor, o.tick_exact
        )
        .unwrap();
        if let Some(b) = self.max_cycles {
            write!(s, ",\"max_cycles\":{b}").unwrap();
        }
        if let Some(ms) = self.timeout_ms {
            write!(s, ",\"timeout_ms\":{ms}").unwrap();
        }
        if let Some(n) = self.threads {
            write!(s, ",\"threads\":{n}").unwrap();
        }
        s.push('}');
        s
    }

    /// The request's deterministic identity: every field that can change
    /// the simulated result, in a fixed order. `timeout_ms` and `threads`
    /// are excluded — one only bounds wall-clock time, the other only
    /// picks worker-thread count.
    pub fn canonical_string(&self) -> String {
        let policies: Vec<String> = self.policies.iter().map(canonical_kind).collect();
        let o = &self.opts;
        format!(
            "mix={};policies=[{}];audit={};instr={};warmup={};profile={};slice={};factor={};exact={};budget={:?}",
            self.mix,
            policies.join(","),
            self.audit,
            o.instructions,
            o.warmup,
            o.profile_instructions,
            o.eval_slice,
            o.max_cycles_factor,
            o.tick_exact,
            self.max_cycles,
        )
    }

    /// A stable 64-bit key over [`SimRequest::canonical_string`]
    /// (schema-versioned via `melreq_snap::keyed`) — a compact request
    /// fingerprint for logs and quick lookups.
    pub fn request_key(&self) -> u64 {
        melreq_snap::keyed("request", &self.canonical_string())
    }

    /// The full schema-versioned canonical identity bytes — the
    /// service's response-cache and request-coalescing key. Unlike
    /// [`SimRequest::request_key`] this is collision-free by
    /// construction: two requests map to the same entry iff their
    /// canonical strings are byte-identical under the same schema.
    pub fn canonical_bytes(&self) -> String {
        format!("v{SCHEMA_VERSION};{}", self.canonical_string())
    }
}

/// Audit summary attached to a [`PolicyReport`] when the request ran
/// with the auditor ([`SimRequest::audit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditSummary {
    /// Events the auditor observed.
    pub events: u64,
    /// FNV-1a hash of the canonical event stream.
    pub stream_hash: u64,
    /// Violations detected (always 0 in a returned report — a violated
    /// run fails with [`MelreqError::Divergence`] instead).
    pub violations: u64,
}

/// One policy's results within a [`SimReport`].
#[derive(Debug, Clone)]
pub struct PolicyReport {
    /// Policy display name.
    pub policy: String,
    /// SMT speedup (Equation 2).
    pub smt_speedup: f64,
    /// Weighted speedup (Σ IPC_multi/IPC_single; equals
    /// [`PolicyReport::smt_speedup`] under the paper's definitions).
    pub weighted_speedup: f64,
    /// Harmonic mean of per-core speedups (0.0 when a core starved).
    pub harmonic_speedup: f64,
    /// Unfairness metric (Equation 3).
    pub unfairness: f64,
    /// Largest per-core slowdown.
    pub max_slowdown: f64,
    /// Mean read latency across cores, in cycles.
    pub mean_read_latency: f64,
    /// Per-core IPC in the multiprogrammed run.
    pub ipc_multi: Vec<f64>,
    /// Per-core IPC running alone (the speedup denominator).
    pub ipc_single: Vec<f64>,
    /// Per-core mean read latency, in cycles.
    pub read_latency: Vec<f64>,
    /// Profiled ME values programmed into the priority table.
    pub me: Vec<f64>,
    /// Mean controller queue occupancy over the measured window.
    pub queue_occupancy_mean: f64,
    /// Mean number of grant candidates per scheduling decision.
    pub grant_candidates_mean: f64,
    /// Per-channel traffic counters.
    pub channels: Vec<melreq_memctrl::ChannelTraffic>,
    /// Final cycle count, warm-up included.
    pub sim_cycles: u64,
    /// Cycles in the measured window.
    pub measured_cycles: u64,
    /// Whether the run aborted on the simulated-cycle safety net.
    pub timed_out: bool,
    /// Whether the run was cancelled by a wall-clock deadline.
    pub cancelled: bool,
    /// Audit summary, present on audited runs.
    pub audit: Option<AuditSummary>,
    /// Whether this policy's warm-up was restored from a checkpoint
    /// (provenance — deliberately not serialised).
    pub warm: bool,
}

impl PolicyReport {
    fn from_result(r: &MixResult, audit: Option<AuditSummary>) -> Self {
        PolicyReport {
            policy: r.policy.to_string(),
            smt_speedup: r.smt_speedup,
            weighted_speedup: r.weighted_speedup,
            harmonic_speedup: r.harmonic_speedup,
            unfairness: r.unfairness,
            max_slowdown: r.max_slowdown,
            mean_read_latency: r.mean_read_latency,
            ipc_multi: r.ipc_multi.clone(),
            ipc_single: r.ipc_single.clone(),
            read_latency: r.read_latency.clone(),
            me: r.me.clone(),
            queue_occupancy_mean: r.queue_occupancy_mean,
            grant_candidates_mean: r.grant_candidates_mean,
            channels: r.channel_traffic.clone(),
            sim_cycles: r.sim_cycles,
            measured_cycles: r.measured_cycles,
            timed_out: r.timed_out,
            cancelled: r.cancelled,
            audit,
            warm: r.warmup_from_checkpoint,
        }
    }

    fn write_json(&self, s: &mut String) {
        let vec_json = |v: &[f64]| {
            let items: Vec<String> = v.iter().map(|x| fmt_f64(*x)).collect();
            format!("[{}]", items.join(","))
        };
        write!(
            s,
            "{{\"policy\":\"{}\",\"smt_speedup\":{},\"weighted_speedup\":{},\"harmonic_speedup\":{},\"unfairness\":{},\"max_slowdown\":{},\"mean_read_latency\":{}",
            esc(&self.policy),
            fmt_f64(self.smt_speedup),
            fmt_f64(self.weighted_speedup),
            fmt_f64(self.harmonic_speedup),
            fmt_f64(self.unfairness),
            fmt_f64(self.max_slowdown),
            fmt_f64(self.mean_read_latency),
        )
        .unwrap();
        write!(
            s,
            ",\"ipc_multi\":{},\"ipc_single\":{},\"read_latency\":{},\"me\":{}",
            vec_json(&self.ipc_multi),
            vec_json(&self.ipc_single),
            vec_json(&self.read_latency),
            vec_json(&self.me),
        )
        .unwrap();
        write!(
            s,
            ",\"queue_occupancy_mean\":{},\"grant_candidates_mean\":{}",
            fmt_f64(self.queue_occupancy_mean),
            fmt_f64(self.grant_candidates_mean),
        )
        .unwrap();
        let channels: Vec<String> = self
            .channels
            .iter()
            .map(|c| {
                format!(
                    "{{\"reads\":{},\"writes\":{},\"row_hits\":{}}}",
                    c.reads, c.writes, c.row_hits
                )
            })
            .collect();
        write!(
            s,
            ",\"channels\":[{}],\"sim_cycles\":{},\"measured_cycles\":{},\"timed_out\":{},\"cancelled\":{}",
            channels.join(","),
            self.sim_cycles,
            self.measured_cycles,
            self.timed_out,
            self.cancelled,
        )
        .unwrap();
        if let Some(a) = &self.audit {
            write!(
                s,
                ",\"audit\":{{\"events\":{},\"stream_hash\":\"{:016x}\",\"violations\":{}}}",
                a.events, a.stream_hash, a.violations
            )
            .unwrap();
        }
        s.push('}');
    }
}

/// A versioned, deterministic simulation report.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The mix that ran.
    pub mix: String,
    /// One report per requested policy, in request order.
    pub policies: Vec<PolicyReport>,
    /// Wall-clock time spent simulating measured windows, summed across
    /// policies (not serialised — it would break byte-determinism).
    pub wall: Duration,
    /// Wall-clock time spent simulating (or restoring) warm-up
    /// boundaries, summed across policies — reported separately from
    /// [`SimReport::wall`] so per-policy timing stays meaningful when a
    /// shared warm-up and its forked policy runs execute on different
    /// worker threads (not serialised).
    pub warm_wall: Duration,
}

impl SimReport {
    /// Whether any policy's warm-up came from a checkpoint.
    pub fn any_warm(&self) -> bool {
        self.policies.iter().any(|p| p.warm)
    }

    /// Whether every policy's warm-up came from a checkpoint.
    pub fn all_warm(&self) -> bool {
        !self.policies.is_empty() && self.policies.iter().all(|p| p.warm)
    }

    /// The canonical single-line JSON rendering. Byte-deterministic for
    /// a given request: same bytes from the CLI, the service, and warm
    /// or cold checkpoint stores (pinned by the golden service test).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        write!(s, "{{\"schema_version\":{SCHEMA_VERSION},\"mix\":\"{}\"", esc(&self.mix)).unwrap();
        s.push_str(",\"policies\":[");
        for (i, p) in self.policies.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            p.write_json(&mut s);
        }
        s.push_str("]}");
        s
    }
}

/// An execution context: the memoized profile cache plus (optionally) a
/// persistent checkpoint store. One `Session` serves many requests —
/// the CLI builds one per invocation, the service builds one per
/// process and shares it across its worker pool (`&Session` is `Sync`).
#[derive(Debug, Default)]
pub struct Session {
    cache: ProfileCache,
    store: Option<Arc<CheckpointStore>>,
}

impl Session {
    /// A session with an in-memory cache only.
    pub fn new() -> Self {
        Self::default()
    }

    /// A session backed by a persistent checkpoint store.
    pub fn with_store(store: Arc<CheckpointStore>) -> Self {
        Session { cache: ProfileCache::with_store(store.clone()), store: Some(store) }
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Arc<CheckpointStore>> {
        self.store.as_ref()
    }

    /// The session's profile cache (shared with lower-level harness
    /// calls, e.g. the reproduce sweep).
    pub fn cache(&self) -> &ProfileCache {
        &self.cache
    }

    /// Execute `req` under `ctl`. The control's cancel token and cycle
    /// budget are merged with the request's own `timeout_ms` /
    /// `max_cycles`; see [`MelreqError`] for the failure taxonomy.
    pub fn run(&self, req: &SimRequest, ctl: &RunControl) -> Result<SimReport, MelreqError> {
        if req.policies.is_empty() {
            return Err(MelreqError::Usage("request must name at least one policy".into()));
        }
        let mix = resolve_mix(&req.mix)?;
        let ctl = self.effective_control(req, ctl);
        let store = self.store.as_deref();

        // Facade phase span: the whole request, enclosing the kernel's
        // warm-up / policy-window / snapshot spans. Records on drop, so
        // error returns are covered too.
        let mut phase_span = melreq_prof::span("session", || format!("run {}", mix.name));
        phase_span.arg("policies", req.policies.len() as u64);
        phase_span.arg("audit", u64::from(req.audit));

        let mut wall = Duration::ZERO;
        let mut warm_wall = Duration::ZERO;
        let mut reports = Vec::with_capacity(req.policies.len());
        if req.audit {
            // Every registered policy is auditable: the paper's schemes
            // and BLISS/TCM get full decision replication, the rest the
            // generic protocol/class/starvation checks.
            for kind in &req.policies {
                let (result, audit) =
                    experiment::run_mix_audited_ctl(&mix, kind, &req.opts, &self.cache, &ctl);
                if audit.total_violations > 0 {
                    return Err(MelreqError::Divergence(audit.render()));
                }
                let summary = AuditSummary {
                    events: audit.events,
                    stream_hash: audit.stream_hash,
                    violations: audit.total_violations,
                };
                wall += result.wall;
                warm_wall += result.warm_wall;
                reports.push(PolicyReport::from_result(&result, Some(summary)));
            }
        } else if req.policies.len() > 1 {
            // Comparisons share one warm-up and fork it per policy —
            // registry factories make this uniform across the zoo.
            let results = experiment::run_mix_group_ctl(
                &mix,
                &req.policies,
                &req.opts,
                &self.cache,
                store,
                &ctl,
            );
            for r in &results {
                wall += r.wall;
                warm_wall += r.warm_wall;
                reports.push(PolicyReport::from_result(r, None));
            }
        } else {
            for kind in &req.policies {
                let result = experiment::run_mix_custom_ctl(
                    &mix,
                    kind.name(),
                    |_, _, _| unreachable!("registered policies are built by swap_policy"),
                    Some(kind.clone()),
                    &req.opts,
                    &self.cache,
                    store,
                    &ctl,
                );
                wall += result.wall;
                warm_wall += result.warm_wall;
                reports.push(PolicyReport::from_result(&result, None));
            }
        }

        if let Some(p) = reports.iter().find(|p| p.cancelled) {
            return Err(MelreqError::Timeout(format!(
                "run cancelled at a {}-cycle epoch boundary after {} simulated cycles (wall-clock deadline)",
                crate::system::System::CANCEL_EPOCH,
                p.sim_cycles
            )));
        }
        Ok(SimReport { mix: mix.name.to_string(), policies: reports, wall, warm_wall })
    }

    /// Merge the caller's control with the request's own limits.
    fn effective_control(&self, req: &SimRequest, ctl: &RunControl) -> RunControl {
        let max_cycles = match (ctl.max_cycles, req.max_cycles) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let cancel = ctl.cancel.clone().or_else(|| {
            req.timeout_ms.map(|ms| {
                // melreq-allow(D02): a request timeout is a wall-clock deadline by definition; it never alters simulated state
                CancelToken::with_deadline(std::time::Instant::now() + Duration::from_millis(ms))
            })
        });
        RunControl { cancel, max_cycles, threads: req.threads.or(ctl.threads) }
    }

    /// Run the full (mix × policy) grid through this session's cache and
    /// store — the sweep entry point.
    pub fn run_grid(
        &self,
        mixes: &[Mix],
        policies: &[PolicyKind],
        opts: &ExperimentOptions,
    ) -> Vec<MixResult> {
        self.run_grid_ctl(mixes, policies, opts, &RunControl::default())
    }

    /// [`Session::run_grid`] with a [`RunControl`] (cancellation,
    /// cycle budget, worker-thread count).
    pub fn run_grid_ctl(
        &self,
        mixes: &[Mix],
        policies: &[PolicyKind],
        opts: &ExperimentOptions,
        ctl: &RunControl,
    ) -> Vec<MixResult> {
        experiment::run_grid_ctl(mixes, policies, opts, &self.cache, self.store.as_deref(), ctl)
    }

    /// Run several grid stages through **one global job pool** (no
    /// per-stage barrier) — the reproduce entry point. See
    /// [`experiment::run_sweep_stages`].
    pub fn run_sweep_stages(
        &self,
        stages: &[experiment::SweepStage],
        opts: &ExperimentOptions,
        ctl: &RunControl,
    ) -> Vec<Vec<MixResult>> {
        experiment::run_sweep_stages(stages, opts, &self.cache, self.store.as_deref(), ctl)
    }
}

/// Look up a Table 3 mix by name, as a typed error.
pub fn resolve_mix(name: &str) -> Result<Mix, MelreqError> {
    all_mixes().into_iter().find(|m| m.name == name).ok_or_else(|| {
        MelreqError::Usage(format!(
            "unknown workload mix '{name}' (see `melreq config` for the roster)"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_request(policy: &str) -> SimRequest {
        SimRequest::new("2MEM-1")
            .policy(PolicyKind::parse(policy).unwrap())
            .opts(ExperimentOptions::quick())
    }

    #[test]
    fn request_json_round_trips() {
        let req = quick_request("me-lreq").audit(true).max_cycles(123).timeout_ms(456);
        let decoded = SimRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn from_json_rejects_unknown_fields_by_name() {
        let err = SimRequest::from_json(r#"{"mix":"2MEM-1","policy":"me","bogus":1}"#).unwrap_err();
        let MelreqError::Usage(msg) = err else { panic!("expected Usage") };
        assert!(msg.contains("'bogus'"), "{msg}");
    }

    #[test]
    fn from_json_rejects_schema_mismatch_but_allows_absence() {
        let body = format!(r#"{{"schema_version":{},"mix":"2MEM-1","policy":"me"}}"#, 999);
        let err = SimRequest::from_json(&body).unwrap_err();
        assert_eq!(err.http_status(), 400);
        assert!(SimRequest::from_json(r#"{"mix":"2MEM-1","policy":"me"}"#).is_ok());
    }

    #[test]
    fn canonical_string_excludes_timeout_but_keys_on_budget() {
        let a = quick_request("me-lreq");
        let b = a.clone().timeout_ms(5);
        assert_eq!(a.canonical_string(), b.canonical_string());
        assert_eq!(a.request_key(), b.request_key());
        let c = a.clone().max_cycles(1 << 30);
        assert_ne!(a.request_key(), c.request_key());
        // Fixed-priority orders are part of the identity.
        let f0 = SimRequest::new("4MEM-1").policy(PolicyKind::parse("fix-0123").unwrap());
        let f3 = SimRequest::new("4MEM-1").policy(PolicyKind::parse("fix-3210").unwrap());
        assert_ne!(f0.request_key(), f3.request_key());
    }

    #[test]
    fn canonical_bytes_are_schema_versioned_and_track_identity() {
        let a = quick_request("me-lreq");
        assert!(a.canonical_bytes().starts_with(&format!("v{SCHEMA_VERSION};")));
        assert!(a.canonical_bytes().ends_with(&a.canonical_string()));
        // Wall-clock budget is not identity; cycle budget is.
        assert_eq!(a.canonical_bytes(), a.clone().timeout_ms(5).canonical_bytes());
        assert_ne!(a.canonical_bytes(), a.clone().max_cycles(1 << 30).canonical_bytes());
    }

    #[test]
    fn session_runs_and_report_is_deterministic() {
        let session = Session::new();
        let req = quick_request("hf-rf");
        let a = session.run(&req, &RunControl::default()).unwrap();
        let b = session.run(&req, &RunControl::default()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")));
        assert_eq!(a.policies.len(), 1);
        assert!(!a.policies[0].timed_out);
    }

    #[test]
    fn unknown_mix_is_usage_error() {
        let session = Session::new();
        let req = SimRequest::new("MIX9-9").policy(PolicyKind::Fq);
        let err = session.run(&req, &RunControl::default()).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("MIX9-9"));
    }

    #[test]
    fn expired_deadline_times_out() {
        let session = Session::new();
        // A deadline already in the past: the run must cancel at the
        // first epoch poll and surface as a 504-class timeout.
        let req = quick_request("hf-rf").timeout_ms(0);
        let err = session.run(&req, &RunControl::default()).unwrap_err();
        assert_eq!(err.http_status(), 504);
        assert_eq!(err.exit_code(), 6);
    }

    #[test]
    fn cycle_budget_reports_timed_out_without_error() {
        let session = Session::new();
        let req = quick_request("hf-rf").max_cycles(10_000);
        let report = session.run(&req, &RunControl::default()).unwrap();
        assert!(report.policies[0].timed_out);
        assert!(!report.policies[0].cancelled);
    }

    #[test]
    fn error_mappings_are_stable() {
        let cases = [
            (MelreqError::Usage(String::new()), 2, 400),
            (MelreqError::Io(String::new()), 3, 500),
            (MelreqError::Divergence(String::new()), 4, 500),
            (MelreqError::Overload { retry_after_s: 1 }, 5, 429),
            (MelreqError::Timeout(String::new()), 6, 504),
        ];
        for (err, exit, status) in cases {
            assert_eq!(err.exit_code(), exit);
            assert_eq!(err.http_status(), status);
        }
    }
}
