//! A minimal, dependency-free JSON value + recursive-descent parser.
//!
//! The facade's wire format is deliberately tiny — flat objects of
//! numbers, strings, booleans and short arrays — so a ~200-line parser
//! covers it without pulling a serde stack into the no-new-deps build.
//! Objects preserve key order (`Vec<(String, Json)>`), which the facade
//! relies on for byte-deterministic re-rendering and for rejecting
//! unknown keys by name.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (no fraction, no overflow).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Escape `s` as the body of a JSON string literal (no quotes added).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render `x` deterministically: shortest round-trip form for finite
/// values (Rust's `{:?}` for `f64`), `null` for NaN/infinity (which JSON
/// cannot carry). Every machine-readable float this workspace emits goes
/// through here so CLI and server output stay byte-identical.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number '{text}'"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out)
                        .map_err(|_| "invalid utf8 in string".to_string());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    out.push(self.bytes[self.pos]);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Json::parse(
            r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}, "f": ""}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
        assert_eq!(v.get("f").unwrap().as_str(), Some(""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} extra", "\"unterminated", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn as_u64_is_exact_only() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn esc_round_trips_through_parse() {
        let s = "a\"b\\c\nd\te\u{1}";
        let v = Json::parse(&format!("\"{}\"", esc(s))).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }

    #[test]
    fn fmt_f64_is_deterministic_and_json_safe() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
