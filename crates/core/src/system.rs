//! The assembled machine and its global cycle loop.

use crate::config::SystemConfig;
use crate::hierarchy::Hierarchy;
use melreq_cpu::{Core, CoreToken};
use melreq_dram::DramSystem;
use melreq_memctrl::{ChannelTraffic, MemoryController};
use melreq_obs::{ChannelSample, Collector, CoreSample};
use melreq_stats::types::{CoreId, Cycle};
use melreq_trace::InstrStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cooperative cancellation handle for a running simulation.
///
/// A token carries an externally settable flag (e.g. flipped by a server
/// on shutdown) and an optional wall-clock deadline. An attached system
/// ([`System::set_cancel`]) polls the token at fixed cycle-count epochs
/// ([`System::CANCEL_EPOCH`]); when it reports expiry, the run stops at
/// that epoch boundary and the outcome carries
/// [`RunOutcome::cancelled`]` == true`.
///
/// Cancellation is a run-time attachment like the audit tap: it is never
/// serialized into snapshots, and a system with no token attached pays
/// nothing on the cycle loop.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires on its own (cancel via [`Self::cancel`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally expires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), deadline: Some(deadline) }
    }

    /// Request cancellation (thread- and signal-safe).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    pub fn expired(&self) -> bool {
        // melreq-allow(D02): deadline polling is the cancellation feature itself; expiry aborts, never feeds simulated state
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// N cores + cache hierarchy + memory controller + DRAM, advanced in
/// lock-step by a single CPU-cycle loop.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core>,
    hier: Hierarchy,
    now: Cycle,
    online: Option<OnlineMe>,
    /// Debug knob: force the cycle-exact loop, disabling the fast-forward
    /// kernel. Used by the determinism regression tests and the perf
    /// harness's `--tick-exact` baseline mode.
    tick_exact: bool,
    /// Reusable completion buffer for [`Hierarchy::advance`] (keeps the
    /// per-cycle hot path allocation-free).
    scratch: Vec<(CoreId, CoreToken)>,
    /// The ME profile the scheduling policy was initialized from, when
    /// known (`None` for externally built policies whose internal state
    /// is opaque). Reported on [`System::attach_audit`] so the policy
    /// auditor can reconstruct the priority tables.
    me_profile: Option<Vec<f64>>,
    /// Cycle at which the memory-side statistics were reset (the
    /// measurement boundary): `Some(0)` when no warm-up was requested,
    /// `None` while warm-up is still in progress.
    stats_reset_at: Option<Cycle>,
    /// Epoch time-series sampler ([`System::attach_sampler`]): `None`
    /// (the default) costs nothing on the cycle loop.
    sampler: Option<SamplerState>,
    /// Cooperative cancellation ([`System::set_cancel`]): polled every
    /// [`System::CANCEL_EPOCH`] cycles; `None` costs nothing.
    cancel: Option<CancelState>,
    /// Latched once an attached [`CancelToken`] fires; reported through
    /// [`RunOutcome::cancelled`].
    cancelled: bool,
    /// Memoized [`System::next_event_at`] bound, valid until the next
    /// state mutation (tick, snapshot restore, policy swap). Component
    /// event horizons are absolute cycles that only a tick can move, so a
    /// strictly-future bound computed once stays exact while the
    /// fast-forward loop merely advances the clock toward it — the
    /// post-jump iteration reuses it instead of rescanning every core and
    /// queue entry.
    next_event_cache: Option<Cycle>, // melreq-allow(S01): derived cache, invalidated on every mutation
}

/// An attached [`CancelToken`] plus the next cycle it is polled at.
#[derive(Debug)]
struct CancelState {
    token: CancelToken,
    next_at: Cycle,
}

/// The attached [`melreq_obs::Collector`] plus its sampling schedule.
/// Like the online-ME estimator, epoch boundaries are honoured exactly
/// in both kernels: the fast-forward path clamps its jumps so the
/// boundary cycle is always explicitly ticked, which keeps the sampled
/// rows bit-identical to a cycle-exact run.
#[derive(Debug)]
struct SamplerState {
    collector: Arc<Mutex<Collector>>,
    epoch: Cycle,
    next_at: Cycle,
    /// Reusable row buffers (allocation-free steady-state sampling).
    core_buf: Vec<CoreSample>,
    chan_buf: Vec<ChannelSample>,
}

/// State of the run-time memory-efficiency estimator backing
/// [`melreq_memctrl::policy::PolicyKind::MeLreqOnline`] — the paper's
/// future-work direction ("online methods that can dynamically predict
/// the memory efficiency of a program").
///
/// Every `epoch` cycles the per-core deltas of committed instructions
/// and DRAM bytes are turned into an ME sample (Equation 1 over the
/// epoch) and folded into an exponentially weighted estimate that is
/// written back into the controller's priority tables.
#[derive(Debug)]
struct OnlineMe {
    epoch: Cycle,
    next_at: Cycle,
    prev_instr: Vec<u64>,
    prev_bytes: Vec<u64>,
    estimate: Vec<f64>,
}

impl OnlineMe {
    /// EWMA weight of the newest epoch sample.
    const ALPHA: f64 = 0.5;

    fn new(epoch: Cycle, cores: usize) -> Self {
        assert!(epoch > 0, "online epoch must be positive");
        OnlineMe {
            epoch,
            next_at: epoch,
            prev_instr: vec![0; cores],
            prev_bytes: vec![0; cores],
            estimate: vec![1.0; cores],
        }
    }
}

/// Results of a measured run (the paper's methodology: each core's
/// statistics are taken over its first `target` committed instructions;
/// cores keep executing until the *last* core reaches the target).
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Cycle at which the last core reached its target.
    pub cycles: Cycle,
    /// Per-core measured IPC (target instructions / cycles to reach them).
    pub ipc: Vec<f64>,
    /// Per-core mean memory read latency in cycles (Figure 4's metric).
    pub read_latency: Vec<f64>,
    /// Mean read latency over all cores.
    pub mean_read_latency: f64,
    /// Per-core bytes moved at the DRAM interface.
    pub bytes_by_core: Vec<u64>,
    /// Mean request-queue occupancy, sampled at scheduling decisions
    /// (see [`melreq_memctrl::ControllerStats::queue_occupancy`]).
    pub queue_occupancy_mean: f64,
    /// Mean candidate-set size per grant (how many requests competed).
    pub grant_candidates_mean: f64,
    /// Per-channel grant breakdown: reads, writes and row hits.
    pub channel_traffic: Vec<ChannelTraffic>,
    /// Whether the run hit the safety cycle limit before all targets.
    pub timed_out: bool,
    /// Whether an attached [`CancelToken`] stopped the run at an epoch
    /// boundary before all targets (wall-clock timeout or shutdown).
    pub cancelled: bool,
}

impl RunOutcome {
    /// Total DRAM bandwidth of the run in GB/s at `freq_hz`.
    pub fn total_bandwidth_gbs(&self, freq_hz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let bytes: u64 = self.bytes_by_core.iter().sum();
        bytes as f64 * freq_hz / self.cycles as f64 / 1e9
    }
}

impl System {
    /// Build a system running one instruction stream per core.
    ///
    /// `me` carries the profiled memory-efficiency values that initialize
    /// the controller's priority tables (ignored by ME-oblivious
    /// policies, but always required so every policy sees an identically
    /// configured machine).
    pub fn new(cfg: SystemConfig, streams: Vec<Box<dyn InstrStream + Send>>, me: &[f64]) -> Self {
        cfg.validate();
        assert_eq!(streams.len(), cfg.cores, "one stream per core");
        assert_eq!(me.len(), cfg.cores, "one ME value per core");
        let dram = DramSystem::new(cfg.geometry, cfg.timing);
        let policy = cfg.policy.build(me, cfg.cores, cfg.seed);
        let ctrl =
            MemoryController::new(cfg.ctrl, dram, policy, cfg.policy.read_first(), cfg.cores);
        let mut hier = Hierarchy::new(cfg.cores, cfg.l1i, cfg.l1d, cfg.l2, ctrl);
        // Functional warm-up: pre-load each program's cacheable regions so
        // short measured slices are not dominated by compulsory misses
        // (SimPoint checkpoints carry warm architectural state likewise).
        for (i, s) in streams.iter().enumerate() {
            if let Some(h) = s.warm_hints() {
                hier.prewarm(CoreId::from(i), &h);
            }
        }
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| Core::new(CoreId::from(i), cfg.core, s))
            .collect();
        let online = match cfg.policy {
            melreq_memctrl::policy::PolicyKind::MeLreqOnline { epoch_cycles } => {
                Some(OnlineMe::new(epoch_cycles, cfg.cores))
            }
            _ => None,
        };
        // The online build starts from a flat profile (see
        // `PolicyKind::build`); every other build programs `me` directly.
        let me_profile = Some(if online.is_some() { vec![1.0; cfg.cores] } else { me.to_vec() });
        System {
            cfg,
            cores,
            hier,
            now: 0,
            online,
            me_profile,
            tick_exact: false,
            scratch: Vec::new(),
            stats_reset_at: None,
            sampler: None,
            cancel: None,
            cancelled: false,
            next_event_cache: None,
        }
    }

    /// Build a system with an externally constructed scheduling policy —
    /// the extension point for policies beyond the paper's set (see
    /// `examples/custom_scheduler.rs`). `cfg.policy` is ignored;
    /// `read_first` chooses whether reads bypass writes.
    pub fn with_policy(
        cfg: SystemConfig,
        streams: Vec<Box<dyn InstrStream + Send>>,
        policy: Box<dyn melreq_memctrl::SchedulerPolicy>,
        read_first: bool,
    ) -> Self {
        cfg.validate();
        assert_eq!(streams.len(), cfg.cores, "one stream per core");
        let dram = DramSystem::new(cfg.geometry, cfg.timing);
        let ctrl = MemoryController::new(cfg.ctrl, dram, policy, read_first, cfg.cores);
        let mut hier = Hierarchy::new(cfg.cores, cfg.l1i, cfg.l1d, cfg.l2, ctrl);
        for (i, s) in streams.iter().enumerate() {
            if let Some(h) = s.warm_hints() {
                hier.prewarm(CoreId::from(i), &h);
            }
        }
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| Core::new(CoreId::from(i), cfg.core, s))
            .collect();
        System {
            cfg,
            cores,
            hier,
            now: 0,
            online: None,
            me_profile: None,
            tick_exact: false,
            scratch: Vec::new(),
            stats_reset_at: None,
            sampler: None,
            cancel: None,
            cancelled: false,
            next_event_cache: None,
        }
    }

    /// Force the cycle-exact loop (disable fast-forwarding over quiescent
    /// cycles). Results are bit-identical either way — the fast-forward
    /// kernel only skips cycles that are provably no-ops — so this exists
    /// as a debug/regression knob and as the perf harness's baseline mode,
    /// not as a fidelity switch.
    pub fn set_tick_exact(&mut self, tick_exact: bool) {
        self.tick_exact = tick_exact;
    }

    /// Attach audit instrumentation to the whole machine: the memory
    /// controller and DRAM device start reporting their configuration,
    /// decisions, and grants on `audit`, and the initial memory-efficiency
    /// profile (when the policy was built internally from a known one) is
    /// announced so the checker can reconstruct the priority tables.
    pub fn attach_audit(&mut self, audit: melreq_audit::AuditHandle) {
        self.hier.attach_audit(audit.clone());
        if let Some(me) = self.me_profile.clone() {
            audit.emit(|| melreq_audit::AuditEvent::ProfileUpdate { me });
        }
    }

    /// Attach the epoch time-series sampler of a [`melreq_obs::Collector`]
    /// (usually the same collector that is already listening on the audit
    /// tap, see [`System::attach_audit`]): every `epoch` cycles the
    /// per-core commit/pending state and per-channel queue/bus state are
    /// pushed into the collector as one [`melreq_obs::EpochRow`].
    ///
    /// Sampling is an observer: it reads statistics the simulator
    /// maintains anyway and cannot change the run. Epoch boundaries fire
    /// at exactly the same cycles under both kernels (the fast-forward
    /// path clamps its jumps, as it does for the online-ME estimator), so
    /// the sampled series is kernel-independent.
    pub fn attach_sampler(&mut self, collector: Arc<Mutex<Collector>>, epoch: Cycle) {
        assert!(epoch > 0, "sampling epoch must be positive");
        self.sampler = Some(SamplerState {
            collector,
            epoch,
            next_at: self.now + epoch,
            core_buf: Vec::with_capacity(self.cores.len()),
            chan_buf: Vec::new(),
        });
    }

    /// Cycle-count stride at which an attached [`CancelToken`] is polled.
    /// Cancellation therefore lands on a deterministic epoch grid: a
    /// cancelled run always stops at a multiple of this stride (or the
    /// cycle the token was attached, for immediate expiry).
    pub const CANCEL_EPOCH: Cycle = 8_192;

    /// Attach a cooperative cancellation token, polled by the run loop at
    /// the first step boundary after each [`System::CANCEL_EPOCH`]-cycle
    /// epoch elapses. Like the audit tap and the sampler this is a
    /// run-time attachment: it is not part of snapshots and does not
    /// perturb simulation state — polling only reads a flag and the
    /// clock, so a run that is never cancelled is bit-identical to one
    /// with no token attached.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(CancelState { token, next_at: self.now + Self::CANCEL_EPOCH });
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The cores (statistics access).
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// The memory hierarchy (cache/controller/DRAM statistics).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// Advance the whole machine by one CPU cycle.
    pub fn tick(&mut self) {
        // Any tick can move component event horizons.
        self.next_event_cache = None;
        let now = self.now;
        // Memory side first: deliver data that becomes ready this cycle...
        self.scratch.clear();
        self.hier.advance(now, &mut self.scratch);
        for &(core, token) in &self.scratch {
            self.cores[core.index()].finish(token, now);
        }
        // ...then let every core commit/issue/dispatch.
        for core in &mut self.cores {
            core.tick(now, &mut self.hier);
        }
        self.now += 1;
        if self.online.is_some() {
            self.refresh_online_profile();
        }
        if self.sampler.is_some() {
            self.take_epoch_sample();
        }
    }

    /// Push one epoch row into the attached collector when the sampling
    /// boundary has been reached (no-op otherwise).
    fn take_epoch_sample(&mut self) {
        let Some(st) = self.sampler.as_mut() else {
            return;
        };
        if self.now < st.next_at {
            return;
        }
        st.next_at = self.now + st.epoch;
        let ctrl = self.hier.controller();
        st.core_buf.clear();
        for (i, core) in self.cores.iter().enumerate() {
            st.core_buf.push(CoreSample {
                committed: core.committed(),
                pending_reads: ctrl.pending_reads(CoreId::from(i)),
            });
        }
        st.chan_buf.clear();
        for ch in 0..ctrl.channels() {
            st.chan_buf.push(ChannelSample {
                queue_depth: ctrl.channel_queue_depth(ch),
                busy_cycles: ctrl.dram().bus_busy_cycles(ch),
            });
        }
        st.collector.lock().expect("obs collector poisoned").sample_epoch(
            self.now,
            &st.core_buf,
            &st.chan_buf,
        );
    }

    /// Conservative lower bound on the next cycle at which any component
    /// can make progress (see DESIGN.md, "Simulation kernel"). `Some(now)`
    /// means this cycle must be simulated; `Some(t > now)` means every
    /// cycle strictly before `t` is provably a no-op; `None` means the
    /// machine is fully quiescent with nothing in flight.
    fn next_event_at(&self) -> Option<Cycle> {
        let now = self.now;
        // Cheap O(1) pre-filters first: in active phases some component
        // can almost always act immediately, and the per-op scans below
        // would be pure overhead on top of the tick that follows.
        if self.cores.iter().any(|c| c.can_act_now(now)) || self.hier.can_act_now(now) {
            return Some(now);
        }
        let mut bound: Option<Cycle> = None;
        for t in std::iter::once(self.hier.next_event_at(now))
            .chain(self.cores.iter().map(|c| c.next_event_at(now)))
        {
            match t {
                Some(at) if at <= now => return Some(now),
                Some(at) => bound = Some(bound.map_or(at, |b| b.min(at))),
                None => {}
            }
        }
        bound
    }

    /// Jump the clock from `now` to `target` without simulating the
    /// intervening cycles. Only legal when every one of those cycles is a
    /// no-op (guaranteed by [`System::next_event_at`]); per-core cycle and
    /// commit-stall counters are advanced so statistics match a
    /// cycle-exact run bit for bit.
    fn skip_to(&mut self, target: Cycle) {
        debug_assert!(target > self.now, "skip must move forward");
        let delta = target - self.now;
        for core in &mut self.cores {
            core.note_skip(delta);
        }
        self.now = target;
    }

    /// Epoch step of the online memory-efficiency estimator (the
    /// `ME-LREQ-ON` policy). Measures each core's instructions and DRAM
    /// bytes since the previous epoch, converts them to an Equation-1
    /// sample, smooths it, and rewrites the priority tables.
    fn refresh_online_profile(&mut self) {
        let Some(st) = self.online.as_mut() else {
            return;
        };
        if self.now < st.next_at {
            return;
        }
        st.next_at = self.now + st.epoch;
        let bytes_now: Vec<u64> = self
            .hier
            .controller()
            .stats()
            .bytes_by_core
            .iter()
            .map(melreq_stats::Counter::get)
            .collect();
        let freq = self.cfg.freq_hz;
        let epoch = st.epoch as f64;
        for (i, core) in self.cores.iter().enumerate() {
            let instr_now = core.committed();
            // A statistics reset (end of warm-up) makes byte counters go
            // backwards; resynchronize and skip this epoch's sample.
            if bytes_now[i] < st.prev_bytes[i] {
                st.prev_bytes[i] = bytes_now[i];
                st.prev_instr[i] = instr_now;
                continue;
            }
            let d_instr = instr_now - st.prev_instr[i];
            let d_bytes = bytes_now[i] - st.prev_bytes[i];
            st.prev_instr[i] = instr_now;
            st.prev_bytes[i] = bytes_now[i];
            let ipc = d_instr as f64 / epoch;
            let gbps = d_bytes as f64 * freq / epoch / 1e9;
            let sample = ipc / gbps.max(1e-3);
            st.estimate[i] = OnlineMe::ALPHA * sample + (1.0 - OnlineMe::ALPHA) * st.estimate[i];
        }
        self.hier.update_profile(&st.estimate);
    }

    /// Run until every core has committed `target` instructions (the
    /// paper's run-until-last-core-finishes methodology; early finishers
    /// keep running and keep generating memory traffic), or until
    /// `max_cycles` as a safety net.
    pub fn run_until_targets(&mut self, target: u64, max_cycles: Cycle) -> RunOutcome {
        self.run_measured(0, target, max_cycles)
    }

    /// Like [`System::run_until_targets`] but with an explicit warm-up:
    /// each core first commits `warmup` instructions with cold caches;
    /// once *all* cores have passed warm-up, the memory-side statistics
    /// reset and each core's measured slice of `target` instructions
    /// begins. This substitutes for the implicit warm-up inside the
    /// paper's 100 M-instruction SimPoint slices.
    ///
    /// Equivalent to [`System::prepare_window`] followed by
    /// [`System::run_window`]; the split form exists so callers can pause
    /// at the warm-up boundary ([`System::run_to_boundary`]), take a
    /// [`System::snapshot`], and fork the warmed machine.
    pub fn run_measured(&mut self, warmup: u64, target: u64, max_cycles: Cycle) -> RunOutcome {
        self.prepare_window(warmup, target);
        self.run_window(max_cycles)
    }

    /// Arm every core's measurement window. Must be called from reset; the
    /// run then proceeds via [`System::run_to_boundary`] and/or
    /// [`System::run_window`].
    pub fn prepare_window(&mut self, warmup: u64, target: u64) {
        assert!(self.now == 0, "measured runs must start from reset");
        self.next_event_cache = None;
        for core in &mut self.cores {
            core.set_window(warmup, target);
        }
        self.stats_reset_at = if warmup == 0 { Some(0) } else { None };
    }

    /// One iteration of the measured-run loop: fast-forward or tick, then
    /// fire the statistics reset when the last core crosses warm-up.
    /// Returns `false` when the safety limit was hit.
    fn step_window(&mut self, max_cycles: Cycle) -> bool {
        if self.now >= max_cycles || self.cancelled {
            return false;
        }
        if let Some(cc) = &mut self.cancel {
            if self.now >= cc.next_at {
                cc.next_at = self.now + Self::CANCEL_EPOCH;
                if cc.token.expired() {
                    self.cancelled = true;
                    return false;
                }
            }
        }
        if !self.tick_exact {
            // Fast-forward: jump over cycles no component can act in.
            // Clamp to the safety limit (a fully idle machine skips
            // straight to the timeout, as ticking would) and to the
            // cycle before the next online-ME epoch boundary, whose
            // profile refresh must fire on schedule.
            //
            // A bound memoized by an earlier iteration is still exact
            // here: only [`System::tick`] (and snapshot/policy mutation,
            // each of which clears the cache) can move an event horizon,
            // and a clock that merely advanced toward the bound cannot
            // pass it — jumps are clamped to at most the bound itself.
            let bound = match self.next_event_cache {
                Some(b) => Some(b),
                None => {
                    let b = self.next_event_at();
                    if let Some(at) = b {
                        if at > self.now {
                            self.next_event_cache = Some(at);
                        }
                    }
                    b
                }
            };
            let mut jump_to = bound.unwrap_or(Cycle::MAX).min(max_cycles);
            if let Some(st) = &self.online {
                jump_to = jump_to.min(st.next_at - 1);
            }
            // Same contract for the epoch sampler: its boundary cycle
            // must be explicitly ticked so rows land on schedule.
            if let Some(st) = &self.sampler {
                jump_to = jump_to.min(st.next_at - 1);
            }
            if jump_to > self.now {
                self.skip_to(jump_to);
                return true;
            }
        }
        self.tick();
        if self.stats_reset_at.is_none()
            && self.cores.iter().all(|c| c.window_start_cycle().is_some())
        {
            self.hier.reset_stats();
            // All measured slices start here, together: a core that raced
            // past its warm-up count keeps running, but only instructions
            // committed from this cycle on count toward its target. This
            // is also what makes the warm-up boundary policy-agnostic —
            // nothing measured has executed yet when a forked run swaps
            // the scheduler in.
            for core in &mut self.cores {
                core.begin_measured_slice(self.now);
            }
            self.stats_reset_at = Some(self.now);
        }
        true
    }

    /// Run a prepared window up to the measurement boundary: the cycle at
    /// which the last core finishes warm-up and the memory-side
    /// statistics reset. Returns `false` if `max_cycles` was hit first.
    /// The machine state at the boundary is exactly the state the same
    /// point of a straight [`System::run_window`] call would have — this
    /// is the snapshot/fork point for warmup sharing.
    pub fn run_to_boundary(&mut self, max_cycles: Cycle) -> bool {
        while self.stats_reset_at.is_none() {
            if !self.step_window(max_cycles) {
                return false;
            }
        }
        true
    }

    /// Run a prepared window (from reset, the boundary, or a restored
    /// snapshot) until every core completes its measured slice, then
    /// report the outcome.
    pub fn run_window(&mut self, max_cycles: Cycle) -> RunOutcome {
        let mut timed_out = false;
        while self.cores.iter().any(|c| c.target_cycle().is_none()) {
            if !self.step_window(max_cycles) {
                timed_out = !self.cancelled;
                break;
            }
        }
        let measured_cycles = self.now.saturating_sub(self.stats_reset_at.unwrap_or(0)).max(1);
        let ctrl_stats = self.hier.controller().stats();
        let read_latency: Vec<f64> = ctrl_stats
            .read_latency
            .iter()
            .map(melreq_stats::LatencyTracker::mean_or_zero)
            .collect();
        RunOutcome {
            cycles: measured_cycles,
            ipc: self.cores.iter().map(melreq_cpu::Core::measured_ipc).collect(),
            read_latency,
            mean_read_latency: ctrl_stats.mean_read_latency(),
            bytes_by_core: ctrl_stats
                .bytes_by_core
                .iter()
                .map(melreq_stats::Counter::get)
                .collect(),
            queue_occupancy_mean: ctrl_stats.queue_occupancy.mean_or_zero(),
            grant_candidates_mean: ctrl_stats.grant_candidates.mean_or_zero(),
            channel_traffic: ctrl_stats.per_channel.clone(),
            timed_out,
            cancelled: self.cancelled,
        }
    }

    /// Swap the scheduling policy in place, preserving all architectural
    /// and micro-architectural state — the warmup-sharing hook: a system
    /// warmed once (under the canonical warm-up policy) forks into one
    /// run per measured policy at the measurement boundary.
    ///
    /// The new policy is built fresh from `kind`, `me`, and the system's
    /// construction seed, exactly as [`System::new`] would build it; the
    /// online-ME estimator is re-created (or dropped) to match, with its
    /// first epoch starting now. An attached audit sees a fresh
    /// `CtrlConfig` plus the profile the new tables were programmed from,
    /// mirroring what [`System::attach_audit`] announces at reset.
    pub fn swap_policy(&mut self, kind: &melreq_memctrl::policy::PolicyKind, me: &[f64]) {
        assert_eq!(me.len(), self.cfg.cores, "one ME value per core required");
        self.next_event_cache = None;
        let policy = kind.build(me, self.cfg.cores, self.cfg.seed);
        self.hier.set_policy(policy, kind.read_first());
        self.online = match kind {
            melreq_memctrl::policy::PolicyKind::MeLreqOnline { epoch_cycles } => {
                let mut st = OnlineMe::new(*epoch_cycles, self.cfg.cores);
                st.next_at = self.now + st.epoch;
                // Baseline the deltas at the swap point so the first
                // epoch samples only post-swap execution.
                st.prev_instr = self.cores.iter().map(melreq_cpu::Core::committed).collect();
                st.prev_bytes = self
                    .hier
                    .controller()
                    .stats()
                    .bytes_by_core
                    .iter()
                    .map(melreq_stats::Counter::get)
                    .collect();
                Some(st)
            }
            _ => None,
        };
        self.me_profile =
            Some(if self.online.is_some() { vec![1.0; self.cfg.cores] } else { me.to_vec() });
        self.cfg.policy = kind.clone();
        if let Some(me) = &self.me_profile {
            self.hier.announce_profile(me);
        }
    }

    /// Like [`System::swap_policy`] but for an externally constructed
    /// policy (the [`System::with_policy`] extension point). The policy's
    /// internal state is opaque, so no profile is announced to an
    /// attached audit and the online-ME estimator is dropped.
    pub fn swap_policy_boxed(
        &mut self,
        policy: Box<dyn melreq_memctrl::SchedulerPolicy>,
        read_first: bool,
    ) {
        self.next_event_cache = None;
        self.hier.set_policy(policy, read_first);
        self.online = None;
        self.me_profile = None;
    }

    /// Serialize the entire machine — every core pipeline (including its
    /// instruction stream's generation cursor), the cache hierarchy, the
    /// memory controller, the DRAM device, the online-ME estimator, the
    /// clock, and the measurement bookkeeping — into a self-validating
    /// container ([`melreq_snap::seal`]). Restoring it into a freshly
    /// constructed identical system resumes the run bit-exactly; see
    /// [`System::load_snapshot`].
    pub fn snapshot(&self) -> Vec<u8> {
        let mut enc = melreq_snap::Enc::new();
        enc.u64(self.now);
        enc.usize(self.cores.len());
        for c in &self.cores {
            c.save_state(&mut enc);
        }
        self.hier.save_state(&mut enc);
        match &self.online {
            Some(st) => {
                enc.bool(true);
                enc.u64(st.epoch);
                enc.u64(st.next_at);
                enc.u64s(&st.prev_instr);
                enc.u64s(&st.prev_bytes);
                enc.f64s(&st.estimate);
            }
            None => enc.bool(false),
        }
        enc.opt_u64(self.stats_reset_at);
        melreq_snap::seal(&enc.into_bytes())
    }

    /// Restore a [`System::snapshot`] into this system. The receiver must
    /// have been built with the same configuration (core count, cache and
    /// DRAM geometry, policy kind, seed, streams) as the system the
    /// snapshot was taken from; what was *mutable* — pipeline contents,
    /// cache arrays, queues, timers, RNG streams, statistics, the clock —
    /// is overwritten wholesale. The kernel mode (`tick_exact`) is
    /// deliberately untouched — an observer of the simulation, not part
    /// of its state. Observers that would misreport across the
    /// discontinuity detach: the controller drops its audit tap (see
    /// [`MemoryController::load_state`]) and any attached epoch sampler
    /// is dropped likewise.
    pub fn load_snapshot(&mut self, bytes: &[u8]) -> Result<(), melreq_snap::SnapError> {
        let payload = melreq_snap::open(bytes)?;
        let mut dec = melreq_snap::Dec::new(payload);
        let now = dec.u64()?;
        let n = dec.usize()?;
        if n != self.cores.len() {
            return Err(melreq_snap::SnapError::Invalid("system core count mismatch"));
        }
        for c in &mut self.cores {
            c.load_state(&mut dec)?;
        }
        self.hier.load_state(&mut dec)?;
        let has_online = dec.bool()?;
        if has_online != self.online.is_some() {
            return Err(melreq_snap::SnapError::Invalid("online estimator presence mismatch"));
        }
        if has_online {
            let st = self.online.as_mut().expect("checked presence");
            st.epoch = dec.u64()?;
            if st.epoch == 0 {
                return Err(melreq_snap::SnapError::Invalid("online epoch must be positive"));
            }
            st.next_at = dec.u64()?;
            st.prev_instr = dec.u64s()?;
            st.prev_bytes = dec.u64s()?;
            st.estimate = dec.f64s()?;
            if st.prev_instr.len() != n || st.prev_bytes.len() != n || st.estimate.len() != n {
                return Err(melreq_snap::SnapError::Invalid("online estimator width mismatch"));
            }
        }
        self.stats_reset_at = dec.opt_u64()?;
        if !dec.is_exhausted() {
            return Err(melreq_snap::SnapError::Invalid("trailing snapshot bytes"));
        }
        self.now = now;
        // A sampler attached before the restore would emit rows whose
        // deltas straddle the discontinuity; re-attach after restoring
        // to observe the resumed run.
        self.sampler = None;
        self.next_event_cache = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use melreq_memctrl::policy::PolicyKind;
    use melreq_workloads::{app_by_code, SliceKind};

    fn small_system(cores: usize, codes: &str, policy: PolicyKind) -> System {
        let cfg = SystemConfig::paper(cores, policy);
        let streams: Vec<Box<dyn InstrStream + Send>> = codes
            .chars()
            .enumerate()
            .map(|(i, c)| {
                Box::new(app_by_code(c).build_stream(i, SliceKind::Evaluation(0)))
                    as Box<dyn InstrStream + Send>
            })
            .collect();
        let me = vec![1.0; cores];
        System::new(cfg, streams, &me)
    }

    #[test]
    fn single_core_ilp_app_runs() {
        let mut sys = small_system(1, "t", PolicyKind::HfRf); // eon
        let out = sys.run_measured(20_000, 20_000, 20_000_000);
        assert!(!out.timed_out, "eon must finish quickly");
        assert!(out.ipc[0] > 1.0, "cache-resident app should have high IPC, got {}", out.ipc[0]);
    }

    #[test]
    fn single_core_mem_app_is_memory_bound() {
        let mut sys = small_system(1, "c", PolicyKind::HfRf); // swim
        let out = sys.run_until_targets(20_000, 10_000_000);
        assert!(!out.timed_out);
        assert!(out.ipc[0] < 1.5, "streaming app should be memory-bound, got {}", out.ipc[0]);
        assert!(out.bytes_by_core[0] > 0, "must touch DRAM");
    }

    #[test]
    fn ilp_app_uses_less_bandwidth_than_mem_app() {
        let mut ilp = small_system(1, "t", PolicyKind::HfRf);
        let mut mem = small_system(1, "c", PolicyKind::HfRf);
        let oi = ilp.run_measured(20_000, 20_000, 20_000_000);
        let om = mem.run_measured(20_000, 20_000, 20_000_000);
        let bi = oi.total_bandwidth_gbs(3.2e9);
        let bm = om.total_bandwidth_gbs(3.2e9);
        assert!(bm > 5.0 * bi.max(1e-6), "MEM app must out-demand ILP app: {bm} vs {bi} GB/s");
    }

    #[test]
    fn two_core_run_interferes() {
        let mut solo = small_system(1, "c", PolicyKind::HfRf);
        let s = solo.run_until_targets(10_000, 10_000_000);
        let mut duo = small_system(2, "ce", PolicyKind::HfRf); // swim + applu
        let d = duo.run_until_targets(10_000, 20_000_000);
        assert!(!d.timed_out);
        assert!(d.ipc[0] < s.ipc[0], "sharing memory must slow swim: {} vs {}", d.ipc[0], s.ipc[0]);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let mut a = small_system(2, "bc", PolicyKind::MeLreq);
        let mut b = small_system(2, "bc", PolicyKind::MeLreq);
        let oa = a.run_until_targets(5_000, 10_000_000);
        let ob = b.run_until_targets(5_000, 10_000_000);
        assert_eq!(oa.cycles, ob.cycles);
        assert_eq!(oa.ipc, ob.ipc);
    }

    #[test]
    fn online_me_lreq_runs_and_learns() {
        // ME-LREQ-ON needs no offline profile: ME values passed to
        // System::new are ignored by the online build, and the estimator
        // refreshes the tables as the run progresses.
        let cfg = SystemConfig::paper(2, PolicyKind::MeLreqOnline { epoch_cycles: 5_000 });
        let streams: Vec<Box<dyn InstrStream + Send>> = "bc"
            .chars()
            .enumerate()
            .map(|(i, c)| {
                Box::new(app_by_code(c).build_stream(i, SliceKind::Evaluation(0)))
                    as Box<dyn InstrStream + Send>
            })
            .collect();
        let mut sys = System::new(cfg, streams, &[1.0, 1.0]);
        let out = sys.run_measured(10_000, 20_000, 1 << 27);
        assert!(!out.timed_out);
        assert!(out.ipc.iter().all(|&i| i > 0.0));
    }

    #[test]
    fn online_estimator_is_deterministic() {
        let run = || {
            let cfg = SystemConfig::paper(2, PolicyKind::MeLreqOnline { epoch_cycles: 3_000 });
            let streams: Vec<Box<dyn InstrStream + Send>> = "kc"
                .chars()
                .enumerate()
                .map(|(i, c)| {
                    Box::new(app_by_code(c).build_stream(i, SliceKind::Evaluation(0)))
                        as Box<dyn InstrStream + Send>
                })
                .collect();
            let mut sys = System::new(cfg, streams, &[1.0, 1.0]);
            sys.run_measured(5_000, 10_000, 1 << 27)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    #[should_panic(expected = "one stream per core")]
    fn stream_count_must_match() {
        let cfg = SystemConfig::paper(2, PolicyKind::HfRf);
        let s = app_by_code('c').build_stream(0, SliceKind::Profiling);
        let _ = System::new(cfg, vec![Box::new(s) as Box<dyn InstrStream + Send>], &[1.0, 1.0]);
    }
}
