//! Off-line memory-efficiency profiling (the paper's Equation 1 step).
//!
//! "We randomly select a single simpoint … for profiling and measure the
//! programs' memory efficiency" (Section 4.1). Here a profiling run
//! executes an application's *profiling slice* alone on a single-core
//! configuration of the paper machine and records IPC and DRAM bandwidth;
//! `ME = IPC / BW(GB/s)` then initializes the controller's priority
//! tables for the multiprogrammed runs.

use crate::config::SystemConfig;
use crate::system::System;
use melreq_memctrl::policy::PolicyKind;
use melreq_stats::bandwidth::memory_efficiency;
use melreq_trace::InstrStream;
use melreq_workloads::{AppSpec, Mix, SliceKind};

/// The profile of one application on the single-core reference machine.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Table 2 code letter.
    pub code: char,
    /// Single-core IPC over the measured slice.
    pub ipc: f64,
    /// Single-core DRAM bandwidth in GB/s over the measured slice.
    pub bw_gbs: f64,
    /// Memory efficiency (Equation 1): `ipc / bw_gbs`.
    pub me: f64,
}

/// Profile one application: run `instructions` committed ops of the given
/// slice alone on the paper's single-core machine (HF-RF policy — the
/// baseline controller, so profiles are policy-independent).
pub fn profile_app(app: &AppSpec, slice: SliceKind, instructions: u64) -> AppProfile {
    let cfg = SystemConfig::paper(1, PolicyKind::HfRf);
    let freq = cfg.freq_hz;
    let stream: Box<dyn InstrStream + Send> = Box::new(app.build_stream(0, slice));
    let mut sys = System::new(cfg, vec![stream], &[1.0]);
    // Warm the caches over one slice length before measuring, so compulsory
    // misses do not pollute the short profile (the paper's 10 M-op slices
    // amortize warm-up implicitly). Safety net: a fully memory-bound app
    // commits ≥ ~1 op per 2000 cycles even under worst-case queueing.
    let out = sys.run_measured(
        instructions,
        instructions,
        instructions.saturating_mul(4000).max(1 << 22),
    );
    assert!(!out.timed_out, "profiling of {} timed out", app.name);
    let ipc = out.ipc[0];
    let bw_gbs = out.total_bandwidth_gbs(freq);
    // Bandwidth below 1 MB/s is under the measurement resolution of a
    // short slice; flooring it keeps ME large-but-finite for programs that
    // never touch DRAM (the paper likewise reports finite ME = 16276 for
    // eon rather than infinity).
    let me = memory_efficiency(ipc, bw_gbs.max(1e-3));
    AppProfile { name: app.name, code: app.code, ipc, bw_gbs, me }
}

/// Profile every application of a mix (profiling slice), in core order.
pub fn profile_mix_apps(mix: &Mix, instructions: u64) -> Vec<AppProfile> {
    mix.apps().iter().map(|a| profile_app(a, SliceKind::Profiling, instructions)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use melreq_workloads::app_by_code;

    // Long enough that warm-up covers the cache-resident working sets;
    // see EXPERIMENTS.md on slice-length effects.
    const N: u64 = 60_000;

    #[test]
    fn ilp_app_profiles_with_high_me() {
        let p = profile_app(&app_by_code('t'), SliceKind::Profiling, N); // eon
        assert!(p.ipc > 1.5, "eon IPC {}", p.ipc);
        assert!(p.me > 100.0, "eon ME should be large, got {}", p.me);
    }

    #[test]
    fn streaming_mem_app_profiles_with_low_me() {
        let p = profile_app(&app_by_code('c'), SliceKind::Profiling, N); // swim
        assert!(p.bw_gbs > 5.0, "swim must demand bandwidth, got {} GB/s", p.bw_gbs);
        assert!(p.me < 1.0, "swim ME should be tiny, got {}", p.me);
    }

    #[test]
    fn me_separates_classes_like_table_2() {
        let eon = profile_app(&app_by_code('t'), SliceKind::Profiling, N);
        let swim = profile_app(&app_by_code('c'), SliceKind::Profiling, N);
        let vpr = profile_app(&app_by_code('f'), SliceKind::Profiling, N);
        assert!(
            eon.me > vpr.me && vpr.me > swim.me,
            "ME order must be eon > vpr > swim: {} / {} / {}",
            eon.me,
            vpr.me,
            swim.me
        );
    }

    #[test]
    fn profiling_is_deterministic() {
        let a = profile_app(&app_by_code('k'), SliceKind::Profiling, 5_000);
        let b = profile_app(&app_by_code('k'), SliceKind::Profiling, 5_000);
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.me, b.me);
    }
}
