//! Plain-text table rendering shared by the bench binaries.

/// Render an aligned text table. `headers.len()` must equal the width of
/// every row.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    for r in rows {
        assert_eq!(r.len(), cols, "row width mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>w$}"));
        }
        line.push('\n');
        line
    };
    out.push_str(&render_row(headers.to_vec(), &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for r in rows {
        out.push_str(&render_row(r.iter().map(std::string::String::as_str).collect(), &widths));
    }
    out
}

/// Format a ratio as a signed percent improvement over a baseline,
/// e.g. `pct_over(1.107, 1.0)` → `"+10.7%"`.
pub fn pct_over(value: f64, baseline: f64) -> String {
    assert!(baseline != 0.0, "baseline must be non-zero");
    let pct = (value / baseline - 1.0) * 100.0;
    format!("{pct:+.1}%")
}

/// Format a float with three significant decimals for table cells.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["name", "val"],
            &[vec!["a".into(), "1.0".into()], vec!["longer".into(), "22.5".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("22.5"));
    }

    #[test]
    fn pct_formats_sign() {
        assert_eq!(pct_over(1.107, 1.0), "+10.7%");
        assert_eq!(pct_over(0.9, 1.0), "-10.0%");
        assert_eq!(pct_over(2.0, 2.0), "+0.0%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let _ = format_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
