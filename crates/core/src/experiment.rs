//! The multiprogrammed evaluation harness (Figures 2–5).
//!
//! [`run_mix`] reproduces the paper's per-workload methodology:
//!
//! 1. profile each application alone (profiling slice) → `ME[i]`;
//! 2. run each application alone on the *evaluation* slice →
//!    `IPC_single[i]` (the SMT-speedup denominator);
//! 3. run the mix on the multi-core machine under the policy until every
//!    core commits its target instruction count (early finishers keep
//!    running — "reload their applications and keep running");
//! 4. report SMT speedup, unfairness and read latencies.
//!
//! [`ProfileCache`] memoizes steps 1–2 per application so sweeping 36
//! mixes × 5 policies does not re-profile the same programs; the cache is
//! `Sync` and shared across the worker threads of [`run_grid`].

use crate::profile::{profile_app, AppProfile};
use crate::system::System;
use crate::SystemConfig;
use melreq_memctrl::policy::PolicyKind;
use melreq_stats::fairness::FairnessReport;
use melreq_stats::types::Cycle;
use melreq_trace::InstrStream;
use melreq_workloads::{Mix, SliceKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Knobs of an experiment sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Committed instructions per core in the multiprogrammed run (the
    /// paper uses 100 M; the default here keeps CI runtimes sane — the
    /// statistical workloads are stationary, so the policy ordering is
    /// preserved; see EXPERIMENTS.md).
    pub instructions: u64,
    /// Warm-up instructions per core before the measured slice begins.
    pub warmup: u64,
    /// Committed instructions of each single-core profiling run.
    pub profile_instructions: u64,
    /// Which evaluation slice (seed family) the mix runs.
    pub eval_slice: u32,
    /// Safety net: abort a run after `instructions * max_cycles_factor`
    /// cycles.
    pub max_cycles_factor: u64,
    /// Debug knob: run the multiprogrammed system cycle-exactly instead of
    /// fast-forwarding over quiescent cycles (see
    /// [`System::set_tick_exact`]). Results are identical either way; this
    /// exists for kernel-equivalence regression tests and perf baselines.
    pub tick_exact: bool,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            instructions: 150_000,
            warmup: 60_000,
            profile_instructions: 60_000,
            eval_slice: 0,
            max_cycles_factor: 4000,
            tick_exact: false,
        }
    }
}

impl ExperimentOptions {
    /// Quick options for tests.
    pub fn quick() -> Self {
        ExperimentOptions {
            instructions: 20_000,
            warmup: 10_000,
            profile_instructions: 10_000,
            ..Default::default()
        }
    }

    fn max_cycles(&self) -> Cycle {
        self.instructions.saturating_mul(self.max_cycles_factor).max(1 << 22)
    }
}

/// Memoized single-core profiles: `ME` (profiling slice) and
/// `IPC_single` (evaluation slice) per application code.
#[derive(Debug, Default)]
pub struct ProfileCache {
    me: Mutex<HashMap<char, AppProfile>>,
    ipc_single: Mutex<HashMap<(char, u32), f64>>,
}

impl ProfileCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The profiling-slice profile of `code` (memoized).
    pub fn profile(&self, mix: &Mix, core: usize, opts: &ExperimentOptions) -> AppProfile {
        let app = &mix.apps()[core];
        let mut g = self.me.lock().expect("profile cache poisoned");
        g.entry(app.code)
            .or_insert_with(|| profile_app(app, SliceKind::Profiling, opts.profile_instructions))
            .clone()
    }

    /// Single-core IPC of `code` on the evaluation slice (memoized).
    pub fn ipc_single(&self, mix: &Mix, core: usize, opts: &ExperimentOptions) -> f64 {
        let app = &mix.apps()[core];
        let key = (app.code, opts.eval_slice);
        let mut g = self.ipc_single.lock().expect("profile cache poisoned");
        *g.entry(key).or_insert_with(|| {
            profile_app(app, SliceKind::Evaluation(opts.eval_slice), opts.instructions).ipc
        })
    }
}

/// The full result of one (mix, policy) run.
#[derive(Debug, Clone)]
pub struct MixResult {
    /// The workload that ran.
    pub mix: Mix,
    /// Policy shorthand name ("HF-RF", "ME-LREQ", ...).
    pub policy: &'static str,
    /// SMT speedup (Σ IPC_multi/IPC_single — Figure 2's metric).
    pub smt_speedup: f64,
    /// Unfairness (max slowdown / min slowdown — Figure 5's metric).
    pub unfairness: f64,
    /// Per-core IPC in the multiprogrammed run.
    pub ipc_multi: Vec<f64>,
    /// Per-core single-core reference IPC.
    pub ipc_single: Vec<f64>,
    /// Per-core mean read latency in cycles (Figure 4 right).
    pub read_latency: Vec<f64>,
    /// Mean read latency over all cores (Figure 4 left).
    pub mean_read_latency: f64,
    /// Profiled ME values used to program the priority table.
    pub me: Vec<f64>,
    /// Whether the run aborted on the cycle safety net.
    pub timed_out: bool,
    /// Total cycles the multiprogrammed system simulated (warm-up
    /// included — the denominator for host-throughput reporting).
    pub sim_cycles: Cycle,
    /// Host wall-clock time of the multiprogrammed run alone (profiling
    /// and single-core reference runs excluded).
    pub wall: std::time::Duration,
}

/// Run one Table 3 mix under one of the paper's policies.
pub fn run_mix(
    mix: &Mix,
    policy: &PolicyKind,
    opts: &ExperimentOptions,
    cache: &ProfileCache,
) -> MixResult {
    let policy = policy.clone();
    run_mix_custom(
        mix,
        policy.name(),
        |me, cores, seed| {
            let cfg_policy = policy.clone();
            let sys_policy = cfg_policy.build(me, cores, seed);
            (sys_policy, cfg_policy.read_first())
        },
        Some(policy.clone()),
        opts,
        cache,
    )
}

/// Run one mix under an arbitrary policy built by `factory` (receives the
/// profiled ME values, core count and seed; returns the policy and its
/// read-first setting). This is the harness entry point for extension
/// policies such as [`melreq_memctrl::ext::FairQueueing`].
///
/// `kind` threads the original [`PolicyKind`] through when there is one,
/// so `PolicyKind::MeLreqOnline`'s system-side estimator still engages.
pub fn run_mix_custom(
    mix: &Mix,
    name: &'static str,
    factory: impl Fn(&[f64], usize, u64) -> (Box<dyn melreq_memctrl::SchedulerPolicy>, bool),
    kind: Option<PolicyKind>,
    opts: &ExperimentOptions,
    cache: &ProfileCache,
) -> MixResult {
    let cores = mix.cores();
    let me: Vec<f64> = (0..cores).map(|i| cache.profile(mix, i, opts).me).collect();
    let ipc_single: Vec<f64> = (0..cores).map(|i| cache.ipc_single(mix, i, opts)).collect();

    let streams: Vec<Box<dyn InstrStream + Send>> = mix
        .apps()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            Box::new(a.build_stream(i, SliceKind::Evaluation(opts.eval_slice)))
                as Box<dyn InstrStream + Send>
        })
        .collect();
    let mut sys = match kind {
        // Paper policies go through System::new so policy-coupled system
        // behaviour (the online ME estimator) stays wired up.
        Some(k) => {
            let cfg = SystemConfig::paper(cores, k);
            System::new(cfg, streams, &me)
        }
        None => {
            let cfg = SystemConfig::paper(cores, PolicyKind::HfRf);
            let (policy, read_first) = factory(&me, cores, cfg.seed);
            System::with_policy(cfg, streams, policy, read_first)
        }
    };
    sys.set_tick_exact(opts.tick_exact);
    let started = std::time::Instant::now();
    let out = sys.run_measured(opts.warmup, opts.instructions, opts.max_cycles());
    let wall = started.elapsed();

    let fairness = FairnessReport::compute(&out.ipc, &ipc_single);
    MixResult {
        mix: *mix,
        policy: name,
        smt_speedup: fairness.smt_speedup,
        unfairness: fairness.unfairness,
        ipc_multi: out.ipc,
        ipc_single,
        read_latency: out.read_latency,
        mean_read_latency: out.mean_read_latency,
        me,
        timed_out: out.timed_out,
        sim_cycles: sys.now(),
        wall,
    }
}

/// Run one mix under one policy with the independent protocol/invariant
/// checker attached ([`melreq_audit`]): every DRAM grant is re-validated
/// against the DDR2 timing constraints and every scheduling decision
/// against the policy's published invariants, while a running hash of the
/// event stream fingerprints the run for determinism comparisons.
///
/// Returns the normal [`MixResult`] plus the [`melreq_audit::AuditReport`]
/// (violation counts, samples, and the stream hash).
pub fn run_mix_audited(
    mix: &Mix,
    policy: &PolicyKind,
    opts: &ExperimentOptions,
    cache: &ProfileCache,
) -> (MixResult, melreq_audit::AuditReport) {
    let cores = mix.cores();
    let me: Vec<f64> = (0..cores).map(|i| cache.profile(mix, i, opts).me).collect();
    let ipc_single: Vec<f64> = (0..cores).map(|i| cache.ipc_single(mix, i, opts)).collect();
    let streams: Vec<Box<dyn InstrStream + Send>> = mix
        .apps()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            Box::new(a.build_stream(i, SliceKind::Evaluation(opts.eval_slice)))
                as Box<dyn InstrStream + Send>
        })
        .collect();
    let cfg = SystemConfig::paper(cores, policy.clone());
    let mut sys = System::new(cfg, streams, &me);
    sys.set_tick_exact(opts.tick_exact);
    let (handle, auditor) =
        melreq_audit::Auditor::shared(melreq_audit::AuditorConfig::default(), true);
    sys.attach_audit(handle);
    let started = std::time::Instant::now();
    let out = sys.run_measured(opts.warmup, opts.instructions, opts.max_cycles());
    let wall = started.elapsed();
    let report = auditor.lock().expect("auditor poisoned").report();

    let fairness = FairnessReport::compute(&out.ipc, &ipc_single);
    let result = MixResult {
        mix: *mix,
        policy: policy.name(),
        smt_speedup: fairness.smt_speedup,
        unfairness: fairness.unfairness,
        ipc_multi: out.ipc,
        ipc_single,
        read_latency: out.read_latency,
        mean_read_latency: out.mean_read_latency,
        me,
        timed_out: out.timed_out,
        sim_cycles: sys.now(),
        wall,
    };
    (result, report)
}

/// Results of one mix across several policies, with the first policy
/// treated as the baseline.
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// One result per policy, in input order.
    pub results: Vec<MixResult>,
}

impl PolicyComparison {
    /// Speedup of policy `i` over the baseline (policy 0), as a ratio.
    pub fn speedup_over_baseline(&self, i: usize) -> f64 {
        self.results[i].smt_speedup / self.results[0].smt_speedup
    }
}

/// Run one mix under every policy in `policies` (policy 0 = baseline).
pub fn compare_policies(
    mix: &Mix,
    policies: &[PolicyKind],
    opts: &ExperimentOptions,
    cache: &ProfileCache,
) -> PolicyComparison {
    PolicyComparison { results: policies.iter().map(|p| run_mix(mix, p, opts, cache)).collect() }
}

/// Run the full (mix × policy) grid in parallel across OS threads,
/// returning results in `(mix-major, policy-minor)` order.
pub fn run_grid(
    mixes: &[Mix],
    policies: &[PolicyKind],
    opts: &ExperimentOptions,
    cache: &ProfileCache,
) -> Vec<MixResult> {
    let jobs: Vec<(usize, &Mix, &PolicyKind)> = mixes
        .iter()
        .flat_map(|m| policies.iter().map(move |p| (m, p)))
        .enumerate()
        .map(|(i, (m, p))| (i, m, p))
        .collect();
    let n = jobs.len();
    let slots: Vec<Mutex<Option<MixResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers =
        std::thread::available_parallelism().map_or(4, std::num::NonZero::get).min(n.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (slot, mix, policy) = jobs[i];
                let r = run_mix(mix, policy, opts, cache);
                *slots[slot].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot poisoned").expect("job not run"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use melreq_workloads::mix_by_name;

    #[test]
    fn run_mix_produces_consistent_result() {
        let cache = ProfileCache::new();
        let opts = ExperimentOptions::quick();
        let mix = mix_by_name("2MEM-1");
        let r = run_mix(&mix, &PolicyKind::HfRf, &opts, &cache);
        assert!(!r.timed_out);
        assert_eq!(r.ipc_multi.len(), 2);
        assert!(r.smt_speedup > 0.5 && r.smt_speedup <= 2.0 + 1e-9, "speedup {}", r.smt_speedup);
        assert!(r.unfairness >= 1.0);
        assert!(r.mean_read_latency > 100.0, "latency {}", r.mean_read_latency);
    }

    #[test]
    fn cache_avoids_reprofiling() {
        let cache = ProfileCache::new();
        let opts = ExperimentOptions::quick();
        let mix = mix_by_name("2MEM-1");
        let a = cache.profile(&mix, 0, &opts);
        let b = cache.profile(&mix, 0, &opts);
        assert_eq!(a.me, b.me);
    }

    #[test]
    fn compare_policies_baseline_ratio_is_one() {
        let cache = ProfileCache::new();
        let opts = ExperimentOptions::quick();
        let mix = mix_by_name("2MEM-4");
        let cmp = compare_policies(&mix, &[PolicyKind::HfRf, PolicyKind::Lreq], &opts, &cache);
        assert!((cmp.speedup_over_baseline(0) - 1.0).abs() < 1e-12);
        assert!(cmp.speedup_over_baseline(1) > 0.5);
    }

    #[test]
    fn audited_run_is_clean_and_reproducible() {
        let cache = ProfileCache::new();
        let opts = ExperimentOptions::quick();
        let mix = mix_by_name("2MEM-1");
        let (ra, a) = run_mix_audited(&mix, &PolicyKind::MeLreq, &opts, &cache);
        let (rb, b) = run_mix_audited(&mix, &PolicyKind::MeLreq, &opts, &cache);
        assert!(a.is_clean(), "audit must pass:\n{}", a.render());
        assert!(a.events > 0, "instrumentation must emit events");
        assert_eq!(a.stream_hash, b.stream_hash, "same seed must replay identically");
        assert_eq!(ra.smt_speedup, rb.smt_speedup);
    }

    #[test]
    fn grid_matches_serial_order() {
        let cache = ProfileCache::new();
        let opts = ExperimentOptions::quick();
        let mixes = [mix_by_name("2MEM-1"), mix_by_name("2MEM-2")];
        let policies = [PolicyKind::HfRf, PolicyKind::MeLreq];
        let grid = run_grid(&mixes, &policies, &opts, &cache);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].mix.name, "2MEM-1");
        assert_eq!(grid[0].policy, "HF-RF");
        assert_eq!(grid[1].policy, "ME-LREQ");
        assert_eq!(grid[2].mix.name, "2MEM-2");
        // Parallel result equals a serial re-run (determinism end-to-end).
        let serial = run_mix(&mixes[1], &policies[1], &opts, &cache);
        assert_eq!(serial.smt_speedup, grid[3].smt_speedup);
    }
}
