//! The multiprogrammed evaluation harness (Figures 2–5).
//!
//! [`run_mix`] reproduces the paper's per-workload methodology:
//!
//! 1. profile each application alone (profiling slice) → `ME[i]`;
//! 2. run each application alone on the *evaluation* slice →
//!    `IPC_single[i]` (the SMT-speedup denominator);
//! 3. run the mix on the multi-core machine under the policy until every
//!    core commits its target instruction count (early finishers keep
//!    running — "reload their applications and keep running");
//! 4. report SMT speedup, unfairness and read latencies.
//!
//! [`ProfileCache`] memoizes steps 1–2 per application so sweeping 36
//! mixes × 5 policies does not re-profile the same programs; the cache is
//! `Sync` and shared across the worker threads of [`run_grid`].
//!
//! # Warm-up sharing
//!
//! Warm-up always runs under the *canonical* policy
//! ([`CANONICAL_WARMUP_POLICY`], the paper's HF-RF baseline, programmed
//! with a flat ME profile) and the measured policy is swapped in at the
//! measurement boundary ([`System::swap_policy`]) — in **every** path:
//! [`run_mix`], [`run_mix_audited`], and the grid. The boundary state is
//! therefore identical across all policies of a (mix, options) group, so
//! [`run_grid`] simulates it once per group, snapshots it, and forks the
//! bytes into one fresh system per policy; [`run_mix`] on the same inputs
//! reaches the same state by direct simulation, which is what makes the
//! two bit-exactly comparable. With a [`CheckpointStore`] attached
//! (`*_with_store` variants), boundary snapshots and single-core profiles
//! also persist across process invocations.

use crate::profile::{profile_app, AppProfile};
use crate::store::CheckpointStore;
use crate::system::{CancelToken, RunOutcome, System};
use crate::SystemConfig;
use melreq_memctrl::policy::PolicyKind;
use melreq_obs::{Collector, Fanout, ObsConfig};
use melreq_stats::fairness::FairnessReport;
use melreq_stats::types::Cycle;
use melreq_trace::InstrStream;
use melreq_workloads::{Mix, SliceKind};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The policy every warm-up runs under, regardless of the measured
/// policy: the paper's baseline, which ignores ME values, so warm-up
/// checkpoints are shared across policies *and* profiles.
pub const CANONICAL_WARMUP_POLICY: PolicyKind = PolicyKind::HfRf;

/// Knobs of an experiment sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOptions {
    /// Committed instructions per core in the multiprogrammed run (the
    /// paper uses 100 M; the default here keeps CI runtimes sane — the
    /// statistical workloads are stationary, so the policy ordering is
    /// preserved; see EXPERIMENTS.md).
    pub instructions: u64,
    /// Warm-up instructions per core before the measured slice begins.
    pub warmup: u64,
    /// Committed instructions of each single-core profiling run.
    pub profile_instructions: u64,
    /// Which evaluation slice (seed family) the mix runs.
    pub eval_slice: u32,
    /// Safety net: abort a run after `instructions * max_cycles_factor`
    /// cycles.
    pub max_cycles_factor: u64,
    /// Debug knob: run the multiprogrammed system cycle-exactly instead of
    /// fast-forwarding over quiescent cycles (see
    /// [`System::set_tick_exact`]). Results are identical either way; this
    /// exists for kernel-equivalence regression tests and perf baselines.
    pub tick_exact: bool,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            instructions: 150_000,
            warmup: 60_000,
            profile_instructions: 60_000,
            eval_slice: 0,
            max_cycles_factor: 4000,
            tick_exact: false,
        }
    }
}

impl ExperimentOptions {
    /// Quick options for tests.
    pub fn quick() -> Self {
        ExperimentOptions {
            instructions: 20_000,
            warmup: 10_000,
            profile_instructions: 10_000,
            ..Default::default()
        }
    }

    fn max_cycles(&self) -> Cycle {
        self.instructions.saturating_mul(self.max_cycles_factor).max(1 << 22)
    }
}

/// Per-run controls threaded from the caller (CLI or service layer) into
/// the harness: a cooperative [`CancelToken`] (wall-clock timeouts,
/// server shutdown) and an optional simulated-cycle budget that tightens
/// the options' safety net. The default control is inert — every
/// convenience entry point (`run_mix`, `run_mix_group`, …) uses it.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Cooperative cancellation, polled at epoch boundaries
    /// ([`System::CANCEL_EPOCH`]); `None` attaches nothing.
    pub cancel: Option<CancelToken>,
    /// Simulated-cycle budget for the whole run (warm-up included); the
    /// effective limit is the minimum of this and the options' safety
    /// net. A run that exhausts it reports `timed_out`.
    pub max_cycles: Option<Cycle>,
    /// Worker-thread count for pooled runs (`--threads`); `None` falls
    /// back to the `MELREQ_THREADS` environment variable, then to the
    /// host's available parallelism (see [`worker_count`]). Results are
    /// bit-identical at any value.
    pub threads: Option<usize>,
}

impl RunControl {
    /// The effective cycle limit under `opts`.
    fn limit(&self, opts: &ExperimentOptions) -> Cycle {
        let base = opts.max_cycles();
        self.max_cycles.map_or(base, |b| b.min(base))
    }

    /// Attach the cancel token (if any) to a freshly built system.
    fn arm(&self, sys: &mut System) {
        if let Some(token) = &self.cancel {
            sys.set_cancel(token.clone());
        }
    }
}

/// Memoized single-core profiles: `ME` (profiling slice) and
/// `IPC_single` (evaluation slice) per application code. With a
/// [`CheckpointStore`] attached ([`ProfileCache::with_store`]), profiles
/// missing from memory are looked up on disk before being simulated, and
/// freshly simulated ones are persisted — a warm store answers every
/// profiling request of a sweep without running a single profiling cycle.
#[derive(Debug, Default)]
pub struct ProfileCache {
    me: Mutex<BTreeMap<char, AppProfile>>,
    ipc_single: Mutex<BTreeMap<(char, u32), f64>>,
    store: Option<Arc<CheckpointStore>>,
}

impl ProfileCache {
    /// An empty in-memory cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache backed by a persistent store.
    pub fn with_store(store: Arc<CheckpointStore>) -> Self {
        ProfileCache { store: Some(store), ..Self::default() }
    }

    /// The profiling-slice profile of `code` (memoized).
    pub fn profile(&self, mix: &Mix, core: usize, opts: &ExperimentOptions) -> AppProfile {
        let app = &mix.apps()[core];
        let mut g = self.me.lock().expect("profile cache poisoned");
        g.entry(app.code)
            .or_insert_with(|| {
                let key = CheckpointStore::profile_key(
                    app.code,
                    SliceKind::Profiling,
                    opts.profile_instructions,
                );
                if let Some(st) = &self.store {
                    if let Some(p) = st.load_profile(key) {
                        return p;
                    }
                }
                let _sp = melreq_prof::span("profile", || format!("app {} (ME)", app.code));
                let p = profile_app(app, SliceKind::Profiling, opts.profile_instructions);
                if let Some(st) = &self.store {
                    st.store_profile(key, &p);
                }
                p
            })
            .clone()
    }

    /// Single-core IPC of `code` on the evaluation slice (memoized). The
    /// persistent record is the full evaluation-slice [`AppProfile`].
    pub fn ipc_single(&self, mix: &Mix, core: usize, opts: &ExperimentOptions) -> f64 {
        let app = &mix.apps()[core];
        let key = (app.code, opts.eval_slice);
        let mut g = self.ipc_single.lock().expect("profile cache poisoned");
        *g.entry(key).or_insert_with(|| {
            let slice = SliceKind::Evaluation(opts.eval_slice);
            let skey = CheckpointStore::profile_key(app.code, slice, opts.instructions);
            if let Some(st) = &self.store {
                if let Some(p) = st.load_profile(skey) {
                    return p.ipc;
                }
            }
            let _sp = melreq_prof::span("profile", || format!("app {} (IPC_single)", app.code));
            let p = profile_app(app, slice, opts.instructions);
            if let Some(st) = &self.store {
                st.store_profile(skey, &p);
            }
            p.ipc
        })
    }
}

/// The full result of one (mix, policy) run.
#[derive(Debug, Clone)]
pub struct MixResult {
    /// The workload that ran.
    pub mix: Mix,
    /// Policy shorthand name ("HF-RF", "ME-LREQ", ...).
    pub policy: &'static str,
    /// SMT speedup (Σ IPC_multi/IPC_single — Figure 2's metric).
    pub smt_speedup: f64,
    /// Weighted speedup (Σ IPC_multi/IPC_single; identical to
    /// [`MixResult::smt_speedup`] under the paper's definitions, kept as
    /// a named field so consumers see the standard metric name).
    pub weighted_speedup: f64,
    /// Harmonic mean of the per-core speedups (balance-sensitive
    /// throughput; 0.0 when any core fully starved).
    pub harmonic_speedup: f64,
    /// Unfairness (max slowdown / min slowdown — Figure 5's metric).
    pub unfairness: f64,
    /// Largest per-core slowdown (IPC_single/IPC_multi).
    pub max_slowdown: f64,
    /// Per-core IPC in the multiprogrammed run.
    pub ipc_multi: Vec<f64>,
    /// Per-core single-core reference IPC.
    pub ipc_single: Vec<f64>,
    /// Per-core mean read latency in cycles (Figure 4 right).
    pub read_latency: Vec<f64>,
    /// Mean read latency over all cores (Figure 4 left).
    pub mean_read_latency: f64,
    /// Mean request-queue occupancy at scheduling decisions.
    pub queue_occupancy_mean: f64,
    /// Mean candidate-set size per grant.
    pub grant_candidates_mean: f64,
    /// Per-channel grant breakdown (reads/writes/row-hits).
    pub channel_traffic: Vec<melreq_memctrl::ChannelTraffic>,
    /// Profiled ME values used to program the priority table.
    pub me: Vec<f64>,
    /// Whether the run aborted on the cycle safety net.
    pub timed_out: bool,
    /// Whether the run was cancelled mid-flight by a [`CancelToken`]
    /// (wall-clock deadline or explicit cancel), at an epoch boundary.
    pub cancelled: bool,
    /// Final cycle count of the multiprogrammed system, warm-up included.
    /// When [`MixResult::warmup_from_checkpoint`] is set, the warm-up
    /// portion was restored rather than simulated — host-throughput
    /// reporting should then count only [`MixResult::measured_cycles`].
    pub sim_cycles: Cycle,
    /// Cycles of the measured window alone (boundary to completion): the
    /// portion this run actually simulated when the warm-up came from a
    /// checkpoint.
    pub measured_cycles: Cycle,
    /// Host wall-clock of this policy's *measured window* alone
    /// (profiling, single-core reference runs, and warm-up excluded) —
    /// the portion attributable to this policy even when warm-up and
    /// policy runs execute on different worker threads.
    pub wall: std::time::Duration,
    /// Host wall-clock spent producing the warm-up boundary state this
    /// result consumed: simulation (or checkpoint-restore) time up to
    /// the snapshot. In a shared-warm-up group the warm-up runs once and
    /// its wall is reported on the run that consumed the warmed system
    /// directly; forked runs report zero here (their snapshot-restore
    /// cost is part of [`MixResult::wall`]).
    pub warm_wall: std::time::Duration,
    /// Whether the warm-up boundary state was restored from a checkpoint
    /// (persistent store hit or in-group snapshot fork) instead of being
    /// simulated by this run.
    pub warmup_from_checkpoint: bool,
}

/// The canonical machine configuration a `cores`-wide warm-up runs under.
fn canonical_config(cores: usize) -> SystemConfig {
    SystemConfig::paper(cores, CANONICAL_WARMUP_POLICY)
}

/// A freshly constructed canonical system for `mix` (evaluation-slice
/// streams, flat ME profile, canonical warm-up policy).
fn canonical_system(mix: &Mix, opts: &ExperimentOptions) -> System {
    let streams: Vec<Box<dyn InstrStream + Send>> = mix
        .apps()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            Box::new(a.build_stream(i, SliceKind::Evaluation(opts.eval_slice)))
                as Box<dyn InstrStream + Send>
        })
        .collect();
    let cores = mix.cores();
    let mut sys = System::new(canonical_config(cores), streams, &vec![1.0; cores]);
    sys.set_tick_exact(opts.tick_exact);
    sys
}

/// A canonical system for `mix` at the measurement boundary, ready to
/// receive the measured policy. Returns the system plus whether the
/// boundary state came from a checkpoint (`true`) or was simulated here
/// (`false`). With a store attached, a simulated boundary is persisted
/// unless the warm-up hit the cycle safety net (the subsequent
/// [`System::run_window`] then reports `timed_out` immediately) or
/// `warmup == 0` (nothing worth caching).
fn boundary_system(
    mix: &Mix,
    opts: &ExperimentOptions,
    store: Option<&CheckpointStore>,
    ctl: &RunControl,
) -> (System, bool) {
    let mut sys = canonical_system(mix, opts);
    ctl.arm(&mut sys);
    let key = store.map(|_| {
        CheckpointStore::warmup_key(
            &canonical_config(mix.cores()),
            mix.codes,
            opts.eval_slice,
            opts.warmup,
            opts.instructions,
        )
    });
    if opts.warmup > 0 {
        if let (Some(st), Some(key)) = (store, key) {
            if let Some(bytes) = st.load_warmup(key) {
                let restored = {
                    let _sp =
                        melreq_prof::span("snapshot.decode", || format!("warmup {}", mix.name));
                    sys.load_snapshot(&bytes).is_ok()
                };
                if restored {
                    return (sys, true);
                }
                // Checksummed but structurally incompatible (should be
                // unreachable given the versioned keys): re-simulate.
                sys = canonical_system(mix, opts);
                ctl.arm(&mut sys);
            }
        }
    }
    sys.prepare_window(opts.warmup, opts.instructions);
    let reached = {
        let _sp = melreq_prof::span("warmup", || mix.name.to_string());
        sys.run_to_boundary(ctl.limit(opts))
    };
    if reached && opts.warmup > 0 {
        if let (Some(st), Some(key)) = (store, key) {
            let _sp = melreq_prof::span("snapshot.encode", || format!("warmup {}", mix.name));
            st.store_warmup(key, &sys.snapshot());
        }
    }
    (sys, false)
}

/// Fold one measured-window outcome into a [`MixResult`].
#[allow(clippy::too_many_arguments)]
fn finish_result(
    mix: &Mix,
    name: &'static str,
    me: Vec<f64>,
    ipc_single: Vec<f64>,
    out: RunOutcome,
    sim_cycles: Cycle,
    wall: std::time::Duration,
    warm_wall: std::time::Duration,
    warmup_from_checkpoint: bool,
) -> MixResult {
    let fairness = FairnessReport::compute(&out.ipc, &ipc_single);
    MixResult {
        mix: *mix,
        policy: name,
        smt_speedup: fairness.smt_speedup,
        weighted_speedup: fairness.weighted_speedup,
        harmonic_speedup: fairness.harmonic_speedup,
        unfairness: fairness.unfairness,
        max_slowdown: fairness.max_slowdown,
        ipc_multi: out.ipc,
        ipc_single,
        read_latency: out.read_latency,
        mean_read_latency: out.mean_read_latency,
        queue_occupancy_mean: out.queue_occupancy_mean,
        grant_candidates_mean: out.grant_candidates_mean,
        channel_traffic: out.channel_traffic,
        me,
        timed_out: out.timed_out,
        cancelled: out.cancelled,
        sim_cycles,
        measured_cycles: out.cycles,
        wall,
        warm_wall,
        warmup_from_checkpoint,
    }
}

/// Run one Table 3 mix under one of the paper's policies.
pub fn run_mix(
    mix: &Mix,
    policy: &PolicyKind,
    opts: &ExperimentOptions,
    cache: &ProfileCache,
) -> MixResult {
    run_mix_with_store(mix, policy, opts, cache, None)
}

/// [`run_mix`] with an optional persistent checkpoint store: the warm-up
/// boundary is restored from the store when present, and persisted after
/// simulation otherwise.
pub fn run_mix_with_store(
    mix: &Mix,
    policy: &PolicyKind,
    opts: &ExperimentOptions,
    cache: &ProfileCache,
    store: Option<&CheckpointStore>,
) -> MixResult {
    let policy = policy.clone();
    run_mix_custom_with_store(
        mix,
        policy.name(),
        |_, _, _| unreachable!("paper policies are built by swap_policy"),
        Some(policy),
        opts,
        cache,
        store,
    )
}

/// Run one mix under an arbitrary policy built by `factory` (receives the
/// profiled ME values, core count and seed; returns the policy and its
/// read-first setting). This is the harness entry point for extension
/// policies such as [`melreq_memctrl::ext::FairQueueing`].
///
/// `kind` threads the original [`PolicyKind`] through when there is one,
/// so `PolicyKind::MeLreqOnline`'s system-side estimator still engages;
/// `factory` is only consulted when `kind` is `None`.
pub fn run_mix_custom(
    mix: &Mix,
    name: &'static str,
    factory: impl Fn(&[f64], usize, u64) -> (Box<dyn melreq_memctrl::SchedulerPolicy>, bool),
    kind: Option<PolicyKind>,
    opts: &ExperimentOptions,
    cache: &ProfileCache,
) -> MixResult {
    run_mix_custom_with_store(mix, name, factory, kind, opts, cache, None)
}

/// [`run_mix_custom`] with an optional persistent checkpoint store.
pub fn run_mix_custom_with_store(
    mix: &Mix,
    name: &'static str,
    factory: impl Fn(&[f64], usize, u64) -> (Box<dyn melreq_memctrl::SchedulerPolicy>, bool),
    kind: Option<PolicyKind>,
    opts: &ExperimentOptions,
    cache: &ProfileCache,
    store: Option<&CheckpointStore>,
) -> MixResult {
    run_mix_custom_ctl(mix, name, factory, kind, opts, cache, store, &RunControl::default())
}

/// The fully general single-mix entry point: [`run_mix_custom_with_store`]
/// plus a [`RunControl`] (cancellation token, simulated-cycle budget).
/// Every other `run_mix*` variant funnels here.
#[allow(clippy::too_many_arguments)]
pub fn run_mix_custom_ctl(
    mix: &Mix,
    name: &'static str,
    factory: impl Fn(&[f64], usize, u64) -> (Box<dyn melreq_memctrl::SchedulerPolicy>, bool),
    kind: Option<PolicyKind>,
    opts: &ExperimentOptions,
    cache: &ProfileCache,
    store: Option<&CheckpointStore>,
    ctl: &RunControl,
) -> MixResult {
    let cores = mix.cores();
    let me: Vec<f64> = (0..cores).map(|i| cache.profile(mix, i, opts).me).collect();
    let ipc_single: Vec<f64> = (0..cores).map(|i| cache.ipc_single(mix, i, opts)).collect();

    // melreq-allow(D02): wall-clock elapsed time for the report only; no simulated state derives from it
    let warm_started = std::time::Instant::now();
    let (mut sys, from_checkpoint) = boundary_system(mix, opts, store, ctl);
    let warm_wall = warm_started.elapsed();
    // melreq-allow(D02): wall-clock elapsed time for the report only; no simulated state derives from it
    let started = std::time::Instant::now();
    match &kind {
        Some(k) => sys.swap_policy(k, &me),
        None => {
            let (policy, read_first) = factory(&me, cores, canonical_config(cores).seed);
            sys.swap_policy_boxed(policy, read_first);
        }
    }
    let out = {
        let _sp = melreq_prof::span("policy", || format!("{name} {}", mix.name));
        sys.run_window(ctl.limit(opts))
    };
    let wall = started.elapsed();
    finish_result(mix, name, me, ipc_single, out, sys.now(), wall, warm_wall, from_checkpoint)
}

/// Run one mix under one policy with the independent protocol/invariant
/// checker attached ([`melreq_audit`]): every DRAM grant is re-validated
/// against the DDR2 timing constraints and every scheduling decision
/// against the policy's published invariants, while a running hash of the
/// event stream fingerprints the run for determinism comparisons.
///
/// Audited runs never restore checkpoints: the oracle's device replicas
/// arm at attach time, so they must observe the machine from reset. The
/// run still warms up under the canonical policy and swaps at the
/// boundary — the swap is audit-visible (a repeat `CtrlConfig` plus a
/// `ProfileUpdate`) — so a clean audited run certifies the exact command
/// stream that checkpoint-forked runs of the same (mix, policy, options)
/// replay, and its [`MixResult`] must match theirs bit for bit.
///
/// Returns the normal [`MixResult`] plus the [`melreq_audit::AuditReport`]
/// (violation counts, samples, and the stream hash).
pub fn run_mix_audited(
    mix: &Mix,
    policy: &PolicyKind,
    opts: &ExperimentOptions,
    cache: &ProfileCache,
) -> (MixResult, melreq_audit::AuditReport) {
    run_mix_audited_ctl(mix, policy, opts, cache, &RunControl::default())
}

/// [`run_mix_audited`] with a [`RunControl`] (cancellation token,
/// simulated-cycle budget).
pub fn run_mix_audited_ctl(
    mix: &Mix,
    policy: &PolicyKind,
    opts: &ExperimentOptions,
    cache: &ProfileCache,
    ctl: &RunControl,
) -> (MixResult, melreq_audit::AuditReport) {
    let cores = mix.cores();
    let me: Vec<f64> = (0..cores).map(|i| cache.profile(mix, i, opts).me).collect();
    let ipc_single: Vec<f64> = (0..cores).map(|i| cache.ipc_single(mix, i, opts)).collect();
    let mut sys = canonical_system(mix, opts);
    ctl.arm(&mut sys);
    let (handle, auditor) =
        melreq_audit::Auditor::shared(melreq_audit::AuditorConfig::default(), true);
    sys.attach_audit(handle);
    // melreq-allow(D02): wall-clock elapsed time for the report only; no simulated state derives from it
    let warm_started = std::time::Instant::now();
    sys.prepare_window(opts.warmup, opts.instructions);
    {
        let _sp = melreq_prof::span("warmup", || mix.name.to_string());
        let _ = sys.run_to_boundary(ctl.limit(opts));
    }
    let warm_wall = warm_started.elapsed();
    // melreq-allow(D02): wall-clock elapsed time for the report only; no simulated state derives from it
    let started = std::time::Instant::now();
    sys.swap_policy(policy, &me);
    let out = {
        let _sp = melreq_prof::span("policy", || format!("{} {}", policy.name(), mix.name));
        sys.run_window(ctl.limit(opts))
    };
    let wall = started.elapsed();
    let report = auditor.lock().expect("auditor poisoned").report();
    let result =
        finish_result(mix, policy.name(), me, ipc_single, out, sys.now(), wall, warm_wall, false);
    (result, report)
}

/// Observability knobs of an observed run ([`run_mix_observed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserveOptions {
    /// Trace-ring capacity in events (drop-oldest beyond it).
    pub ring_capacity: usize,
    /// Epoch of the time-series sampler in cycles; `None` disables it.
    pub sample_epoch: Option<Cycle>,
}

impl Default for ObserveOptions {
    fn default() -> Self {
        ObserveOptions { ring_capacity: ObsConfig::default().ring_capacity, sample_epoch: None }
    }
}

/// Run one mix under one policy with the [`melreq_obs`] collector
/// attached: the audit tap feeds the trace ring and decision-provenance
/// classifier, and (when `observe.sample_epoch` is set) the system
/// pushes one epoch row per boundary into the collector's time series.
///
/// Observed runs simulate fresh (no checkpoint restore), exactly like
/// [`run_mix_audited`], and the observers are inert — the returned
/// [`MixResult`] is bit-identical to [`run_mix`] on the same inputs,
/// which the determinism tests pin for every paper policy.
pub fn run_mix_observed(
    mix: &Mix,
    policy: &PolicyKind,
    opts: &ExperimentOptions,
    observe: &ObserveOptions,
    cache: &ProfileCache,
) -> (MixResult, Arc<Mutex<Collector>>) {
    let (result, _, collector) = observed_run(mix, policy, opts, observe, cache, false);
    (result, collector)
}

/// [`run_mix_observed`] with the protocol/invariant auditor listening on
/// the same tap (one emission, fanned out to both sinks): returns the
/// result, the audit report, and the collector.
pub fn run_mix_audited_observed(
    mix: &Mix,
    policy: &PolicyKind,
    opts: &ExperimentOptions,
    observe: &ObserveOptions,
    cache: &ProfileCache,
) -> (MixResult, melreq_audit::AuditReport, Arc<Mutex<Collector>>) {
    let (result, report, collector) = observed_run(mix, policy, opts, observe, cache, true);
    (result, report.expect("audited run produces a report"), collector)
}

fn observed_run(
    mix: &Mix,
    policy: &PolicyKind,
    opts: &ExperimentOptions,
    observe: &ObserveOptions,
    cache: &ProfileCache,
    audited: bool,
) -> (MixResult, Option<melreq_audit::AuditReport>, Arc<Mutex<Collector>>) {
    let cores = mix.cores();
    let me: Vec<f64> = (0..cores).map(|i| cache.profile(mix, i, opts).me).collect();
    let ipc_single: Vec<f64> = (0..cores).map(|i| cache.ipc_single(mix, i, opts)).collect();
    let mut sys = canonical_system(mix, opts);

    let collector =
        Arc::new(Mutex::new(Collector::new(ObsConfig { ring_capacity: observe.ring_capacity })));
    let obs_sink: Arc<Mutex<dyn melreq_audit::AuditSink>> = collector.clone();
    let auditor = audited.then(|| {
        Arc::new(Mutex::new(melreq_audit::Auditor::new(melreq_audit::AuditorConfig::default())))
    });
    let handle = match &auditor {
        Some(a) => {
            let audit_sink: Arc<Mutex<dyn melreq_audit::AuditSink>> = a.clone();
            Fanout::handle(vec![audit_sink, obs_sink], true)
        }
        None => melreq_audit::AuditHandle::from_shared(obs_sink, true),
    };
    sys.attach_audit(handle);
    if let Some(epoch) = observe.sample_epoch {
        sys.attach_sampler(collector.clone(), epoch);
    }

    // melreq-allow(D02): wall-clock elapsed time for the report only; no simulated state derives from it
    let warm_started = std::time::Instant::now();
    sys.prepare_window(opts.warmup, opts.instructions);
    {
        let _sp = melreq_prof::span("warmup", || mix.name.to_string());
        let _ = sys.run_to_boundary(opts.max_cycles());
    }
    let warm_wall = warm_started.elapsed();
    // melreq-allow(D02): wall-clock elapsed time for the report only; no simulated state derives from it
    let started = std::time::Instant::now();
    sys.swap_policy(policy, &me);
    let out = {
        let _sp = melreq_prof::span("policy", || format!("{} {}", policy.name(), mix.name));
        sys.run_window(opts.max_cycles())
    };
    let wall = started.elapsed();
    collector.lock().expect("obs collector poisoned").finish();
    let report = auditor.map(|a| a.lock().expect("auditor poisoned").report());
    let result =
        finish_result(mix, policy.name(), me, ipc_single, out, sys.now(), wall, warm_wall, false);
    (result, report, collector)
}

/// Results of one mix across several policies, with the first policy
/// treated as the baseline.
#[derive(Debug, Clone)]
pub struct PolicyComparison {
    /// One result per policy, in input order.
    pub results: Vec<MixResult>,
}

impl PolicyComparison {
    /// Speedup of policy `i` over the baseline (policy 0), as a ratio.
    pub fn speedup_over_baseline(&self, i: usize) -> f64 {
        self.results[i].smt_speedup / self.results[0].smt_speedup
    }
}

/// Run one mix under every policy in `policies` (policy 0 = baseline).
pub fn compare_policies(
    mix: &Mix,
    policies: &[PolicyKind],
    opts: &ExperimentOptions,
    cache: &ProfileCache,
) -> PolicyComparison {
    PolicyComparison { results: policies.iter().map(|p| run_mix(mix, p, opts, cache)).collect() }
}

/// Run one mix under every policy in `policies` with a single shared
/// warm-up: the canonical boundary state is simulated (or loaded from
/// `store`) once, snapshotted, and forked into one fresh system per
/// policy. The first policy consumes the warmed system directly; every
/// other policy restores the snapshot bytes — bit-exactly the same state,
/// as [`System::load_snapshot`] guarantees and the harness tests enforce.
pub fn run_mix_group(
    mix: &Mix,
    policies: &[PolicyKind],
    opts: &ExperimentOptions,
    cache: &ProfileCache,
    store: Option<&CheckpointStore>,
) -> Vec<MixResult> {
    run_mix_group_ctl(mix, policies, opts, cache, store, &RunControl::default())
}

/// [`run_mix_group`] with a [`RunControl`] (cancellation token,
/// simulated-cycle budget, worker-thread count) armed on the warm-up and
/// every forked run. The forked policy runs execute concurrently on the
/// pool; results land in policy-indexed slots so the output order (and
/// every byte of every result) is independent of the interleaving.
pub fn run_mix_group_ctl(
    mix: &Mix,
    policies: &[PolicyKind],
    opts: &ExperimentOptions,
    cache: &ProfileCache,
    store: Option<&CheckpointStore>,
    ctl: &RunControl,
) -> Vec<MixResult> {
    let stages = [SweepStage { mixes: vec![*mix], policies: policies.to_vec() }];
    run_sweep_stages(&stages, opts, cache, store, ctl).pop().expect("one stage submitted")
}

/// Worker-thread count for the pooled entry points: an explicit request
/// (`--threads` via [`RunControl::threads`]) wins, then the
/// `MELREQ_THREADS` environment variable, then the host's available
/// parallelism (falling back to 4 when that is unknowable) — capped at
/// the number of schedulable jobs.
pub fn worker_count(jobs: usize, explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(|| {
            // melreq-allow(D02): --threads / MELREQ_THREADS pick the worker-thread count only; the slot-indexed merge keeps results bit-identical at any parallelism
            std::env::var("MELREQ_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, std::num::NonZero::get))
        .min(jobs.max(1))
}

/// Run the full (mix × policy) grid in parallel across OS threads,
/// returning results in `(mix-major, policy-minor)` order.
///
/// The schedulable units are job-DAG nodes (see [`run_sweep_stages`]):
/// one warm-up job per mix that publishes its boundary snapshot, then
/// one forked policy-run job per (mix, policy) — a five-policy sweep
/// pays one warm-up per mix and runs the five windows concurrently.
/// Warm-up jobs are prioritised widest-mix first (cores descending,
/// input order within a width) so the expensive 8-core warm-ups start
/// before the cheap 2-core ones and the schedule's tail stays short.
/// Thread count comes from [`worker_count`] (`MELREQ_THREADS` overrides
/// host parallelism).
pub fn run_grid(
    mixes: &[Mix],
    policies: &[PolicyKind],
    opts: &ExperimentOptions,
    cache: &ProfileCache,
) -> Vec<MixResult> {
    run_grid_with_store(mixes, policies, opts, cache, None)
}

/// [`run_grid`] with an optional persistent checkpoint store shared by
/// every group.
pub fn run_grid_with_store(
    mixes: &[Mix],
    policies: &[PolicyKind],
    opts: &ExperimentOptions,
    cache: &ProfileCache,
    store: Option<&CheckpointStore>,
) -> Vec<MixResult> {
    run_grid_ctl(mixes, policies, opts, cache, store, &RunControl::default())
}

/// [`run_grid_with_store`] with a [`RunControl`] (cancellation token,
/// cycle budget, worker-thread count).
pub fn run_grid_ctl(
    mixes: &[Mix],
    policies: &[PolicyKind],
    opts: &ExperimentOptions,
    cache: &ProfileCache,
    store: Option<&CheckpointStore>,
    ctl: &RunControl,
) -> Vec<MixResult> {
    let stages = [SweepStage { mixes: mixes.to_vec(), policies: policies.to_vec() }];
    run_sweep_stages(&stages, opts, cache, store, ctl).pop().expect("one stage submitted")
}

/// One grid stage of a sweep: a set of mixes, each run under every
/// policy of the stage. [`run_sweep_stages`] schedules all stages into
/// one global pool.
#[derive(Debug, Clone)]
pub struct SweepStage {
    /// The stage's mixes, in output order.
    pub mixes: Vec<Mix>,
    /// The policies each mix runs, in output order.
    pub policies: Vec<PolicyKind>,
}

/// One (stage, mix-position) pair that wants its stage's full policy
/// set run from a shared warm-up boundary.
struct GroupSlots<'a> {
    policies: &'a [PolicyKind],
    /// `policies.len()` result slots, policy-indexed.
    slots: &'a [Mutex<Option<MixResult>>],
}

/// Run several (mixes × policies) stages through **one global
/// work-stealing pool** (no per-stage barrier), returning each stage's
/// results in `(mix-major, policy-minor)` order.
///
/// The job DAG has one warm-up job per *distinct* mix across all stages
/// — warm-ups shared by several stages (e.g. a mix that appears in both
/// a figure stage and an ablation stage) run once — and one forked
/// policy-run job per (stage, mix, policy). The warm-up job profiles
/// the mix's applications, simulates (or restores) the canonical
/// boundary, publishes the snapshot bytes, forks every dependent policy
/// run, and finally runs the first policy itself on the warmed system.
/// Warm-up jobs enter the injector with the mix's core count as the
/// priority (longest critical path first); forked runs go to the
/// forking worker's local deque and are stolen by idle siblings.
///
/// Determinism: every result lands in a pre-indexed slot and every run
/// is a pure function of the boundary snapshot, so the returned vectors
/// are bit-identical at any worker count. `warmup_from_checkpoint` is
/// DAG-structural, not timing-dependent: the first (stage, policy) run
/// of a distinct mix inherits the warm-up's provenance flag, every
/// other run forked from the published snapshot reports `true`.
pub fn run_sweep_stages(
    stages: &[SweepStage],
    opts: &ExperimentOptions,
    cache: &ProfileCache,
    store: Option<&CheckpointStore>,
    ctl: &RunControl,
) -> Vec<Vec<MixResult>> {
    let stage_runs: Vec<usize> = stages.iter().map(|s| s.mixes.len() * s.policies.len()).collect();
    let total_runs: usize = stage_runs.iter().sum();
    let slots: Vec<Mutex<Option<MixResult>>> = (0..total_runs).map(|_| Mutex::new(None)).collect();

    // Group the (stage, mix-position) consumers by distinct mix, in
    // first-appearance order: one warm-up job per entry.
    let mut groups: Vec<(Mix, Vec<GroupSlots<'_>>)> = Vec::new();
    let mut offset = 0;
    for (si, stage) in stages.iter().enumerate() {
        for (mi, mix) in stage.mixes.iter().enumerate() {
            if stage.policies.is_empty() {
                continue;
            }
            let base = offset + mi * stage.policies.len();
            let consumer = GroupSlots {
                policies: &stage.policies,
                slots: &slots[base..base + stage.policies.len()],
            };
            match groups.iter_mut().find(|(m, _)| m.name == mix.name) {
                Some((_, consumers)) => consumers.push(consumer),
                None => groups.push((*mix, vec![consumer])),
            }
        }
        offset += stage_runs[si];
    }

    let workers = worker_count(total_runs, ctl.threads);
    melreq_exec::run_scope(workers, |scope| {
        for (mix, consumers) in &groups {
            let mix = *mix;
            scope.submit(mix.cores() as u64, move |ctx| {
                warm_up_and_fork(&ctx, mix, consumers, opts, cache, store, ctl);
            });
        }
    });

    let mut out = Vec::with_capacity(stages.len());
    let mut taken = slots.into_iter().map(|s| s.into_inner().expect("result slot poisoned"));
    for runs in stage_runs {
        out.push((0..runs).map(|_| taken.next().flatten().expect("job not run")).collect());
    }
    out
}

/// The warm-up job of one distinct mix: profile, reach the canonical
/// boundary, publish the snapshot, fork every dependent policy run, and
/// run the first policy inline on the warmed system.
fn warm_up_and_fork<'env>(
    ctx: &melreq_exec::Ctx<'_, 'env>,
    mix: Mix,
    consumers: &'env [GroupSlots<'env>],
    opts: &'env ExperimentOptions,
    cache: &'env ProfileCache,
    store: Option<&'env CheckpointStore>,
    ctl: &'env RunControl,
) {
    let cores = mix.cores();
    let me: Vec<f64> = (0..cores).map(|i| cache.profile(&mix, i, opts).me).collect();
    let ipc_single: Vec<f64> = (0..cores).map(|i| cache.ipc_single(&mix, i, opts)).collect();

    // melreq-allow(D02): wall-clock elapsed time for the report only; no simulated state derives from it
    let warm_started = std::time::Instant::now();
    let (base, from_checkpoint) = boundary_system(&mix, opts, store, ctl);
    let total_runs: usize = consumers.iter().map(|c| c.policies.len()).sum();
    let snap = (total_runs > 1).then(|| {
        let _sp = melreq_prof::span("snapshot.encode", || format!("fork {}", mix.name));
        Arc::new(base.snapshot())
    });
    let warm_wall = warm_started.elapsed();

    // Fork every run but the first, then run the first on the warmed
    // system while the forks are stolen by idle workers.
    let mut first: Option<(&'env Mutex<Option<MixResult>>, &'env PolicyKind)> = None;
    for consumer in consumers {
        for (slot, kind) in consumer.slots.iter().zip(consumer.policies) {
            if first.is_none() {
                first = Some((slot, kind));
                continue;
            }
            let snap = Arc::clone(snap.as_ref().expect("snapshot published for >1 run"));
            let me = me.clone();
            let ipc_single = ipc_single.clone();
            ctx.fork(move |_ctx| {
                // melreq-allow(D02): wall-clock elapsed time for the report only; no simulated state derives from it
                let started = std::time::Instant::now();
                let mut sys = canonical_system(&mix, opts);
                {
                    let _sp = melreq_prof::span("snapshot.decode", || format!("fork {}", mix.name));
                    sys.load_snapshot(&snap)
                        .expect("boundary snapshot must restore into an identical fresh system");
                }
                ctl.arm(&mut sys);
                sys.swap_policy(kind, &me);
                let out = {
                    let _sp =
                        melreq_prof::span("policy", || format!("{} {}", kind.name(), mix.name));
                    sys.run_window(ctl.limit(opts))
                };
                let wall = started.elapsed();
                *slot.lock().expect("result slot poisoned") = Some(finish_result(
                    &mix,
                    kind.name(),
                    me,
                    ipc_single,
                    out,
                    sys.now(),
                    wall,
                    std::time::Duration::ZERO,
                    true,
                ));
            });
        }
    }
    let (slot, kind) = first.expect("a group has at least one policy run");
    // melreq-allow(D02): wall-clock elapsed time for the report only; no simulated state derives from it
    let started = std::time::Instant::now();
    let mut sys = base;
    sys.swap_policy(kind, &me);
    let out = {
        let _sp = melreq_prof::span("policy", || format!("{} {}", kind.name(), mix.name));
        sys.run_window(ctl.limit(opts))
    };
    let wall = started.elapsed();
    *slot.lock().expect("result slot poisoned") = Some(finish_result(
        &mix,
        kind.name(),
        me,
        ipc_single,
        out,
        sys.now(),
        wall,
        warm_wall,
        from_checkpoint,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use melreq_workloads::mix_by_name;

    #[test]
    fn run_mix_produces_consistent_result() {
        let cache = ProfileCache::new();
        let opts = ExperimentOptions::quick();
        let mix = mix_by_name("2MEM-1");
        let r = run_mix(&mix, &PolicyKind::HfRf, &opts, &cache);
        assert!(!r.timed_out);
        assert_eq!(r.ipc_multi.len(), 2);
        assert!(r.smt_speedup > 0.5 && r.smt_speedup <= 2.0 + 1e-9, "speedup {}", r.smt_speedup);
        assert!(r.unfairness >= 1.0);
        assert!(r.mean_read_latency > 100.0, "latency {}", r.mean_read_latency);
        assert!(
            r.measured_cycles > 0 && r.measured_cycles < r.sim_cycles,
            "measured window ({}) must be a proper suffix of the run ({})",
            r.measured_cycles,
            r.sim_cycles
        );
    }

    #[test]
    fn cache_avoids_reprofiling() {
        let cache = ProfileCache::new();
        let opts = ExperimentOptions::quick();
        let mix = mix_by_name("2MEM-1");
        let a = cache.profile(&mix, 0, &opts);
        let b = cache.profile(&mix, 0, &opts);
        assert_eq!(a.me, b.me);
    }

    #[test]
    fn compare_policies_baseline_ratio_is_one() {
        let cache = ProfileCache::new();
        let opts = ExperimentOptions::quick();
        let mix = mix_by_name("2MEM-4");
        let cmp = compare_policies(&mix, &[PolicyKind::HfRf, PolicyKind::Lreq], &opts, &cache);
        assert!((cmp.speedup_over_baseline(0) - 1.0).abs() < 1e-12);
        assert!(cmp.speedup_over_baseline(1) > 0.5);
    }

    #[test]
    fn audited_run_is_clean_and_reproducible() {
        let cache = ProfileCache::new();
        let opts = ExperimentOptions::quick();
        let mix = mix_by_name("2MEM-1");
        let (ra, a) = run_mix_audited(&mix, &PolicyKind::MeLreq, &opts, &cache);
        let (rb, b) = run_mix_audited(&mix, &PolicyKind::MeLreq, &opts, &cache);
        assert!(a.is_clean(), "audit must pass:\n{}", a.render());
        assert!(a.events > 0, "instrumentation must emit events");
        assert_eq!(a.stream_hash, b.stream_hash, "same seed must replay identically");
        assert_eq!(ra.smt_speedup, rb.smt_speedup);
    }

    #[test]
    fn forked_policies_match_fresh_runs_bit_exactly() {
        let cache = ProfileCache::new();
        let opts = ExperimentOptions::quick();
        let mix = mix_by_name("2MEM-1");
        let policies = [PolicyKind::HfRf, PolicyKind::MeLreq, PolicyKind::Lreq];
        let group = run_mix_group(&mix, &policies, &opts, &cache, None);
        assert!(!group[0].warmup_from_checkpoint, "first policy owns the warm-up");
        assert!(group[1].warmup_from_checkpoint && group[2].warmup_from_checkpoint);
        for (p, forked) in policies.iter().zip(&group) {
            let fresh = run_mix(&mix, p, &opts, &cache);
            assert_eq!(forked.ipc_multi, fresh.ipc_multi, "{}", p.name());
            assert_eq!(forked.read_latency, fresh.read_latency, "{}", p.name());
            assert_eq!(forked.sim_cycles, fresh.sim_cycles, "{}", p.name());
            assert_eq!(forked.smt_speedup, fresh.smt_speedup, "{}", p.name());
        }
    }

    #[test]
    fn audited_run_matches_unaudited_run_bit_exactly() {
        let cache = ProfileCache::new();
        let opts = ExperimentOptions::quick();
        let mix = mix_by_name("2MIX-1");
        let (ra, report) = run_mix_audited(&mix, &PolicyKind::MeLreq, &opts, &cache);
        assert!(report.is_clean(), "swap-through-warmup must audit clean:\n{}", report.render());
        let rb = run_mix(&mix, &PolicyKind::MeLreq, &opts, &cache);
        assert_eq!(ra.ipc_multi, rb.ipc_multi);
        assert_eq!(ra.sim_cycles, rb.sim_cycles);
        assert_eq!(ra.smt_speedup, rb.smt_speedup);
    }

    #[test]
    fn warm_store_skips_warmup_and_profiles() {
        use crate::store::CheckpointStore;
        use std::sync::Arc;
        let dir =
            std::env::temp_dir().join(format!("melreq-exp-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ExperimentOptions::quick();
        let mix = mix_by_name("2MEM-1");

        let store = Arc::new(CheckpointStore::open(&dir).expect("store"));
        let cache = ProfileCache::with_store(store.clone());
        let cold = run_mix_with_store(&mix, &PolicyKind::MeLreq, &opts, &cache, Some(&store));
        assert!(!cold.warmup_from_checkpoint);
        let s = store.stats();
        assert_eq!(s.warmup_hits, 0);
        assert!(s.profile_hits == 0 && s.profile_misses > 0);

        // Second invocation: fresh in-memory state, same directory.
        let store = Arc::new(CheckpointStore::open(&dir).expect("store"));
        let cache = ProfileCache::with_store(store.clone());
        let warm = run_mix_with_store(&mix, &PolicyKind::MeLreq, &opts, &cache, Some(&store));
        assert!(warm.warmup_from_checkpoint, "warm store must restore the boundary");
        let s = store.stats();
        assert_eq!(s.warmup_misses, 0, "no warm-up simulated on a warm store");
        assert_eq!(s.profile_misses, 0, "no profiling simulated on a warm store");
        assert!(s.warmup_hits == 1 && s.profile_hits > 0);
        assert_eq!(cold.ipc_multi, warm.ipc_multi);
        assert_eq!(cold.sim_cycles, warm.sim_cycles);
        assert_eq!(cold.smt_speedup, warm.smt_speedup);
        assert_eq!(cold.me, warm.me);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid_matches_serial_order() {
        let cache = ProfileCache::new();
        let opts = ExperimentOptions::quick();
        let mixes = [mix_by_name("2MEM-1"), mix_by_name("2MEM-2")];
        let policies = [PolicyKind::HfRf, PolicyKind::MeLreq];
        let grid = run_grid(&mixes, &policies, &opts, &cache);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].mix.name, "2MEM-1");
        assert_eq!(grid[0].policy, "HF-RF");
        assert_eq!(grid[1].policy, "ME-LREQ");
        assert_eq!(grid[2].mix.name, "2MEM-2");
        // Parallel result equals a serial re-run (determinism end-to-end).
        let serial = run_mix(&mixes[1], &policies[1], &opts, &cache);
        assert_eq!(serial.smt_speedup, grid[3].smt_speedup);
    }
}
