//! The persistent checkpoint/profile store.
//!
//! A content-addressed directory of warmed-up system snapshots
//! ([`crate::system::System::snapshot`] at the measurement boundary) and
//! single-core [`AppProfile`]s, so repeated sweep invocations skip the
//! warm-up and profiling simulation entirely.
//!
//! # Addressing
//!
//! Every record is keyed by an FNV-1a hash over a canonical encoding of
//! *everything that determines the simulation it caches*:
//!
//! * the snapshot schema version ([`melreq_snap::SCHEMA_VERSION`] — any
//!   codec change invalidates the whole store);
//! * the full [`SystemConfig`] (via its `Debug` rendering, which covers
//!   every structural/timing field — change a cache size or a DDR2
//!   parameter and the key changes);
//! * the workload identity: application codes in core order and the
//!   evaluation-slice index (these seed the synthetic streams);
//! * the window: warm-up and target instruction counts (both are armed
//!   before the boundary and serialized inside the snapshot).
//!
//! Warm-up always runs under the canonical policy
//! ([`crate::experiment::CANONICAL_WARMUP_POLICY`], which ignores the
//! profiled ME values), so warm-up checkpoints are *policy- and
//! ME-independent*: one checkpoint serves all measured policies of a
//! (mix, window) group. The kernel mode (`tick_exact`) is likewise
//! excluded — both kernels produce bit-identical machine states.
//!
//! Records are self-validating [`melreq_snap::seal`] containers; a file
//! that fails its checksum (torn write, stale schema) is deleted and
//! treated as a miss. Writes go through a process-unique temporary file
//! plus `rename`, so concurrent invocations sharing a store directory
//! never observe partial records.

use crate::config::SystemConfig;
use crate::profile::AppProfile;
use melreq_memctrl::policy::PolicyKind;
use melreq_workloads::{spec2000, SliceKind};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Hit/miss counters of one [`CheckpointStore`], split by record kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Warm-up checkpoints served from disk.
    pub warmup_hits: u64,
    /// Warm-up checkpoints that had to be simulated.
    pub warmup_misses: u64,
    /// Application profiles served from disk.
    pub profile_hits: u64,
    /// Application profiles that had to be simulated.
    pub profile_misses: u64,
}

impl StoreStats {
    /// Overall hit rate across both record kinds (0 when nothing was
    /// looked up).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.warmup_hits + self.profile_hits;
        let total = hits + self.warmup_misses + self.profile_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// A content-addressed on-disk store of warm-up checkpoints and
/// application profiles (see the module docs for the key schema).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    warmup_hits: AtomicU64,
    warmup_misses: AtomicU64,
    profile_hits: AtomicU64,
    profile_misses: AtomicU64,
}

impl CheckpointStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            warmup_hits: AtomicU64::new(0),
            warmup_misses: AtomicU64::new(0),
            profile_hits: AtomicU64::new(0),
            profile_misses: AtomicU64::new(0),
        })
    }

    /// The store directory an invocation should use: the `MELREQ_STORE`
    /// environment variable when set, else `.melreq-store` under the
    /// current directory.
    pub fn default_dir() -> PathBuf {
        // melreq-allow(D02): MELREQ_STORE only picks where checkpoints live; content-addressed, never changes results
        std::env::var_os("MELREQ_STORE")
            .map_or_else(|| PathBuf::from(".melreq-store"), PathBuf::from)
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Key of the warm-up checkpoint for a mix run: `cfg` must be the
    /// *canonical-policy* configuration the warm-up executes under.
    pub fn warmup_key(
        cfg: &SystemConfig,
        codes: &str,
        eval_slice: u32,
        warmup: u64,
        instructions: u64,
    ) -> u64 {
        melreq_snap::keyed(
            "warmup",
            &format!("{cfg:?}|{codes}|{eval_slice}|{warmup}|{instructions}"),
        )
    }

    /// Key of a single-core profiling run's [`AppProfile`]. The paper
    /// machine's single-core configuration is folded in so profiles are
    /// invalidated when any machine parameter changes.
    pub fn profile_key(code: char, slice: SliceKind, instructions: u64) -> u64 {
        let cfg = SystemConfig::paper(1, PolicyKind::HfRf);
        melreq_snap::keyed("profile", &format!("{cfg:?}|{code}|{slice:?}|{instructions}"))
    }

    fn path(&self, kind: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{kind}-{key:016x}.bin"))
    }

    /// Read and checksum-validate one record; corrupt or stale files are
    /// removed and reported as a miss.
    fn read_valid(&self, kind: &str, key: u64) -> Option<Vec<u8>> {
        let path = self.path(kind, key);
        let bytes = std::fs::read(&path).ok()?;
        if melreq_snap::open(&bytes).is_err() {
            let _ = std::fs::remove_file(&path);
            return None;
        }
        Some(bytes)
    }

    /// Atomically publish one record (temp file + rename).
    fn write_atomic(&self, kind: &str, key: u64, bytes: &[u8]) {
        let tmp = self.dir.join(format!(".tmp-{}-{kind}-{key:016x}", std::process::id()));
        if std::fs::write(&tmp, bytes).is_ok()
            && std::fs::rename(&tmp, self.path(kind, key)).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Fetch a warm-up checkpoint (a sealed [`System::snapshot`]
    /// container ready for [`System::load_snapshot`]).
    ///
    /// [`System::snapshot`]: crate::system::System::snapshot
    /// [`System::load_snapshot`]: crate::system::System::load_snapshot
    pub fn load_warmup(&self, key: u64) -> Option<Vec<u8>> {
        let r = self.read_valid("warmup", key);
        let ctr = if r.is_some() { &self.warmup_hits } else { &self.warmup_misses };
        ctr.fetch_add(1, Ordering::Relaxed);
        r
    }

    /// Persist a warm-up checkpoint.
    pub fn store_warmup(&self, key: u64, snapshot: &[u8]) {
        self.write_atomic("warmup", key, snapshot);
    }

    /// Fetch an application profile.
    pub fn load_profile(&self, key: u64) -> Option<AppProfile> {
        let r = self.read_valid("profile", key).and_then(|bytes| {
            let payload = melreq_snap::open(&bytes).ok()?;
            let mut dec = melreq_snap::Dec::new(payload);
            let code = char::from_u32(dec.u32().ok()?)?;
            let ipc = dec.f64().ok()?;
            let bw_gbs = dec.f64().ok()?;
            let me = dec.f64().ok()?;
            if !dec.is_exhausted() {
                return None;
            }
            // `name` is a &'static str; recover it from the roster rather
            // than storing it. An unknown code means a foreign record —
            // treat it as a miss.
            let name = spec2000().into_iter().find(|a| a.code == code)?.name;
            Some(AppProfile { name, code, ipc, bw_gbs, me })
        });
        let ctr = if r.is_some() { &self.profile_hits } else { &self.profile_misses };
        ctr.fetch_add(1, Ordering::Relaxed);
        r
    }

    /// Persist an application profile.
    pub fn store_profile(&self, key: u64, p: &AppProfile) {
        let mut enc = melreq_snap::Enc::new();
        enc.u32(p.code as u32);
        enc.f64(p.ipc);
        enc.f64(p.bw_gbs);
        enc.f64(p.me);
        self.write_atomic("profile", key, &melreq_snap::seal(&enc.into_bytes()));
    }

    /// Snapshot the hit/miss counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            warmup_hits: self.warmup_hits.load(Ordering::Relaxed),
            warmup_misses: self.warmup_misses.load(Ordering::Relaxed),
            profile_hits: self.profile_hits.load(Ordering::Relaxed),
            profile_misses: self.profile_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("melreq-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).expect("store dir")
    }

    #[test]
    fn warmup_roundtrip_and_counters() {
        let s = tmp_store("warm");
        let key = 0xfeed;
        assert!(s.load_warmup(key).is_none());
        let payload = melreq_snap::seal(b"machine state");
        s.store_warmup(key, &payload);
        assert_eq!(s.load_warmup(key).as_deref(), Some(payload.as_slice()));
        let st = s.stats();
        assert_eq!((st.warmup_hits, st.warmup_misses), (1, 1));
        assert!((st.hit_rate() - 0.5).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(s.dir());
    }

    #[test]
    fn profile_roundtrip_restores_name() {
        let s = tmp_store("prof");
        let p = AppProfile { name: "swim", code: 'c', ipc: 0.5, bw_gbs: 9.25, me: 0.054 };
        let key = CheckpointStore::profile_key('c', SliceKind::Profiling, 1000);
        s.store_profile(key, &p);
        let q = s.load_profile(key).expect("stored profile");
        assert_eq!(q.name, "swim");
        assert_eq!(q.code, 'c');
        assert_eq!((q.ipc, q.bw_gbs, q.me), (p.ipc, p.bw_gbs, p.me));
        let _ = std::fs::remove_dir_all(s.dir());
    }

    #[test]
    fn corrupt_record_is_a_miss_and_removed() {
        let s = tmp_store("corrupt");
        let key = 0xbad;
        let mut bytes = melreq_snap::seal(b"checkpoint");
        s.store_warmup(key, &bytes);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(s.dir().join(format!("warmup-{key:016x}.bin")), &bytes).unwrap();
        assert!(s.load_warmup(key).is_none(), "corrupt record must miss");
        assert!(
            !s.dir().join(format!("warmup-{key:016x}.bin")).exists(),
            "corrupt record must be evicted"
        );
        let _ = std::fs::remove_dir_all(s.dir());
    }

    #[test]
    fn keys_separate_every_input() {
        let cfg = SystemConfig::paper(4, PolicyKind::HfRf);
        let base = CheckpointStore::warmup_key(&cfg, "bcde", 0, 60_000, 150_000);
        assert_ne!(base, CheckpointStore::warmup_key(&cfg, "bcdf", 0, 60_000, 150_000));
        assert_ne!(base, CheckpointStore::warmup_key(&cfg, "bcde", 1, 60_000, 150_000));
        assert_ne!(base, CheckpointStore::warmup_key(&cfg, "bcde", 0, 50_000, 150_000));
        assert_ne!(base, CheckpointStore::warmup_key(&cfg, "bcde", 0, 60_000, 100_000));
        let mut other = SystemConfig::paper(4, PolicyKind::HfRf);
        other.timing.t_cl += 1;
        assert_ne!(base, CheckpointStore::warmup_key(&other, "bcde", 0, 60_000, 150_000));
        // Profiles key on the slice and length too.
        let p = CheckpointStore::profile_key('c', SliceKind::Profiling, 1000);
        assert_ne!(p, CheckpointStore::profile_key('c', SliceKind::Evaluation(0), 1000));
        assert_ne!(p, CheckpointStore::profile_key('c', SliceKind::Profiling, 2000));
        assert_ne!(p, CheckpointStore::profile_key('d', SliceKind::Profiling, 1000));
    }
}
