//! Command implementations. Each command renders to a `String` so it can
//! be tested without capturing stdout.

use crate::parse::{Command, PolicySpec, USAGE};
use melreq_core::experiment::{
    run_mix, run_mix_audited, run_mix_custom, ExperimentOptions, MixResult, ProfileCache,
};
use melreq_core::profile::profile_app;
use melreq_core::report::{format_table, pct_over};
use melreq_core::SystemConfig;
use melreq_memctrl::ext::{FairQueueing, StallTimeFair};
use melreq_memctrl::policy::PolicyKind;
use melreq_workloads::{mixes_for_cores, spec2000, Mix, MixKind, SliceKind};

fn run_with_spec(
    mix: &Mix,
    spec: &PolicySpec,
    opts: &ExperimentOptions,
    cache: &ProfileCache,
) -> MixResult {
    match spec {
        PolicySpec::Paper(kind) => run_mix(mix, kind, opts, cache),
        PolicySpec::Fq => run_mix_custom(
            mix,
            "FQ",
            |_me, cores, _seed| (Box::new(FairQueueing::new(cores)), true),
            None,
            opts,
            cache,
        ),
        PolicySpec::Stf => run_mix_custom(
            mix,
            "STF",
            |_me, cores, _seed| (Box::new(StallTimeFair::new(cores)), true),
            None,
            opts,
            cache,
        ),
    }
}

fn cmd_profile(apps: &[String], opts: &ExperimentOptions) -> Result<String, String> {
    let roster = spec2000();
    let selected: Vec<_> = if apps.is_empty() {
        roster
    } else {
        let wanted: Vec<&str> = apps.iter().map(std::string::String::as_str).collect();
        let picked: Vec<_> = roster.into_iter().filter(|a| wanted.contains(&a.name)).collect();
        if picked.len() != wanted.len() {
            return Err(format!(
                "unknown application(s) in {wanted:?}; names are SPEC2000 benchmarks (swim, mcf, ...)"
            ));
        }
        picked
    };
    let rows: Vec<Vec<String>> = selected
        .iter()
        .map(|a| {
            let p = profile_app(a, SliceKind::Profiling, opts.profile_instructions);
            vec![
                a.name.to_string(),
                a.class.to_string(),
                format!("{:.2}", p.ipc),
                format!("{:.3}", p.bw_gbs),
                format!("{:.3}", p.me),
            ]
        })
        .collect();
    Ok(format_table(&["app", "class", "IPC_1", "BW (GB/s)", "ME"], &rows))
}

fn cmd_run(
    mix_name: &str,
    spec: &PolicySpec,
    opts: &ExperimentOptions,
    audit: bool,
) -> Result<String, String> {
    let mix = try_mix(mix_name)?;
    let cache = ProfileCache::new();
    let (r, report) = if audit {
        let PolicySpec::Paper(kind) = spec else {
            return Err("--audit checks the paper's policies; FQ/STF are externally \
                        built and expose no invariants to verify"
                .to_string());
        };
        let (r, report) = run_mix_audited(&mix, kind, opts, &cache);
        (r, Some(report))
    } else {
        (run_with_spec(&mix, spec, opts, &cache), None)
    };
    let mut out = format!(
        "{} under {}: SMT speedup {:.3}, unfairness {:.3}, mean read latency {:.0} cycles\n\n",
        mix.name, r.policy, r.smt_speedup, r.unfairness, r.mean_read_latency
    );
    let rows: Vec<Vec<String>> = mix
        .apps()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            vec![
                format!("core {i}"),
                a.name.to_string(),
                format!("{:.3}", r.me[i]),
                format!("{:.3}", r.ipc_single[i]),
                format!("{:.3}", r.ipc_multi[i]),
                format!("{:.2}x", r.ipc_single[i] / r.ipc_multi[i].max(1e-9)),
                format!("{:.0}", r.read_latency[i]),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["core", "app", "ME", "IPC alone", "IPC shared", "slowdown", "read lat"],
        &rows,
    ));
    // Host throughput of the multiprogrammed run (profiling excluded).
    // Instructions are approximated by the per-core targets; early
    // finishers keep committing, so the true rate is slightly higher.
    let secs = r.wall.as_secs_f64().max(1e-9);
    let instr = (opts.warmup + opts.instructions).saturating_mul(mix.cores() as u64);
    out.push_str(&format!(
        "\nhost throughput: {:.2} M sim-cycles/s, ~{:.2} M instr/s \
         ({} cycles, {} cores in {:.3} s)\n",
        r.sim_cycles as f64 / secs / 1e6,
        instr as f64 / secs / 1e6,
        r.sim_cycles,
        mix.cores(),
        secs
    ));
    if r.timed_out {
        out.push_str("\nWARNING: run hit the cycle safety net before completing\n");
    }
    if let Some(report) = report {
        if !report.is_clean() {
            return Err(format!("{out}\n{}", report.render()));
        }
        out.push_str(&format!(
            "\naudit: {} events checked, 0 violations, stream hash {:016x}\n",
            report.events, report.stream_hash
        ));
    }
    Ok(out)
}

fn cmd_audit(
    mix_name: &str,
    spec: &PolicySpec,
    opts: &ExperimentOptions,
) -> Result<String, String> {
    let PolicySpec::Paper(kind) = spec else {
        return Err("audit checks the paper's policies; FQ/STF are externally built \
                    and expose no invariants to verify"
            .to_string());
    };
    let mix = try_mix(mix_name)?;
    let cache = ProfileCache::new();
    let (_, a) = run_mix_audited(&mix, kind, opts, &cache);
    let (_, b) = run_mix_audited(&mix, kind, opts, &cache);
    let mut out = format!(
        "{} under {}: {} events checked per pass\n  pass 1: hash {:016x}, {} violation(s)\n  pass 2: hash {:016x}, {} violation(s)\n",
        mix.name,
        kind.name(),
        a.events,
        a.stream_hash,
        a.total_violations,
        b.stream_hash,
        b.total_violations,
    );
    if !a.is_clean() || !b.is_clean() {
        return Err(format!("{out}\n{}\n{}", a.render(), b.render()));
    }
    if a.stream_hash != b.stream_hash {
        return Err(format!("{out}\ndeterminism FAILED: event-stream hashes differ"));
    }
    out.push_str("audit OK: both passes clean, event streams identical\n");
    Ok(out)
}

fn cmd_compare(
    mix_name: &str,
    specs: &[PolicySpec],
    opts: &ExperimentOptions,
) -> Result<String, String> {
    let mix = try_mix(mix_name)?;
    let cache = ProfileCache::new();
    let results: Vec<MixResult> =
        specs.iter().map(|s| run_with_spec(&mix, s, opts, &cache)).collect();
    let base = results[0].smt_speedup;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.policy.to_string(),
                format!("{:.3}", r.smt_speedup),
                pct_over(r.smt_speedup, base),
                format!("{:.0}", r.mean_read_latency),
                format!("{:.3}", r.unfairness),
            ]
        })
        .collect();
    Ok(format!(
        "{} ({}):\n\n{}",
        mix.name,
        mix.apps().iter().map(|a| a.name).collect::<Vec<_>>().join(", "),
        format_table(&["policy", "speedup", "vs first", "read lat", "unfairness"], &rows)
    ))
}

fn cmd_sweep(kind: &str, specs: &[PolicySpec], opts: &ExperimentOptions) -> Result<String, String> {
    let kinds: Vec<MixKind> = match kind {
        "mem" => vec![MixKind::Mem],
        "mix" => vec![MixKind::Mixed],
        _ => vec![MixKind::Mem, MixKind::Mixed],
    };
    let cache = ProfileCache::new();
    let mut out = String::new();
    for k in kinds {
        out.push_str(&format!("-- {k:?} workloads --\n"));
        let mut rows = Vec::new();
        for cores in [2usize, 4, 8] {
            let mixes = mixes_for_cores(cores, Some(k));
            let mut row = vec![format!("{cores}-core")];
            // Geometric mean of per-mix ratios vs the first policy.
            let mut base: Vec<f64> = Vec::new();
            for (pi, spec) in specs.iter().enumerate() {
                let mut log_sum = 0.0;
                for (mi, mix) in mixes.iter().enumerate() {
                    let r = run_with_spec(mix, spec, opts, &cache);
                    if pi == 0 {
                        base.push(r.smt_speedup);
                    }
                    log_sum += (r.smt_speedup / base[mi]).ln();
                }
                let g = (log_sum / mixes.len() as f64).exp();
                row.push(pct_over(g, 1.0));
            }
            rows.push(row);
        }
        let headers: Vec<&str> = std::iter::once("cores")
            .chain(specs.iter().map(super::parse::PolicySpec::name))
            .collect();
        out.push_str(&format_table(&headers, &rows));
        out.push('\n');
    }
    Ok(out)
}

fn try_mix(name: &str) -> Result<Mix, String> {
    melreq_workloads::all_mixes()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown workload '{name}'; names follow Table 3 (2MEM-1 … 8MIX-6)"))
}

/// Execute a parsed command, returning its rendered output.
pub fn run_command(cmd: &Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Config { cores } => Ok(SystemConfig::paper(*cores, PolicyKind::MeLreq).describe()),
        Command::Profile { apps, opts } => cmd_profile(apps, opts),
        Command::Run { mix, policy, opts, audit } => cmd_run(mix, policy, opts, *audit),
        Command::Audit { mix, policy, opts } => cmd_audit(mix, policy, opts),
        Command::Compare { mix, policies, opts } => cmd_compare(mix, policies, opts),
        Command::Sweep { kind, policies, opts } => cmd_sweep(kind, policies, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentOptions {
        ExperimentOptions::quick()
    }

    #[test]
    fn config_renders() {
        let s = run_command(&Command::Config { cores: 4 }).unwrap();
        assert!(s.contains("4 x 4-issue"));
        assert!(s.contains("ME-LREQ"));
    }

    #[test]
    fn help_renders_usage() {
        let s = run_command(&Command::Help).unwrap();
        assert!(s.contains("USAGE"));
    }

    #[test]
    fn unknown_mix_is_an_error() {
        let e = cmd_run("9MEM-9", &PolicySpec::Paper(PolicyKind::HfRf), &quick(), false);
        assert!(e.is_err());
        assert!(e.unwrap_err().contains("Table 3"));
    }

    #[test]
    fn mix_lookup_is_case_insensitive() {
        assert!(try_mix("2mem-1").is_ok());
    }

    #[test]
    fn profile_rejects_unknown_apps() {
        let e = cmd_profile(&["notanapp".to_string()], &quick());
        assert!(e.is_err());
    }

    #[test]
    fn profile_subset_renders_rows() {
        let s = cmd_profile(&["eon".to_string()], &quick()).unwrap();
        assert!(s.contains("eon"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3); // header + rule + one row
    }

    #[test]
    fn audited_run_reports_clean() {
        let s = cmd_run("2MEM-1", &PolicySpec::Paper(PolicyKind::MeLreq), &quick(), true).unwrap();
        assert!(s.contains("0 violations"));
        assert!(s.contains("stream hash"));
        let e = cmd_run("2MEM-1", &PolicySpec::Fq, &quick(), true);
        assert!(e.is_err(), "--audit must reject externally built policies");
    }

    #[test]
    fn audit_subcommand_verifies_determinism() {
        let s = cmd_audit("2MEM-1", &PolicySpec::Paper(PolicyKind::HfRf), &quick()).unwrap();
        assert!(s.contains("audit OK"));
        assert!(s.contains("pass 2"));
    }

    #[test]
    fn run_and_compare_work_end_to_end() {
        let s = cmd_run("2MEM-1", &PolicySpec::Paper(PolicyKind::MeLreq), &quick(), false).unwrap();
        assert!(s.contains("wupwise"));
        assert!(s.contains("SMT speedup"));
        let s =
            cmd_compare("2MEM-1", &[PolicySpec::Paper(PolicyKind::HfRf), PolicySpec::Fq], &quick())
                .unwrap();
        assert!(s.contains("FQ"));
        assert!(s.contains("+0.0%")); // baseline row
    }
}
