//! Command implementations. Each command renders to a `String` so it can
//! be tested without capturing stdout; failures are the typed
//! [`MelreqError`], which the binary maps to process exit codes.
//!
//! Simulation commands (`run`, `compare`, `sweep`, `reproduce`) go
//! through the [`melreq_core::api`] facade — the same
//! `SimRequest → Session::run → SimReport` path the HTTP service and the
//! bench harness use — so `melreq run --json` is byte-identical to the
//! service's `/run` report body. Only the observability paths
//! (`--trace`/`--series`/`--provenance` and `melreq trace`) drop below
//! the facade: they need the collector tap, which is deliberately not
//! part of the service API.

use crate::parse::{Command, ObsArgs, PolicySpec, USAGE};
use melreq_core::api::{MelreqError, PolicyReport, Session, SimRequest};
use melreq_core::experiment::{
    run_mix, run_mix_audited_observed, run_mix_group, run_mix_observed, worker_count,
    ExperimentOptions, MixResult, ObserveOptions, ProfileCache, RunControl, SweepStage,
};
use melreq_core::profile::profile_app;
use melreq_core::report::{format_table, pct_over};
use melreq_core::{CheckpointStore, SystemConfig};
use melreq_memctrl::policy::PolicyKind;
use melreq_memctrl::ChannelTraffic;
use melreq_obs::{
    export_chrome_json, export_host_profile, series, Collector, ObsConfig, RuleTotals,
};
use melreq_serve::{http, ServeConfig};
use melreq_workloads::{mix_by_name, mixes_for_cores, spec2000, Mix, MixKind, SliceKind};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage(msg: impl Into<String>) -> MelreqError {
    MelreqError::Usage(msg.into())
}

fn io_err(msg: impl Into<String>) -> MelreqError {
    MelreqError::Io(msg.into())
}

/// The per-policy fields the human `run` rendering needs, borrowable
/// from either a facade [`PolicyReport`] or a raw [`MixResult`] (the
/// observability paths still produce the latter).
struct RunView<'a> {
    policy: &'a str,
    smt_speedup: f64,
    unfairness: f64,
    mean_read_latency: f64,
    me: &'a [f64],
    ipc_single: &'a [f64],
    ipc_multi: &'a [f64],
    read_latency: &'a [f64],
    queue_occupancy_mean: f64,
    grant_candidates_mean: f64,
    channels: &'a [ChannelTraffic],
    sim_cycles: u64,
    timed_out: bool,
    cancelled: bool,
}

impl<'a> From<&'a MixResult> for RunView<'a> {
    fn from(r: &'a MixResult) -> Self {
        RunView {
            policy: r.policy,
            smt_speedup: r.smt_speedup,
            unfairness: r.unfairness,
            mean_read_latency: r.mean_read_latency,
            me: &r.me,
            ipc_single: &r.ipc_single,
            ipc_multi: &r.ipc_multi,
            read_latency: &r.read_latency,
            queue_occupancy_mean: r.queue_occupancy_mean,
            grant_candidates_mean: r.grant_candidates_mean,
            channels: &r.channel_traffic,
            sim_cycles: r.sim_cycles,
            timed_out: r.timed_out,
            cancelled: r.cancelled,
        }
    }
}

impl<'a> From<&'a PolicyReport> for RunView<'a> {
    fn from(r: &'a PolicyReport) -> Self {
        RunView {
            policy: &r.policy,
            smt_speedup: r.smt_speedup,
            unfairness: r.unfairness,
            mean_read_latency: r.mean_read_latency,
            me: &r.me,
            ipc_single: &r.ipc_single,
            ipc_multi: &r.ipc_multi,
            read_latency: &r.read_latency,
            queue_occupancy_mean: r.queue_occupancy_mean,
            grant_candidates_mean: r.grant_candidates_mean,
            channels: &r.channels,
            sim_cycles: r.sim_cycles,
            timed_out: r.timed_out,
            cancelled: r.cancelled,
        }
    }
}

fn cmd_profile(apps: &[String], opts: &ExperimentOptions) -> Result<String, MelreqError> {
    let roster = spec2000();
    let selected: Vec<_> = if apps.is_empty() {
        roster
    } else {
        let wanted: Vec<&str> = apps.iter().map(std::string::String::as_str).collect();
        let picked: Vec<_> = roster.into_iter().filter(|a| wanted.contains(&a.name)).collect();
        if picked.len() != wanted.len() {
            return Err(usage(format!(
                "unknown application(s) in {wanted:?}; names are SPEC2000 benchmarks (swim, mcf, ...)"
            )));
        }
        picked
    };
    let rows: Vec<Vec<String>> = selected
        .iter()
        .map(|a| {
            let p = profile_app(a, SliceKind::Profiling, opts.profile_instructions);
            vec![
                a.name.to_string(),
                a.class.to_string(),
                format!("{:.2}", p.ipc),
                format!("{:.3}", p.bw_gbs),
                format!("{:.3}", p.me),
            ]
        })
        .collect();
    Ok(format_table(&["app", "class", "IPC_1", "BW (GB/s)", "ME"], &rows))
}

/// Translate CLI observability flags into core `ObserveOptions`.
/// `force_sampling` (the `trace` command) turns the epoch sampler on
/// even when neither `--sample-epoch` nor `--series` was given.
fn observe_options(obs: &ObsArgs, force_sampling: bool) -> ObserveOptions {
    let sample_epoch =
        obs.sample_epoch.or_else(|| (force_sampling || obs.series_out.is_some()).then_some(10_000));
    ObserveOptions {
        ring_capacity: obs.trace_cap.unwrap_or(ObsConfig::default().ring_capacity),
        sample_epoch,
    }
}

/// Write the requested trace/series artifacts from a finished collector
/// and return the report lines describing them.
fn obs_outputs(c: &Collector, obs: &ObsArgs) -> Result<String, MelreqError> {
    let mut out = String::new();
    if let Some(path) = &obs.trace_out {
        let json = export_chrome_json(c);
        std::fs::write(path, &json).map_err(|e| io_err(format!("cannot write {path}: {e}")))?;
        let ring = c.ring();
        let _ = writeln!(
            out,
            "trace: {} events ({} dropped) -> {path}  [load in ui.perfetto.dev]",
            ring.len(),
            ring.dropped()
        );
    }
    if let Some(path) = &obs.series_out {
        let rows = c.series();
        let (channels, cores) = c.geometry();
        let body = if path.ends_with(".json") {
            series::render_json(rows)
        } else {
            series::render_csv(rows, cores, channels)
        };
        std::fs::write(path, &body).map_err(|e| io_err(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "series: {} epoch rows -> {path}", rows.len());
    }
    Ok(out)
}

/// Rule-attribution table: for each observed policy, how many grants each
/// scheduler rule decided and its share of that policy's total.
fn render_provenance(totals: &[(String, RuleTotals)]) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (policy, t) in totals {
        let total = t.total().max(1);
        for (rule, n) in t.nonzero() {
            rows.push(vec![
                policy.clone(),
                rule.name().to_string(),
                n.to_string(),
                format!("{:.1}%", n as f64 / total as f64 * 100.0),
            ]);
        }
    }
    if rows.is_empty() {
        return "\nprovenance: no grant decisions observed\n".to_string();
    }
    format!(
        "\ndecision provenance (winning rule per grant):\n{}",
        format_table(&["policy", "rule", "grants", "share"], &rows)
    )
}

/// The human single-run rendering: the headline, the per-core table,
/// host throughput, the controller view and any safety-net warnings.
fn render_run_human(
    mix: &Mix,
    r: &RunView<'_>,
    wall: Duration,
    opts: &ExperimentOptions,
) -> String {
    let mut out = format!(
        "{} under {}: SMT speedup {:.3}, unfairness {:.3}, mean read latency {:.0} cycles\n\n",
        mix.name, r.policy, r.smt_speedup, r.unfairness, r.mean_read_latency
    );
    let rows: Vec<Vec<String>> = mix
        .apps()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            vec![
                format!("core {i}"),
                a.name.to_string(),
                format!("{:.3}", r.me[i]),
                format!("{:.3}", r.ipc_single[i]),
                format!("{:.3}", r.ipc_multi[i]),
                format!("{:.2}x", r.ipc_single[i] / r.ipc_multi[i].max(1e-9)),
                format!("{:.0}", r.read_latency[i]),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["core", "app", "ME", "IPC alone", "IPC shared", "slowdown", "read lat"],
        &rows,
    ));
    // Host throughput of the multiprogrammed run (profiling excluded).
    // Instructions are approximated by the per-core targets; early
    // finishers keep committing, so the true rate is slightly higher.
    let secs = wall.as_secs_f64().max(1e-9);
    let instr = (opts.warmup + opts.instructions).saturating_mul(mix.cores() as u64);
    out.push_str(&format!(
        "\nhost throughput: {:.2} M sim-cycles/s, ~{:.2} M instr/s \
         ({} cycles, {} cores in {:.3} s)\n",
        r.sim_cycles as f64 / secs / 1e6,
        instr as f64 / secs / 1e6,
        r.sim_cycles,
        mix.cores(),
        secs
    ));
    // Controller-level view of the measured window: streaming means plus
    // the per-channel traffic breakdown.
    let _ = writeln!(
        out,
        "\ncontroller: mean queue occupancy {:.2}, mean grant candidates {:.2}",
        r.queue_occupancy_mean, r.grant_candidates_mean
    );
    if !r.channels.is_empty() {
        let rows: Vec<Vec<String>> = r
            .channels
            .iter()
            .enumerate()
            .map(|(ch, t)| {
                vec![
                    format!("ch {ch}"),
                    t.reads.to_string(),
                    t.writes.to_string(),
                    t.row_hits.to_string(),
                    format!("{:.1}%", t.hit_rate() * 100.0),
                ]
            })
            .collect();
        out.push_str(&format_table(&["channel", "reads", "writes", "row hits", "hit rate"], &rows));
    }
    if r.timed_out {
        out.push_str("\nWARNING: run hit the cycle safety net before completing\n");
    }
    if r.cancelled {
        out.push_str("\nWARNING: run was cancelled at an epoch boundary by its deadline\n");
    }
    out
}

/// Build the typed request the facade, the service and `melreq client`
/// all share.
fn sim_request(
    mix: &Mix,
    specs: &[PolicySpec],
    opts: &ExperimentOptions,
    audit: bool,
) -> SimRequest {
    SimRequest::new(mix.name).policies(specs.to_vec()).opts(*opts).audit(audit)
}

/// Apply an optional `--threads` worker count to a request.
fn with_threads(req: SimRequest, threads: Option<usize>) -> SimRequest {
    match threads {
        Some(n) => req.threads(n),
        None => req,
    }
}

/// The CLI's buildinfo block, embedded in host-profile artifacts so a
/// trace file is self-describing (mirrors the server's `/buildinfo`).
fn cli_buildinfo(threads: Option<usize>) -> String {
    format!(
        "{{\"name\":\"melreq\",\"version\":\"{}\",\"schema_version\":{},\"threads\":{}}}",
        env!("CARGO_PKG_VERSION"),
        melreq_core::api::SCHEMA_VERSION,
        threads.map_or_else(|| "null".to_string(), |n| n.to_string())
    )
}

/// Run `body` with the host-side span profiler attached when `--profile
/// PATH` was given: enable before, drain after (success or failure, so a
/// failed run never leaks spans into a later one), write the Perfetto
/// trace with the summary and buildinfo blocks embedded, and append the
/// text summary to the command's output.
fn with_host_profile(
    prof_out: Option<&str>,
    process_name: &str,
    threads: Option<usize>,
    body: impl FnOnce() -> Result<String, MelreqError>,
) -> Result<String, MelreqError> {
    let Some(path) = prof_out else {
        return body();
    };
    melreq_prof::enable();
    let result = body();
    melreq_prof::disable();
    let profile = melreq_prof::drain();
    let mut out = result?;
    let summary = melreq_prof::summarize(&profile, 10);
    let trace = export_host_profile(
        &profile,
        process_name,
        &[("summary", summary.render_json()), ("buildinfo", cli_buildinfo(threads))],
    );
    std::fs::write(path, &trace).map_err(|e| io_err(format!("cannot write {path}: {e}")))?;
    let _ = write!(out, "\n{}\nhost profile written to {path}\n", summary.render_text());
    Ok(out)
}

fn cmd_run(
    mix_name: &str,
    spec: &PolicySpec,
    opts: &ExperimentOptions,
    audit: bool,
    obs: &ObsArgs,
    json: bool,
    threads: Option<usize>,
) -> Result<String, MelreqError> {
    let mix = try_mix(mix_name)?;
    if json {
        if obs.any() {
            return Err(usage(
                "--json emits the versioned machine-readable report; drop the \
                 --trace/--series/--sample-epoch/--provenance flags (use `melreq trace` \
                 for observability artifacts)",
            ));
        }
        let req = with_threads(sim_request(&mix, std::slice::from_ref(spec), opts, audit), threads);
        let report = Session::new().run(&req, &RunControl::default())?;
        return Ok(report.to_json());
    }
    if obs.any() {
        // Observability paths sit below the facade: they need the
        // collector tap on the audit stream. Every registered policy
        // runs through the instrumented controller, so they all trace;
        // schemes without dedicated provenance rules attribute their
        // grants to the `external` rule.
        let kind = spec;
        let cache = ProfileCache::new();
        let observe = observe_options(obs, false);
        let (r, report, collector) = if audit {
            let (r, report, c) = run_mix_audited_observed(&mix, kind, opts, &observe, &cache);
            (r, Some(report), c)
        } else {
            let (r, c) = run_mix_observed(&mix, kind, opts, &observe, &cache);
            (r, None, c)
        };
        let mut out = render_run_human(&mix, &RunView::from(&r), r.wall, opts);
        if let Some(report) = report {
            if !report.is_clean() {
                return Err(MelreqError::Divergence(format!("{out}\n{}", report.render())));
            }
            out.push_str(&format!(
                "\naudit: {} events checked, 0 violations, stream hash {:016x}\n",
                report.events, report.stream_hash
            ));
        }
        let c = collector.lock().expect("obs collector poisoned");
        out.push_str(&obs_outputs(&c, obs)?);
        if obs.provenance {
            out.push_str(&render_provenance(c.rule_totals()));
        }
        return Ok(out);
    }
    // The plain run goes through the facade — identical machinery to
    // `--json`, the service and the bench harness.
    let req = with_threads(sim_request(&mix, std::slice::from_ref(spec), opts, audit), threads);
    let report = Session::new().run(&req, &RunControl::default())?;
    let p = &report.policies[0];
    let mut out = render_run_human(&mix, &RunView::from(p), report.wall, opts);
    if let Some(a) = &p.audit {
        out.push_str(&format!(
            "\naudit: {} events checked, {} violations, stream hash {:016x}\n",
            a.events, a.violations, a.stream_hash
        ));
    }
    Ok(out)
}

/// `melreq trace`: run one mix under any registered policy with the
/// full observability stack on, write the Chrome/Perfetto trace (plus
/// the optional epoch series), and summarize what was captured.
fn cmd_trace(
    mix_name: &str,
    spec: &PolicySpec,
    out_path: &str,
    obs: &ObsArgs,
    opts: &ExperimentOptions,
) -> Result<String, MelreqError> {
    let kind = spec;
    let mix = try_mix(mix_name)?;
    let cache = ProfileCache::new();
    let observe = observe_options(obs, true);
    let (r, collector) = run_mix_observed(&mix, kind, opts, &observe, &cache);
    let c = collector.lock().expect("obs collector poisoned");
    let mut effective = obs.clone();
    effective.trace_out = Some(out_path.to_string());
    let mut out = format!(
        "{} under {}: {} sim cycles observed, {} scheduler decisions\n",
        mix.name,
        r.policy,
        r.sim_cycles,
        c.decisions_seen()
    );
    out.push_str(&obs_outputs(&c, &effective)?);
    if r.timed_out {
        out.push_str("\nWARNING: run hit the cycle safety net before completing\n");
    }
    out.push_str(&render_provenance(c.rule_totals()));
    Ok(out)
}

fn cmd_audit(
    mix_name: &str,
    spec: &PolicySpec,
    opts: &ExperimentOptions,
) -> Result<String, MelreqError> {
    let mix = try_mix(mix_name)?;
    let session = Session::new();
    let req = sim_request(&mix, std::slice::from_ref(spec), opts, true);
    // Two audited passes through the facade; `Session::run` already
    // fails with `Divergence` on any violation, so reaching the hash
    // comparison implies both passes were clean.
    let a = session.run(&req, &RunControl::default())?;
    let b = session.run(&req, &RunControl::default())?;
    let (sa, sb) = (
        a.policies[0].audit.as_ref().expect("audited run carries a summary"),
        b.policies[0].audit.as_ref().expect("audited run carries a summary"),
    );
    let mut out = format!(
        "{} under {}: {} events checked per pass\n  pass 1: hash {:016x}, {} violation(s)\n  pass 2: hash {:016x}, {} violation(s)\n",
        mix.name,
        spec.name(),
        sa.events,
        sa.stream_hash,
        sa.violations,
        sb.stream_hash,
        sb.violations,
    );
    if sa.stream_hash != sb.stream_hash {
        return Err(MelreqError::Divergence(format!(
            "{out}\ndeterminism FAILED: event-stream hashes differ"
        )));
    }
    out.push_str("audit OK: both passes clean, event streams identical\n");
    Ok(out)
}

fn cmd_compare(
    mix_name: &str,
    specs: &[PolicySpec],
    opts: &ExperimentOptions,
    provenance: bool,
    json: bool,
    threads: Option<usize>,
) -> Result<String, MelreqError> {
    let mix = try_mix(mix_name)?;
    if json {
        if provenance {
            return Err(usage(
                "--json emits the versioned machine-readable report; drop --provenance",
            ));
        }
        let req = with_threads(sim_request(&mix, specs, opts, false), threads);
        let report = Session::new().run(&req, &RunControl::default())?;
        return Ok(report.to_json());
    }
    // (policy, speedup, harmonic speedup, read latency, unfairness,
    // max slowdown) per row.
    let mut totals: Vec<(String, RuleTotals)> = Vec::new();
    let rows_data: Vec<(String, f64, f64, f64, f64, f64)> = if provenance {
        let cache = ProfileCache::new();
        let mut rs = Vec::new();
        for kind in specs {
            let (r, c) = run_mix_observed(&mix, kind, opts, &ObserveOptions::default(), &cache);
            let c = c.lock().expect("obs collector poisoned");
            if let Some((name, t)) = c.active_rule_totals() {
                totals.push((name.to_string(), t.clone()));
            }
            rs.push((
                r.policy.to_string(),
                r.smt_speedup,
                r.harmonic_speedup,
                r.mean_read_latency,
                r.unfairness,
                r.max_slowdown,
            ));
        }
        rs
    } else {
        let req = with_threads(sim_request(&mix, specs, opts, false), threads);
        let report = Session::new().run(&req, &RunControl::default())?;
        report
            .policies
            .iter()
            .map(|p| {
                (
                    p.policy.clone(),
                    p.smt_speedup,
                    p.harmonic_speedup,
                    p.mean_read_latency,
                    p.unfairness,
                    p.max_slowdown,
                )
            })
            .collect()
    };
    let base = rows_data[0].1;
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|(policy, speedup, hmean, read_lat, unfairness, max_slow)| {
            vec![
                policy.clone(),
                format!("{speedup:.3}"),
                pct_over(*speedup, base),
                format!("{hmean:.3}"),
                format!("{read_lat:.0}"),
                format!("{unfairness:.3}"),
                format!("{max_slow:.3}"),
            ]
        })
        .collect();
    let mut out = format!(
        "{} ({}):\n\n{}",
        mix.name,
        mix.apps().iter().map(|a| a.name).collect::<Vec<_>>().join(", "),
        format_table(
            &["policy", "speedup", "vs first", "hmean", "read lat", "unfairness", "max slow"],
            &rows
        )
    );
    if provenance {
        out.push_str(&render_provenance(&totals));
    }
    Ok(out)
}

fn cmd_sweep(
    kind: &str,
    specs: &[PolicySpec],
    opts: &ExperimentOptions,
    threads: Option<usize>,
) -> Result<String, MelreqError> {
    let kinds: Vec<MixKind> = match kind {
        "mem" => vec![MixKind::Mem],
        "mix" => vec![MixKind::Mixed],
        _ => vec![MixKind::Mem, MixKind::Mixed],
    };
    // One session for the whole sweep: profiles are memoized across
    // mixes, and all-paper policy lists share each mix's warm-up.
    let session = Session::new();
    let mut out = String::new();
    for k in kinds {
        out.push_str(&format!("-- {k:?} workloads --\n"));
        let mut rows = Vec::new();
        for cores in [2usize, 4, 8] {
            let mixes = mixes_for_cores(cores, Some(k));
            let mut row = vec![format!("{cores}-core")];
            // Geometric mean of per-mix ratios vs the first policy.
            let mut log_sums = vec![0.0f64; specs.len()];
            for mix in &mixes {
                let req = with_threads(sim_request(mix, specs, opts, false), threads);
                let report = session.run(&req, &RunControl::default())?;
                let base = report.policies[0].smt_speedup;
                for (pi, p) in report.policies.iter().enumerate() {
                    log_sums[pi] += (p.smt_speedup / base).ln();
                }
            }
            for log_sum in &log_sums {
                let g = (log_sum / mixes.len() as f64).exp();
                row.push(pct_over(g, 1.0));
            }
            rows.push(row);
        }
        let headers: Vec<&str> =
            std::iter::once("cores").chain(specs.iter().map(PolicySpec::name)).collect();
        out.push_str(&format_table(&headers, &rows));
        out.push('\n');
    }
    Ok(out)
}

/// Peak resident-set size of this process in bytes (Linux `VmHWM`;
/// `None` elsewhere or when procfs is unavailable).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Cycles this result actually simulated: the measured window alone when
/// the warm-up boundary was restored, the whole run otherwise.
fn simulated_cycles(r: &MixResult) -> u64 {
    if r.warmup_from_checkpoint {
        r.measured_cycles
    } else {
        r.sim_cycles
    }
}

/// FNV-1a fingerprint of the paper-metric outputs of a result set: a
/// checkpoint-forked group and per-policy fresh runs of the same inputs
/// must hash identically, bit for bit.
fn results_hash(results: &[MixResult]) -> u64 {
    let mut bytes = Vec::new();
    for r in results {
        bytes.extend_from_slice(r.policy.as_bytes());
        bytes.extend_from_slice(&r.sim_cycles.to_le_bytes());
        bytes.extend_from_slice(&r.measured_cycles.to_le_bytes());
        for v in r.ipc_multi.iter().chain(r.read_latency.iter()) {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    melreq_snap::fnv1a(&bytes)
}

/// One timed stage of the reproduction sweep.
///
/// Grid stages run interleaved in one global job pool, so a stage has no
/// private elapsed window; its `wall_s` is the **aggregate
/// worker-seconds** its runs consumed (measured window plus any warm-up
/// the run paid itself). The table2 and benchmark stages still run
/// serially and report elapsed wall time.
struct Stage {
    name: String,
    detail: String,
    wall_s: f64,
    sim_cycles: u64,
    /// FNV-1a over the stage's paper-metric outputs ([`results_hash`]);
    /// `None` for the untimed/non-grid stages. Byte-stable across
    /// thread counts — CI diffs it between 1-worker and N-worker runs.
    results_hash: Option<u64>,
}

/// Scrape one numeric field out of a flat JSON artifact (the bench
/// files are written by this binary, so a full parser is overkill).
fn read_json_number(text: &str, key: &str) -> Option<f64> {
    let start = text.find(&format!("\"{key}\""))?;
    let rest = &text[start..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `melreq reproduce`: the full paper — Table 2 profiles, the Figure
/// 2/4/5 grid, the Figure 3 fixed-priority study and the offline-vs-
/// online ablation — with one shared warm-up per mix, persisted across
/// invocations through the checkpoint store. Writes the sweep artifact
/// (`BENCH_sweep.json`) as a side effect and returns the human summary.
///
/// The warm-up-sharing benchmark stage always runs the 5-policy `4MEM-1`
/// group twice — snapshot-forked and per-policy fresh — and hard-fails
/// if the two result sets are not bit-identical, in smoke and full mode
/// alike.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn cmd_reproduce(
    smoke: bool,
    no_checkpoint: bool,
    store_dir: Option<&str>,
    out_path: &str,
    opts: &ExperimentOptions,
    threads: Option<usize>,
    guard: Option<&str>,
    guard_ratio: f64,
    prof_out: Option<&str>,
) -> Result<String, MelreqError> {
    // Smoke defaults to the quick scale; explicit scale flags still win.
    let opts = if smoke && *opts == ExperimentOptions::default() {
        ExperimentOptions::quick()
    } else {
        *opts
    };
    if prof_out.is_some() {
        melreq_prof::enable();
    }
    let store =
        if no_checkpoint {
            None
        } else {
            let dir = store_dir.map_or_else(CheckpointStore::default_dir, PathBuf::from);
            Some(Arc::new(CheckpointStore::open(&dir).map_err(|e| {
                io_err(format!("cannot open checkpoint store {}: {e}", dir.display()))
            })?))
        };
    // The session owns the profile cache and (optionally) the store;
    // every grid below runs through it.
    let session = match &store {
        Some(st) => Session::with_store(st.clone()),
        None => Session::new(),
    };
    let kernel = if opts.tick_exact { "tick-exact" } else { "fast-forward" };

    let total_start = Instant::now();
    let mut stages: Vec<Stage> = Vec::new();

    // Table 2: single-core profiles of the full application roster.
    {
        let t0 = Instant::now();
        let apps = spec2000();
        let mut simulated = 0usize;
        for a in &apps {
            let key = CheckpointStore::profile_key(
                a.code,
                SliceKind::Profiling,
                opts.profile_instructions,
            );
            if let Some(st) = &store {
                if st.load_profile(key).is_some() {
                    continue;
                }
            }
            let p = profile_app(a, SliceKind::Profiling, opts.profile_instructions);
            simulated += 1;
            if let Some(st) = &store {
                st.store_profile(key, &p);
            }
        }
        stages.push(Stage {
            name: "table2".to_string(),
            detail: format!("{} applications, {simulated} profiled here", apps.len()),
            wall_s: t0.elapsed().as_secs_f64(),
            sim_cycles: 0,
            results_hash: None,
        });
    }

    // The multiprogrammed grid: every stage's jobs into one global pool.
    let f2 = PolicyKind::figure2_set();
    let mut grid_stages: Vec<(String, Vec<Mix>, Vec<PolicyKind>)> = Vec::new();
    if smoke {
        let mixes: Vec<Mix> = mixes_for_cores(2, Some(MixKind::Mem)).into_iter().take(3).collect();
        grid_stages.push(("fig2 (2-core MEM subset)".to_string(), mixes, f2.clone()));
    } else {
        for (kind, kn) in [(MixKind::Mem, "MEM"), (MixKind::Mixed, "MIX")] {
            for cores in [2usize, 4, 8] {
                let mixes = mixes_for_cores(cores, Some(kind));
                if mixes.is_empty() {
                    continue;
                }
                grid_stages.push((format!("fig2/4/5 {cores}-core {kn}"), mixes, f2.clone()));
            }
        }
        grid_stages.push((
            "fig3 4-core fixed priority".to_string(),
            mixes_for_cores(4, None),
            PolicyKind::figure3_set(4),
        ));
        grid_stages.push((
            "ablation offline vs online ME".to_string(),
            vec![mix_by_name("4MEM-4")],
            vec![
                PolicyKind::MeLreq,
                PolicyKind::MeLreqOnline { epoch_cycles: 50_000 },
                PolicyKind::MeLreqOnline { epoch_cycles: 10_000 },
            ],
        ));
    }
    let total_grid_runs: usize = grid_stages.iter().map(|(_, m, p)| m.len() * p.len()).sum();
    let workers = worker_count(total_grid_runs, threads);
    let ctl = RunControl { threads: Some(workers), ..RunControl::default() };
    let grid_t0 = Instant::now();
    let stage_results: Vec<Vec<MixResult>> = if no_checkpoint {
        // --no-checkpoint: one single-policy grid per policy, so every
        // (mix, policy) cell warms up from scratch — the baseline the
        // sharing speedup is quoted against. Results are reordered to
        // the pooled path's (mix-major, policy-minor) layout so the
        // per-stage hashes are comparable across modes.
        grid_stages
            .iter()
            .map(|(_, mixes, policies)| {
                let mut per_policy: Vec<std::vec::IntoIter<MixResult>> = policies
                    .iter()
                    .map(|p| {
                        session
                            .run_grid_ctl(mixes, std::slice::from_ref(p), &opts, &ctl)
                            .into_iter()
                    })
                    .collect();
                let mut results = Vec::with_capacity(mixes.len() * policies.len());
                for _ in 0..mixes.len() {
                    for it in &mut per_policy {
                        results.push(it.next().expect("one result per (mix, policy)"));
                    }
                }
                results
            })
            .collect()
    } else {
        let sweep: Vec<SweepStage> = grid_stages
            .iter()
            .map(|(_, mixes, policies)| SweepStage {
                mixes: mixes.clone(),
                policies: policies.clone(),
            })
            .collect();
        session.run_sweep_stages(&sweep, &opts, &ctl)
    };
    let grid_elapsed = grid_t0.elapsed().as_secs_f64();
    let mut timed_out = 0usize;
    for ((name, mixes, policies), results) in grid_stages.iter().zip(&stage_results) {
        timed_out += results.iter().filter(|r| r.timed_out).count();
        stages.push(Stage {
            name: name.clone(),
            detail: format!("{} mixes x {} policies", mixes.len(), policies.len()),
            wall_s: results.iter().map(|r| r.wall + r.warm_wall).sum::<Duration>().as_secs_f64(),
            sim_cycles: results.iter().map(simulated_cycles).sum(),
            results_hash: Some(results_hash(results)),
        });
    }
    if timed_out > 0 {
        return Err(MelreqError::Timeout(format!(
            "{timed_out} grid run(s) hit the cycle safety net"
        )));
    }

    // Warm-up-sharing benchmark + fork-vs-fresh divergence gate. The
    // forked arm deliberately bypasses the persistent store (a warm store
    // would skip the one warm-up the fork amortizes); profiles are
    // pre-warmed so neither arm pays them. Full mode benchmarks at a
    // warm-up as long as the measured window — the regime short CI slices
    // stand in for (the paper's 100 M-instruction slices are mostly
    // warm-up), where sharing visibly amortizes. This stage deliberately
    // drops below the facade: it pits the two low-level harness paths
    // (`run_mix_group` vs `run_mix`) against each other.
    let cache = session.cache();
    let bench_opts =
        if smoke { opts } else { ExperimentOptions { warmup: opts.instructions, ..opts } };
    let bmix = mix_by_name("4MEM-1");
    for i in 0..bmix.cores() {
        let _ = cache.profile(&bmix, i, &bench_opts);
        let _ = cache.ipc_single(&bmix, i, &bench_opts);
    }
    // Wall time on a shared host is noisy (±20% observed between
    // identical runs), so both arms repeat interleaved and each reports
    // its minimum — the standard low-noise estimator for deterministic
    // work. Every repetition re-checks fork-vs-fresh bit-exactness.
    let reps = if smoke { 1 } else { 3 };
    let mut forked_wall = f64::INFINITY;
    let mut fresh_wall = f64::INFINITY;
    let mut bench_wall = 0.0;
    let mut bench_cycles = 0u64;
    let mut forked_hash = 0u64;
    let mut fresh_hash = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let forked = run_mix_group(&bmix, &f2, &bench_opts, cache, None);
        let fw = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let fresh: Vec<MixResult> =
            f2.iter().map(|p| run_mix(&bmix, p, &bench_opts, cache)).collect();
        let sw = t0.elapsed().as_secs_f64();
        forked_hash = results_hash(&forked);
        fresh_hash = results_hash(&fresh);
        if forked_hash != fresh_hash {
            return Err(MelreqError::Divergence(format!(
                "checkpoint-forked results diverge from fresh runs on {} \
                 (forked {forked_hash:016x}, fresh {fresh_hash:016x}): snapshot \
                 fidelity is broken",
                bmix.name
            )));
        }
        forked_wall = forked_wall.min(fw);
        fresh_wall = fresh_wall.min(sw);
        bench_wall += fw + sw;
        bench_cycles += forked.iter().chain(&fresh).map(simulated_cycles).sum::<u64>();
    }
    let fork_speedup = fresh_wall / forked_wall.max(1e-9);
    stages.push(Stage {
        name: "warmup-sharing benchmark".to_string(),
        detail: format!("4MEM-1 x {} policies, forked + fresh, best of {reps}", f2.len()),
        wall_s: bench_wall,
        sim_cycles: bench_cycles,
        results_hash: None,
    });

    let total_wall_s = total_start.elapsed().as_secs_f64();
    let grid_cycles: u64 = stages.iter().map(|s| s.sim_cycles).sum();
    // Aggregate throughput over *elapsed* time (the pooled grid window
    // plus the serial benchmark stage) — this is what the perf guard
    // floors, and it credits worker parallelism.
    let grid_wall: f64 = grid_elapsed + bench_wall;
    let cps = grid_cycles as f64 / grid_wall.max(1e-9);
    let rss = peak_rss_bytes();

    // Drain the host profiler before the artifact is rendered so its
    // aggregated summary can be embedded; the Perfetto trace goes to its
    // own file (wall-clock domain — never merged with sim-time traces).
    let host_profile = if let Some(ppath) = prof_out {
        melreq_prof::disable();
        let profile = melreq_prof::drain();
        let summary = melreq_prof::summarize(&profile, 10);
        let trace = export_host_profile(
            &profile,
            "melreq reproduce",
            &[("summary", summary.render_json()), ("buildinfo", cli_buildinfo(Some(workers)))],
        );
        std::fs::write(ppath, &trace).map_err(|e| io_err(format!("cannot write {ppath}: {e}")))?;
        Some(summary)
    } else {
        None
    };

    // The machine-readable artifact, stamped with the workspace-wide
    // schema version shared by every machine-readable output.
    let mut json = String::new();
    let _ = writeln!(json, "{{\n  \"schema_version\": {},", melreq_core::api::SCHEMA_VERSION);
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    let _ = writeln!(json, "  \"kernel\": \"{kernel}\",");
    let _ = writeln!(json, "  \"threads\": {workers},");
    if let Some(s) = &host_profile {
        let _ = writeln!(json, "  \"host_profile\": {},", s.render_json());
    }
    let _ = writeln!(
        json,
        "  \"options\": {{\"instructions\": {}, \"warmup\": {}, \
         \"profile_instructions\": {}, \"eval_slice\": {}}},",
        opts.instructions, opts.warmup, opts.profile_instructions, opts.eval_slice
    );
    match &store {
        Some(st) => {
            let s = st.stats();
            let _ = writeln!(
                json,
                "  \"store\": {{\"dir\": \"{}\", \"warmup_hits\": {}, \
                 \"warmup_misses\": {}, \"profile_hits\": {}, \"profile_misses\": {}, \
                 \"hit_rate\": {:.4}}},",
                json_escape(&st.dir().display().to_string()),
                s.warmup_hits,
                s.warmup_misses,
                s.profile_hits,
                s.profile_misses,
                s.hit_rate()
            );
        }
        None => json.push_str("  \"store\": null,\n"),
    }
    json.push_str("  \"stages\": [\n");
    for (i, s) in stages.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"detail\": \"{}\", \"wall_s\": {:.6}, \
             \"sim_cycles\": {}, \"results_hash\": {}}}",
            json_escape(&s.name),
            json_escape(&s.detail),
            s.wall_s,
            s.sim_cycles,
            s.results_hash.map_or_else(|| "null".to_string(), |h| format!("\"{h:016x}\"")),
        );
        json.push_str(if i + 1 < stages.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"total_wall_s\": {total_wall_s:.6},");
    let _ = writeln!(json, "  \"sim_cycles\": {grid_cycles},");
    let _ = writeln!(json, "  \"sim_cycles_per_sec\": {cps:.0},");
    let _ = writeln!(
        json,
        "  \"warmup_sharing\": {{\"mix\": \"{}\", \"policies\": {}, \"warmup\": {}, \
         \"instructions\": {}, \"reps\": {reps}, \"group_forked_wall_s\": {:.6}, \
         \"per_policy_fresh_wall_s\": {:.6}, \"fork_speedup\": {:.3}, \
         \"forked_hash\": \"{:016x}\", \"fresh_hash\": \"{:016x}\", \"bit_exact\": true}},",
        json_escape(bmix.name),
        f2.len(),
        bench_opts.warmup,
        bench_opts.instructions,
        forked_wall,
        fresh_wall,
        fork_speedup,
        forked_hash,
        fresh_hash
    );
    match rss {
        Some(b) => {
            let _ = writeln!(json, "  \"peak_rss_bytes\": {b}");
        }
        None => json.push_str("  \"peak_rss_bytes\": null\n"),
    }
    json.push_str("}\n");
    std::fs::write(out_path, &json).map_err(|e| io_err(format!("cannot write {out_path}: {e}")))?;

    // Wall-clock guard against a baseline artifact: the artifact above
    // is written first so a failing run still leaves its evidence.
    let mut guard_line = String::new();
    if let Some(gpath) = guard {
        let base = std::fs::read_to_string(gpath)
            .map_err(|e| io_err(format!("cannot read guard baseline {gpath}: {e}")))?;
        let base_wall = read_json_number(&base, "total_wall_s").ok_or_else(|| {
            usage(format!("guard baseline {gpath} has no \"total_wall_s\" field"))
        })?;
        let ceiling = base_wall / guard_ratio;
        if total_wall_s > ceiling {
            return Err(MelreqError::Timeout(format!(
                "reproduce wall guard FAILED: total {total_wall_s:.3} s exceeds \
                 {ceiling:.3} s (baseline {base_wall:.3} s / ratio {guard_ratio}) \
                 from {gpath}"
            )));
        }
        guard_line = format!(
            "wall guard OK: total {total_wall_s:.3} s <= {ceiling:.3} s \
             (baseline {base_wall:.3} s / ratio {guard_ratio})\n"
        );
    }

    // The human summary.
    let mut out = format!(
        "reproduce ({} grid, {}; kernel {kernel}; {workers} worker threads): \
         {} instr/core, warm-up {}\n\n",
        if smoke { "smoke" } else { "full" },
        if no_checkpoint { "checkpointing disabled" } else { "warm-up sharing on" },
        opts.instructions,
        opts.warmup
    );
    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                s.detail.clone(),
                format!("{:.3} s", s.wall_s),
                if s.sim_cycles == 0 {
                    "-".to_string()
                } else {
                    format!("{:.2}", s.sim_cycles as f64 / s.wall_s.max(1e-9) / 1e6)
                },
            ]
        })
        .collect();
    out.push_str(&format_table(&["stage", "work", "wall", "Mcyc/s"], &rows));
    let _ = writeln!(
        out,
        "\nwarm-up sharing on {} x {} policies: forked {:.3} s vs fresh {:.3} s \
         (best of {reps}) -> {:.2}x, bit-exact (hash {:016x})",
        bmix.name,
        f2.len(),
        forked_wall,
        fresh_wall,
        fork_speedup,
        forked_hash
    );
    if let Some(st) = &store {
        let s = st.stats();
        let _ = writeln!(
            out,
            "store {}: warm-up {}/{} hit, profiles {}/{} hit ({:.0}% overall)",
            st.dir().display(),
            s.warmup_hits,
            s.warmup_hits + s.warmup_misses,
            s.profile_hits,
            s.profile_hits + s.profile_misses,
            s.hit_rate() * 100.0
        );
    }
    let _ = writeln!(
        out,
        "total {total_wall_s:.3} s, {:.2} M sim-cycles/s aggregate, peak RSS {} -> {out_path}",
        cps / 1e6,
        rss.map_or_else(|| "n/a".to_string(), |b| format!("{} MiB", b / (1 << 20)))
    );
    if let (Some(s), Some(ppath)) = (&host_profile, prof_out) {
        let _ = writeln!(out, "\n{}\nhost profile written to {ppath}", s.render_text());
    }
    out.push_str(&guard_line);
    Ok(out)
}

/// `melreq serve`: run the HTTP service in the foreground until SIGTERM
/// (or POST /shutdown) drains it.
#[allow(clippy::too_many_arguments)]
fn cmd_serve(
    addr: &str,
    workers: usize,
    queue_cap: usize,
    store: Option<&str>,
    no_store: bool,
    timeout_ms: Option<u64>,
    response_cache: usize,
    idle_timeout_ms: u64,
    access_log: Option<&str>,
    prof_out: Option<&str>,
) -> Result<String, MelreqError> {
    let store_dir = if no_store {
        None
    } else {
        Some(store.map_or_else(CheckpointStore::default_dir, PathBuf::from))
    };
    let cfg = ServeConfig {
        addr: addr.to_string(),
        workers,
        queue_cap,
        store_dir,
        default_timeout_ms: timeout_ms,
        response_cache,
        idle_timeout_ms,
        access_log: access_log.map(PathBuf::from),
        prof_out: prof_out.map(PathBuf::from),
    };
    melreq_serve::serve_forever(cfg)
}

/// `melreq client`: build the same typed requests the local commands use
/// and send them to a running server — all verbs of one invocation over
/// one keep-alive connection, `Connection: close` only on the last.
fn cmd_client(
    verbs: &[String],
    mix: Option<&str>,
    specs: &[PolicySpec],
    opts: &ExperimentOptions,
    audit: bool,
    addr: &str,
    timeout_ms: Option<u64>,
) -> Result<String, MelreqError> {
    // Build every request up front so a usage error costs no traffic.
    let mut requests: Vec<(&str, &str, Option<String>)> = Vec::new();
    for verb in verbs {
        requests.push(match verb.as_str() {
            "health" => ("GET", "/healthz", None),
            "metrics" => ("GET", "/metrics", None),
            "buildinfo" => ("GET", "/buildinfo", None),
            "policies" => ("GET", "/policies", None),
            "shutdown" => ("POST", "/shutdown", None),
            "run" | "compare" => {
                if verb == "run" && specs.len() != 1 {
                    return Err(usage(format!(
                        "client run takes exactly one policy (got {}); use client compare \
                         for policy sets",
                        specs.len()
                    )));
                }
                let mix = try_mix(mix.expect("parser guarantees a mix for run/compare"))?;
                let mut req = sim_request(&mix, specs, opts, audit);
                if let Some(ms) = timeout_ms {
                    req = req.timeout_ms(ms);
                }
                let path = if verb == "run" { "/run" } else { "/compare" };
                ("POST", path, Some(req.to_json()))
            }
            other => return Err(usage(format!("unknown client verb '{other}'"))),
        });
    }
    // Generous socket timeout: the request's own wall-clock budget (if
    // any) plus slack, else long enough for a full-scale run.
    let socket_timeout =
        Duration::from_millis(timeout_ms.map_or(600_000, |ms| ms.saturating_add(30_000)));
    let mut conn = http::ClientConn::connect(addr, socket_timeout)
        .map_err(|e| io_err(format!("cannot reach {addr}: {e}")))?;
    let mut out = String::new();
    let last = requests.len() - 1;
    for (i, (method, path, body)) in requests.iter().enumerate() {
        let (status, response) = conn
            .request(method, path, body.as_deref(), i == last)
            .map_err(|e| io_err(format!("cannot reach {addr}: {e}")))?;
        match status {
            200 => {
                out.push_str(&response);
                if !response.ends_with('\n') {
                    out.push('\n');
                }
            }
            400 => return Err(usage(format!("server rejected the request: {response}"))),
            429 | 503 => return Err(MelreqError::Overload { retry_after_s: 1 }),
            504 => {
                return Err(MelreqError::Timeout(format!("server timed out the run: {response}")))
            }
            s => return Err(io_err(format!("server answered HTTP {s}: {response}"))),
        }
    }
    Ok(out)
}

/// `melreq loadbench`: drive a running server with the deterministic
/// open-loop generator, write the artifact, and optionally guard cached
/// throughput against a committed baseline.
#[allow(clippy::too_many_arguments)]
fn cmd_loadbench(
    addr: &str,
    rps: f64,
    conns: usize,
    duration_s: f64,
    seed: u64,
    mix: &str,
    out_path: &str,
    guard: Option<&str>,
    guard_ratio: f64,
) -> Result<String, MelreqError> {
    let cfg = melreq_loadgen::LoadConfig {
        addr: addr.to_string(),
        rps,
        conns,
        duration_s,
        seed,
        mix: mix.to_string(),
    };
    let report = melreq_loadgen::run(&cfg)?;
    let artifact = melreq_loadgen::render_json(&cfg, &report);
    std::fs::write(out_path, &artifact)
        .map_err(|e| io_err(format!("cannot write {out_path}: {e}")))?;

    // The artifact is written first so a failing guard still leaves its
    // evidence; guard after (same contract as reproduce --guard).
    let mut guard_line = String::new();
    if let Some(gpath) = guard {
        let base = std::fs::read_to_string(gpath)
            .map_err(|e| io_err(format!("cannot read guard baseline {gpath}: {e}")))?;
        guard_line = melreq_loadgen::guard_check(&artifact, &base, gpath, guard_ratio)?;
        guard_line.push('\n');
    }

    let mut out = format!(
        "loadbench against {addr}: {rps:.0} rps offered for {duration_s:.1} s per phase \
         over {conns} connections (seed {seed}, mix {mix})\n\n"
    );
    let rows: Vec<Vec<String>> = report
        .phases
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                p.offered.to_string(),
                p.completed_200.to_string(),
                (p.http_429 + p.http_504).to_string(),
                (p.http_5xx + p.transport_errors).to_string(),
                (p.cache_responses + p.coalesced).to_string(),
                format!("{:.1}", p.p50_ms),
                format!("{:.1}", p.p99_ms),
                format!("{:.1}", p.throughput_rps),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["phase", "offered", "200", "shed", "errors", "cached", "p50 ms", "p99 ms", "rps"],
        &rows,
    ));
    let _ = writeln!(
        out,
        "\ncached keep-alive throughput {:.1} rps vs cold per-connection {:.1} rps \
         -> {:.1}x -> {out_path}",
        report.cached_throughput_rps,
        report.baseline_throughput_rps,
        report.speedup_cached_vs_baseline
    );
    out.push_str(&guard_line);
    Ok(out)
}

fn try_mix(name: &str) -> Result<Mix, MelreqError> {
    melreq_workloads::all_mixes()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            usage(format!("unknown workload '{name}'; names follow Table 3 (2MEM-1 … 8MIX-6)"))
        })
}

/// Execute a parsed command, returning its rendered output.
pub fn run_command(cmd: &Command) -> Result<String, MelreqError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Config { cores } => Ok(SystemConfig::paper(*cores, PolicyKind::MeLreq).describe()),
        Command::Profile { apps, opts } => cmd_profile(apps, opts),
        Command::Run { mix, policy, opts, audit, obs, json, threads, prof_out } => {
            with_host_profile(prof_out.as_deref(), "melreq run", *threads, || {
                cmd_run(mix, policy, opts, *audit, obs, *json, *threads)
            })
        }
        Command::Trace { mix, policy, out, obs, opts } => cmd_trace(mix, policy, out, obs, opts),
        Command::Audit { mix, policy, opts } => cmd_audit(mix, policy, opts),
        Command::Compare { mix, policies, opts, provenance, json, threads, prof_out } => {
            with_host_profile(prof_out.as_deref(), "melreq compare", *threads, || {
                cmd_compare(mix, policies, opts, *provenance, *json, *threads)
            })
        }
        Command::Sweep { kind, policies, opts, threads } => {
            cmd_sweep(kind, policies, opts, *threads)
        }
        Command::Reproduce {
            smoke,
            no_checkpoint,
            store,
            out,
            opts,
            threads,
            guard,
            guard_ratio,
            prof_out,
        } => cmd_reproduce(
            *smoke,
            *no_checkpoint,
            store.as_deref(),
            out,
            opts,
            *threads,
            guard.as_deref(),
            *guard_ratio,
            prof_out.as_deref(),
        ),
        Command::Serve {
            addr,
            workers,
            queue_cap,
            store,
            no_store,
            timeout_ms,
            response_cache,
            idle_timeout_ms,
            access_log,
            prof_out,
        } => cmd_serve(
            addr,
            *workers,
            *queue_cap,
            store.as_deref(),
            *no_store,
            *timeout_ms,
            *response_cache,
            *idle_timeout_ms,
            access_log.as_deref(),
            prof_out.as_deref(),
        ),
        Command::Client { verbs, mix, policies, opts, audit, addr, timeout_ms } => {
            cmd_client(verbs, mix.as_deref(), policies, opts, *audit, addr, *timeout_ms)
        }
        Command::Loadbench { addr, rps, conns, duration_s, seed, mix, out, guard, guard_ratio } => {
            cmd_loadbench(
                addr,
                *rps,
                *conns,
                *duration_s,
                *seed,
                mix,
                out,
                guard.as_deref(),
                *guard_ratio,
            )
        }
        Command::Analyze { json, fix_fingerprint, root, out } => {
            cmd_analyze(*json, *fix_fingerprint, root.as_deref(), out.as_deref())
        }
    }
}

/// The workspace root the analyzer should scan: an explicit `--root`,
/// else the nearest ancestor of the current directory that contains
/// `crates/snap` (so `melreq analyze` works from anywhere inside the
/// repo).
fn analyze_root(explicit: Option<&str>) -> Result<PathBuf, MelreqError> {
    if let Some(r) = explicit {
        return Ok(PathBuf::from(r));
    }
    let start = std::env::current_dir().map_err(|e| io_err(format!("current dir: {e}")))?;
    let mut dir = start.as_path();
    loop {
        if dir.join("crates/snap/src/lib.rs").is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => {
                return Err(usage(format!(
                    "no melreq workspace found above {} — pass --root DIR",
                    start.display()
                )))
            }
        }
    }
}

fn cmd_analyze(
    json: bool,
    fix_fingerprint: bool,
    root: Option<&str>,
    out: Option<&str>,
) -> Result<String, MelreqError> {
    let root = analyze_root(root)?;
    let report = melreq_analyze::analyze(&root, fix_fingerprint).map_err(io_err)?;
    let rendered = if json { report.render_json() } else { report.render_text() };
    if let Some(path) = out {
        // The artifact is written before the gate decision so CI keeps
        // the findings report even when the command exits nonzero.
        std::fs::write(path, &rendered).map_err(|e| io_err(format!("{path}: {e}")))?;
    }
    if report.clean() {
        Ok(rendered)
    } else {
        Err(MelreqError::Analysis(rendered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentOptions {
        ExperimentOptions::quick()
    }

    /// The profiler's enable/drain state is process-global; tests that
    /// turn it on serialize here so one drain can't steal another's spans.
    static PROF_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn config_renders() {
        let s = run_command(&Command::Config { cores: 4 }).unwrap();
        assert!(s.contains("4 x 4-issue"));
        assert!(s.contains("ME-LREQ"));
    }

    #[test]
    fn help_renders_usage() {
        let s = run_command(&Command::Help).unwrap();
        assert!(s.contains("USAGE"));
    }

    #[test]
    fn unknown_mix_is_an_error() {
        let e =
            cmd_run("9MEM-9", &PolicySpec::HfRf, &quick(), false, &ObsArgs::default(), false, None);
        assert!(e.is_err());
        let e = e.unwrap_err();
        assert_eq!(e.exit_code(), 2, "unknown mix is a usage error");
        assert!(e.to_string().contains("Table 3"));
    }

    #[test]
    fn mix_lookup_is_case_insensitive() {
        assert!(try_mix("2mem-1").is_ok());
    }

    #[test]
    fn profile_rejects_unknown_apps() {
        let e = cmd_profile(&["notanapp".to_string()], &quick());
        assert!(e.is_err());
    }

    #[test]
    fn profile_subset_renders_rows() {
        let s = cmd_profile(&["eon".to_string()], &quick()).unwrap();
        assert!(s.contains("eon"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3); // header + rule + one row
    }

    #[test]
    fn audited_run_reports_clean() {
        let s = cmd_run(
            "2MEM-1",
            &PolicySpec::MeLreq,
            &quick(),
            true,
            &ObsArgs::default(),
            false,
            None,
        )
        .unwrap();
        assert!(s.contains("0 violations"));
        assert!(s.contains("stream hash"));
        let s =
            cmd_run("2MEM-1", &PolicySpec::Fq, &quick(), true, &ObsArgs::default(), false, None)
                .unwrap();
        assert!(s.contains("0 violations"), "FQ audits through the registry path:\n{s}");
    }

    #[test]
    fn audit_subcommand_verifies_determinism() {
        let s = cmd_audit("2MEM-1", &PolicySpec::HfRf, &quick()).unwrap();
        assert!(s.contains("audit OK"));
        assert!(s.contains("pass 2"));
    }

    #[test]
    fn reproduce_smoke_writes_artifact_and_verifies_fork() {
        let dir =
            std::env::temp_dir().join(format!("melreq-reproduce-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("sweep.json");
        let tiny = ExperimentOptions {
            instructions: 3000,
            warmup: 1500,
            profile_instructions: 1500,
            ..ExperimentOptions::default()
        };
        let store = dir.join("store");
        let s = cmd_reproduce(
            true,
            false,
            Some(store.to_str().unwrap()),
            out.to_str().unwrap(),
            &tiny,
            Some(2),
            None,
            0.25,
            None,
        )
        .unwrap();
        assert!(s.contains("bit-exact"), "summary must confirm the fork gate:\n{s}");
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains(&format!("\"schema_version\": {}", melreq_core::api::SCHEMA_VERSION)));
        assert!(json.contains("\"mode\": \"smoke\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"results_hash\": \""), "grid stages must carry a hash:\n{json}");
        assert!(json.contains("\"bit_exact\": true"));
        assert!(json.contains("\"fork_speedup\""));
        assert!(json.contains("\"store\": {"));

        // Guard against its own artifact: a warm re-run is far inside
        // any sane ceiling, so this must pass and say so.
        let s2 = cmd_reproduce(
            true,
            false,
            Some(store.to_str().unwrap()),
            out.to_str().unwrap(),
            &tiny,
            Some(2),
            Some(out.to_str().unwrap()),
            0.25,
            None,
        )
        .unwrap();
        assert!(s2.contains("wall guard OK"), "guard line missing:\n{s2}");
        // An impossibly fast baseline must trip the guard with exit 6.
        let fake = dir.join("fake-baseline.json");
        std::fs::write(&fake, "{\"total_wall_s\": 0.000001}\n").unwrap();
        let e = cmd_reproduce(
            true,
            false,
            Some(store.to_str().unwrap()),
            out.to_str().unwrap(),
            &tiny,
            Some(2),
            Some(fake.to_str().unwrap()),
            0.25,
            None,
        )
        .unwrap_err();
        assert_eq!(e.exit_code(), 6, "wall-guard failure is a timeout-class error: {e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The registry collapse must not move a single bit of the paper
    /// reproduction: the smoke grid's Figure 2 results hash and the
    /// fork-vs-fresh gate hash are pinned to the values the pre-registry
    /// tree produced. If either changes, a scheduling or warm-up code
    /// path changed behavior — not just its plumbing.
    #[test]
    fn reproduce_smoke_hashes_are_pinned() {
        let dir = std::env::temp_dir().join(format!("melreq-pinned-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("sweep.json");
        cmd_reproduce(
            true,
            false,
            Some(dir.join("store").to_str().unwrap()),
            out.to_str().unwrap(),
            &ExperimentOptions::default(),
            Some(2),
            None,
            0.25,
            None,
        )
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(
            json.contains("\"results_hash\": \"e1796b05cb5a4d40\""),
            "Figure 2 smoke-grid results moved:\n{json}"
        );
        assert!(
            json.contains("\"forked_hash\": \"94a4a2d5a267cb70\""),
            "fork-vs-fresh gate results moved:\n{json}"
        );
        assert!(json.contains("\"bit_exact\": true"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reproduce_with_profile_embeds_summary_and_writes_trace() {
        let _guard = PROF_LOCK.lock().unwrap();
        let dir =
            std::env::temp_dir().join(format!("melreq-repro-prof-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("sweep.json");
        let prof = dir.join("prof.json");
        let tiny = ExperimentOptions {
            instructions: 3000,
            warmup: 1500,
            profile_instructions: 1500,
            ..ExperimentOptions::default()
        };
        let s = cmd_reproduce(
            true,
            false,
            Some(dir.join("store").to_str().unwrap()),
            out.to_str().unwrap(),
            &tiny,
            Some(2),
            None,
            0.25,
            Some(prof.to_str().unwrap()),
        )
        .unwrap();
        assert!(s.contains("host profile written to"), "summary must name the trace:\n{s}");
        let artifact = std::fs::read_to_string(&out).unwrap();
        assert!(
            artifact.contains("\"host_profile\""),
            "artifact must embed the profile summary:\n{artifact}"
        );
        let trace = std::fs::read_to_string(&prof).unwrap();
        assert!(trace.contains("\"traceEvents\""), "Perfetto envelope missing");
        assert!(trace.contains("\"summary\":"), "summary block missing from trace");
        assert!(trace.contains("\"buildinfo\":"), "buildinfo block missing from trace");
        assert!(trace.contains("worker "), "executor worker tracks missing:\n{trace:.300}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn host_profile_wrapper_writes_trace_and_passes_through_on_none() {
        let _guard = PROF_LOCK.lock().unwrap();
        // Without --profile the wrapper is a pure pass-through.
        let s = with_host_profile(None, "melreq run", None, || Ok("plain".to_string())).unwrap();
        assert_eq!(s, "plain");
        let dir = std::env::temp_dir().join(format!("melreq-runprof-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prof.json");
        let s = with_host_profile(Some(path.to_str().unwrap()), "melreq run", Some(2), || {
            cmd_run(
                "2MEM-1",
                &PolicySpec::MeLreq,
                &quick(),
                false,
                &ObsArgs::default(),
                false,
                Some(2),
            )
        })
        .unwrap();
        assert!(s.contains("SMT speedup"), "the run output must survive the wrapper:\n{s}");
        assert!(s.contains("host profile written to"), "summary line missing:\n{s}");
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"buildinfo\":"), "buildinfo block missing");
        assert!(trace.contains("session"), "facade session span missing from trace");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_and_compare_work_end_to_end() {
        let s = cmd_run(
            "2MEM-1",
            &PolicySpec::MeLreq,
            &quick(),
            false,
            &ObsArgs::default(),
            false,
            None,
        )
        .unwrap();
        assert!(s.contains("wupwise"));
        assert!(s.contains("SMT speedup"));
        assert!(s.contains("mean queue occupancy"), "controller stats missing:\n{s}");
        assert!(s.contains("hit rate"), "per-channel traffic table missing:\n{s}");
        let s = cmd_compare(
            "2MEM-1",
            &[PolicySpec::HfRf, PolicySpec::Fq],
            &quick(),
            false,
            false,
            None,
        )
        .unwrap();
        assert!(s.contains("FQ"));
        assert!(s.contains("+0.0%")); // baseline row
    }

    #[test]
    fn run_json_is_versioned_and_deterministic() {
        let run = || {
            cmd_run(
                "2mem-1", // case-insensitive lookup feeds the canonical name
                &PolicySpec::MeLreq,
                &quick(),
                false,
                &ObsArgs::default(),
                true,
                None,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "--json output must be byte-deterministic");
        assert!(a.starts_with(&format!(
            "{{\"schema_version\":{},\"mix\":\"2MEM-1\"",
            melreq_core::api::SCHEMA_VERSION
        )));
        assert!(a.contains("\"policies\":[{\"policy\":\"ME-LREQ\""));
        assert!(!a.contains('\n'), "the report is a single line");
        // And it must match the facade's own rendering for the same
        // request — the CLI adds nothing on top.
        let req = SimRequest::new("2MEM-1").policy(PolicySpec::MeLreq).opts(quick());
        let direct = Session::new().run(&req, &RunControl::default()).unwrap().to_json();
        assert_eq!(a, direct);
    }

    #[test]
    fn json_rejects_obs_flags_and_provenance() {
        let obs = ObsArgs { provenance: true, ..ObsArgs::default() };
        let e =
            cmd_run("2MEM-1", &PolicySpec::MeLreq, &quick(), false, &obs, true, None).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        let e = cmd_compare("2MEM-1", &[PolicySpec::HfRf], &quick(), true, true, None).unwrap_err();
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn compare_json_reports_every_policy() {
        let s =
            cmd_compare("2MEM-1", &[PolicySpec::HfRf, PolicySpec::Fq], &quick(), false, true, None)
                .unwrap();
        assert!(s.contains("\"policy\":\"HF-RF\""));
        assert!(s.contains("\"policy\":\"FQ\""));
        assert!(s.starts_with("{\"schema_version\":"));
    }

    #[test]
    fn client_errors_without_a_server() {
        // Port 1 on localhost: connection refused, reported as I/O.
        let e =
            cmd_client(&["health".to_string()], None, &[], &quick(), false, "127.0.0.1:1", None)
                .unwrap_err();
        assert_eq!(e.exit_code(), 3, "unreachable server is an I/O error: {e}");
        let e = cmd_client(
            &["run".to_string()],
            Some("2MEM-1"),
            &[PolicySpec::HfRf, PolicySpec::Fq],
            &quick(),
            false,
            "127.0.0.1:1",
            None,
        )
        .unwrap_err();
        assert_eq!(e.exit_code(), 2, "client run rejects policy sets before connecting");
    }

    #[test]
    fn trace_writes_valid_chrome_json_and_series() {
        let dir = std::env::temp_dir().join(format!("melreq-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let series = dir.join("series.csv");
        let obs = ObsArgs {
            series_out: Some(series.to_str().unwrap().to_string()),
            sample_epoch: Some(2_000),
            ..ObsArgs::default()
        };
        let s = cmd_trace("2MEM-1", &PolicySpec::MeLreq, trace.to_str().unwrap(), &obs, &quick())
            .unwrap();
        assert!(s.contains("ui.perfetto.dev"), "summary must point at the viewer:\n{s}");
        assert!(s.contains("decision provenance"), "provenance table missing:\n{s}");
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.contains("\"traceEvents\""), "Chrome trace_event envelope missing");
        assert!(json.contains("\"ph\": \"X\""), "no duration slices emitted");
        let csv = std::fs::read_to_string(&series).unwrap();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            format!("# schema_version={}", melreq_snap::SCHEMA_VERSION),
            "series CSV must lead with the schema stamp:\n{csv}"
        );
        assert!(lines.next().unwrap().starts_with("cycle,"), "series CSV header:\n{csv}");
        assert!(lines.next().is_some(), "series CSV must have data rows:\n{csv}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_covers_zoo_policies() {
        // FQ has no dedicated provenance rule: its grants attribute to
        // the `external` rule, but the trace itself is complete.
        let s = cmd_trace("2MEM-1", &PolicySpec::Fq, "/dev/null", &ObsArgs::default(), &quick())
            .unwrap();
        assert!(s.contains("scheduler decisions"), "trace summary missing:\n{s}");
        let s = cmd_trace(
            "2MEM-1",
            &PolicySpec::parse("bliss(threshold=2)").unwrap(),
            "/dev/null",
            &ObsArgs::default(),
            &quick(),
        )
        .unwrap();
        assert!(s.contains("BLISS"), "parameterized policy must trace:\n{s}");
    }

    #[test]
    fn run_with_obs_flags_writes_trace_and_reports_provenance() {
        let dir = std::env::temp_dir().join(format!("melreq-runobs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("run-trace.json");
        let obs = ObsArgs {
            trace_out: Some(trace.to_str().unwrap().to_string()),
            provenance: true,
            ..ObsArgs::default()
        };
        let s = cmd_run("2MEM-1", &PolicySpec::HfRf, &quick(), true, &obs, false, None).unwrap();
        assert!(s.contains("0 violations"), "audit and tracing must coexist:\n{s}");
        assert!(s.contains("decision provenance"), "provenance missing:\n{s}");
        assert!(trace.exists());
        let s = cmd_run("2MEM-1", &PolicySpec::Fq, &quick(), false, &obs, false, None).unwrap();
        assert!(s.contains("decision provenance"), "FQ provenance must render:\n{s}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_provenance_renders_rule_totals() {
        let s = cmd_compare(
            "2MEM-1",
            &[PolicySpec::HfRf, PolicySpec::MeLreq],
            &quick(),
            true,
            false,
            None,
        )
        .unwrap();
        assert!(s.contains("decision provenance"), "provenance table missing:\n{s}");
        assert!(s.contains("ME-LREQ"), "both policies must appear:\n{s}");
        let s = cmd_compare("2MEM-1", &[PolicySpec::Fq], &quick(), true, false, None).unwrap();
        assert!(s.contains("decision provenance"), "FQ provenance must render:\n{s}");
    }
}
