//! Command implementations. Each command renders to a `String` so it can
//! be tested without capturing stdout.

use crate::parse::{Command, PolicySpec, USAGE};
use melreq_core::experiment::{
    run_grid_with_store, run_mix, run_mix_audited, run_mix_custom, run_mix_group,
    ExperimentOptions, MixResult, ProfileCache,
};
use melreq_core::profile::profile_app;
use melreq_core::report::{format_table, pct_over};
use melreq_core::{CheckpointStore, SystemConfig};
use melreq_memctrl::ext::{FairQueueing, StallTimeFair};
use melreq_memctrl::policy::PolicyKind;
use melreq_workloads::{mix_by_name, mixes_for_cores, spec2000, Mix, MixKind, SliceKind};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn run_with_spec(
    mix: &Mix,
    spec: &PolicySpec,
    opts: &ExperimentOptions,
    cache: &ProfileCache,
) -> MixResult {
    match spec {
        PolicySpec::Paper(kind) => run_mix(mix, kind, opts, cache),
        PolicySpec::Fq => run_mix_custom(
            mix,
            "FQ",
            |_me, cores, _seed| (Box::new(FairQueueing::new(cores)), true),
            None,
            opts,
            cache,
        ),
        PolicySpec::Stf => run_mix_custom(
            mix,
            "STF",
            |_me, cores, _seed| (Box::new(StallTimeFair::new(cores)), true),
            None,
            opts,
            cache,
        ),
    }
}

fn cmd_profile(apps: &[String], opts: &ExperimentOptions) -> Result<String, String> {
    let roster = spec2000();
    let selected: Vec<_> = if apps.is_empty() {
        roster
    } else {
        let wanted: Vec<&str> = apps.iter().map(std::string::String::as_str).collect();
        let picked: Vec<_> = roster.into_iter().filter(|a| wanted.contains(&a.name)).collect();
        if picked.len() != wanted.len() {
            return Err(format!(
                "unknown application(s) in {wanted:?}; names are SPEC2000 benchmarks (swim, mcf, ...)"
            ));
        }
        picked
    };
    let rows: Vec<Vec<String>> = selected
        .iter()
        .map(|a| {
            let p = profile_app(a, SliceKind::Profiling, opts.profile_instructions);
            vec![
                a.name.to_string(),
                a.class.to_string(),
                format!("{:.2}", p.ipc),
                format!("{:.3}", p.bw_gbs),
                format!("{:.3}", p.me),
            ]
        })
        .collect();
    Ok(format_table(&["app", "class", "IPC_1", "BW (GB/s)", "ME"], &rows))
}

fn cmd_run(
    mix_name: &str,
    spec: &PolicySpec,
    opts: &ExperimentOptions,
    audit: bool,
) -> Result<String, String> {
    let mix = try_mix(mix_name)?;
    let cache = ProfileCache::new();
    let (r, report) = if audit {
        let PolicySpec::Paper(kind) = spec else {
            return Err("--audit checks the paper's policies; FQ/STF are externally \
                        built and expose no invariants to verify"
                .to_string());
        };
        let (r, report) = run_mix_audited(&mix, kind, opts, &cache);
        (r, Some(report))
    } else {
        (run_with_spec(&mix, spec, opts, &cache), None)
    };
    let mut out = format!(
        "{} under {}: SMT speedup {:.3}, unfairness {:.3}, mean read latency {:.0} cycles\n\n",
        mix.name, r.policy, r.smt_speedup, r.unfairness, r.mean_read_latency
    );
    let rows: Vec<Vec<String>> = mix
        .apps()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            vec![
                format!("core {i}"),
                a.name.to_string(),
                format!("{:.3}", r.me[i]),
                format!("{:.3}", r.ipc_single[i]),
                format!("{:.3}", r.ipc_multi[i]),
                format!("{:.2}x", r.ipc_single[i] / r.ipc_multi[i].max(1e-9)),
                format!("{:.0}", r.read_latency[i]),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["core", "app", "ME", "IPC alone", "IPC shared", "slowdown", "read lat"],
        &rows,
    ));
    // Host throughput of the multiprogrammed run (profiling excluded).
    // Instructions are approximated by the per-core targets; early
    // finishers keep committing, so the true rate is slightly higher.
    let secs = r.wall.as_secs_f64().max(1e-9);
    let instr = (opts.warmup + opts.instructions).saturating_mul(mix.cores() as u64);
    out.push_str(&format!(
        "\nhost throughput: {:.2} M sim-cycles/s, ~{:.2} M instr/s \
         ({} cycles, {} cores in {:.3} s)\n",
        r.sim_cycles as f64 / secs / 1e6,
        instr as f64 / secs / 1e6,
        r.sim_cycles,
        mix.cores(),
        secs
    ));
    if r.timed_out {
        out.push_str("\nWARNING: run hit the cycle safety net before completing\n");
    }
    if let Some(report) = report {
        if !report.is_clean() {
            return Err(format!("{out}\n{}", report.render()));
        }
        out.push_str(&format!(
            "\naudit: {} events checked, 0 violations, stream hash {:016x}\n",
            report.events, report.stream_hash
        ));
    }
    Ok(out)
}

fn cmd_audit(
    mix_name: &str,
    spec: &PolicySpec,
    opts: &ExperimentOptions,
) -> Result<String, String> {
    let PolicySpec::Paper(kind) = spec else {
        return Err("audit checks the paper's policies; FQ/STF are externally built \
                    and expose no invariants to verify"
            .to_string());
    };
    let mix = try_mix(mix_name)?;
    let cache = ProfileCache::new();
    let (_, a) = run_mix_audited(&mix, kind, opts, &cache);
    let (_, b) = run_mix_audited(&mix, kind, opts, &cache);
    let mut out = format!(
        "{} under {}: {} events checked per pass\n  pass 1: hash {:016x}, {} violation(s)\n  pass 2: hash {:016x}, {} violation(s)\n",
        mix.name,
        kind.name(),
        a.events,
        a.stream_hash,
        a.total_violations,
        b.stream_hash,
        b.total_violations,
    );
    if !a.is_clean() || !b.is_clean() {
        return Err(format!("{out}\n{}\n{}", a.render(), b.render()));
    }
    if a.stream_hash != b.stream_hash {
        return Err(format!("{out}\ndeterminism FAILED: event-stream hashes differ"));
    }
    out.push_str("audit OK: both passes clean, event streams identical\n");
    Ok(out)
}

fn cmd_compare(
    mix_name: &str,
    specs: &[PolicySpec],
    opts: &ExperimentOptions,
) -> Result<String, String> {
    let mix = try_mix(mix_name)?;
    let cache = ProfileCache::new();
    let results: Vec<MixResult> =
        specs.iter().map(|s| run_with_spec(&mix, s, opts, &cache)).collect();
    let base = results[0].smt_speedup;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.policy.to_string(),
                format!("{:.3}", r.smt_speedup),
                pct_over(r.smt_speedup, base),
                format!("{:.0}", r.mean_read_latency),
                format!("{:.3}", r.unfairness),
            ]
        })
        .collect();
    Ok(format!(
        "{} ({}):\n\n{}",
        mix.name,
        mix.apps().iter().map(|a| a.name).collect::<Vec<_>>().join(", "),
        format_table(&["policy", "speedup", "vs first", "read lat", "unfairness"], &rows)
    ))
}

fn cmd_sweep(kind: &str, specs: &[PolicySpec], opts: &ExperimentOptions) -> Result<String, String> {
    let kinds: Vec<MixKind> = match kind {
        "mem" => vec![MixKind::Mem],
        "mix" => vec![MixKind::Mixed],
        _ => vec![MixKind::Mem, MixKind::Mixed],
    };
    let cache = ProfileCache::new();
    let mut out = String::new();
    for k in kinds {
        out.push_str(&format!("-- {k:?} workloads --\n"));
        let mut rows = Vec::new();
        for cores in [2usize, 4, 8] {
            let mixes = mixes_for_cores(cores, Some(k));
            let mut row = vec![format!("{cores}-core")];
            // Geometric mean of per-mix ratios vs the first policy.
            let mut base: Vec<f64> = Vec::new();
            for (pi, spec) in specs.iter().enumerate() {
                let mut log_sum = 0.0;
                for (mi, mix) in mixes.iter().enumerate() {
                    let r = run_with_spec(mix, spec, opts, &cache);
                    if pi == 0 {
                        base.push(r.smt_speedup);
                    }
                    log_sum += (r.smt_speedup / base[mi]).ln();
                }
                let g = (log_sum / mixes.len() as f64).exp();
                row.push(pct_over(g, 1.0));
            }
            rows.push(row);
        }
        let headers: Vec<&str> = std::iter::once("cores")
            .chain(specs.iter().map(super::parse::PolicySpec::name))
            .collect();
        out.push_str(&format_table(&headers, &rows));
        out.push('\n');
    }
    Ok(out)
}

/// Peak resident-set size of this process in bytes (Linux `VmHWM`;
/// `None` elsewhere or when procfs is unavailable).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Cycles this result actually simulated: the measured window alone when
/// the warm-up boundary was restored, the whole run otherwise.
fn simulated_cycles(r: &MixResult) -> u64 {
    if r.warmup_from_checkpoint {
        r.measured_cycles
    } else {
        r.sim_cycles
    }
}

/// FNV-1a fingerprint of the paper-metric outputs of a result set: a
/// checkpoint-forked group and per-policy fresh runs of the same inputs
/// must hash identically, bit for bit.
fn results_hash(results: &[MixResult]) -> u64 {
    let mut bytes = Vec::new();
    for r in results {
        bytes.extend_from_slice(r.policy.as_bytes());
        bytes.extend_from_slice(&r.sim_cycles.to_le_bytes());
        bytes.extend_from_slice(&r.measured_cycles.to_le_bytes());
        for v in r.ipc_multi.iter().chain(r.read_latency.iter()) {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    melreq_snap::fnv1a(&bytes)
}

/// One timed stage of the reproduction sweep.
struct Stage {
    name: String,
    detail: String,
    wall_s: f64,
    sim_cycles: u64,
}

/// `melreq reproduce`: the full paper — Table 2 profiles, the Figure
/// 2/4/5 grid, the Figure 3 fixed-priority study and the offline-vs-
/// online ablation — with one shared warm-up per mix, persisted across
/// invocations through the checkpoint store. Writes the sweep artifact
/// (`BENCH_sweep.json`) as a side effect and returns the human summary.
///
/// The warm-up-sharing benchmark stage always runs the 5-policy `4MEM-1`
/// group twice — snapshot-forked and per-policy fresh — and hard-fails
/// if the two result sets are not bit-identical, in smoke and full mode
/// alike.
#[allow(clippy::too_many_lines)]
fn cmd_reproduce(
    smoke: bool,
    no_checkpoint: bool,
    store_dir: Option<&str>,
    out_path: &str,
    opts: &ExperimentOptions,
) -> Result<String, String> {
    // Smoke defaults to the quick scale; explicit scale flags still win.
    let opts = if smoke && *opts == ExperimentOptions::default() {
        ExperimentOptions::quick()
    } else {
        *opts
    };
    let store = if no_checkpoint {
        None
    } else {
        let dir = store_dir.map_or_else(CheckpointStore::default_dir, PathBuf::from);
        Some(Arc::new(
            CheckpointStore::open(&dir)
                .map_err(|e| format!("cannot open checkpoint store {}: {e}", dir.display()))?,
        ))
    };
    let cache = match &store {
        Some(st) => ProfileCache::with_store(st.clone()),
        None => ProfileCache::new(),
    };
    let kernel = if opts.tick_exact { "tick-exact" } else { "fast-forward" };

    let total_start = Instant::now();
    let mut stages: Vec<Stage> = Vec::new();

    // Table 2: single-core profiles of the full application roster.
    {
        let t0 = Instant::now();
        let apps = spec2000();
        let mut simulated = 0usize;
        for a in &apps {
            let key = CheckpointStore::profile_key(
                a.code,
                SliceKind::Profiling,
                opts.profile_instructions,
            );
            if let Some(st) = &store {
                if st.load_profile(key).is_some() {
                    continue;
                }
            }
            let p = profile_app(a, SliceKind::Profiling, opts.profile_instructions);
            simulated += 1;
            if let Some(st) = &store {
                st.store_profile(key, &p);
            }
        }
        stages.push(Stage {
            name: "table2".to_string(),
            detail: format!("{} applications, {simulated} profiled here", apps.len()),
            wall_s: t0.elapsed().as_secs_f64(),
            sim_cycles: 0,
        });
    }

    // The multiprogrammed grid, one run_grid stage at a time.
    let f2 = PolicyKind::figure2_set();
    let mut grid_stages: Vec<(String, Vec<Mix>, Vec<PolicyKind>)> = Vec::new();
    if smoke {
        let mixes: Vec<Mix> = mixes_for_cores(2, Some(MixKind::Mem)).into_iter().take(3).collect();
        grid_stages.push(("fig2 (2-core MEM subset)".to_string(), mixes, f2.clone()));
    } else {
        for (kind, kn) in [(MixKind::Mem, "MEM"), (MixKind::Mixed, "MIX")] {
            for cores in [2usize, 4, 8] {
                let mixes = mixes_for_cores(cores, Some(kind));
                if mixes.is_empty() {
                    continue;
                }
                grid_stages.push((format!("fig2/4/5 {cores}-core {kn}"), mixes, f2.clone()));
            }
        }
        grid_stages.push((
            "fig3 4-core fixed priority".to_string(),
            mixes_for_cores(4, None),
            PolicyKind::figure3_set(4),
        ));
        grid_stages.push((
            "ablation offline vs online ME".to_string(),
            vec![mix_by_name("4MEM-4")],
            vec![
                PolicyKind::MeLreq,
                PolicyKind::MeLreqOnline { epoch_cycles: 50_000 },
                PolicyKind::MeLreqOnline { epoch_cycles: 10_000 },
            ],
        ));
    }
    let mut timed_out = 0usize;
    for (name, mixes, policies) in &grid_stages {
        let t0 = Instant::now();
        // --no-checkpoint: one single-policy grid per policy, so every
        // (mix, policy) cell warms up from scratch — the baseline the
        // sharing speedup is quoted against.
        let results: Vec<MixResult> = if no_checkpoint {
            policies
                .iter()
                .flat_map(|p| {
                    run_grid_with_store(mixes, std::slice::from_ref(p), &opts, &cache, None)
                })
                .collect()
        } else {
            run_grid_with_store(mixes, policies, &opts, &cache, store.as_deref())
        };
        timed_out += results.iter().filter(|r| r.timed_out).count();
        stages.push(Stage {
            name: name.clone(),
            detail: format!("{} mixes x {} policies", mixes.len(), policies.len()),
            wall_s: t0.elapsed().as_secs_f64(),
            sim_cycles: results.iter().map(simulated_cycles).sum(),
        });
    }
    if timed_out > 0 {
        return Err(format!("{timed_out} grid run(s) hit the cycle safety net"));
    }

    // Warm-up-sharing benchmark + fork-vs-fresh divergence gate. The
    // forked arm deliberately bypasses the persistent store (a warm store
    // would skip the one warm-up the fork amortizes); profiles are
    // pre-warmed so neither arm pays them. Full mode benchmarks at a
    // warm-up as long as the measured window — the regime short CI slices
    // stand in for (the paper's 100 M-instruction slices are mostly
    // warm-up), where sharing visibly amortizes.
    let bench_opts =
        if smoke { opts } else { ExperimentOptions { warmup: opts.instructions, ..opts } };
    let bmix = mix_by_name("4MEM-1");
    for i in 0..bmix.cores() {
        let _ = cache.profile(&bmix, i, &bench_opts);
        let _ = cache.ipc_single(&bmix, i, &bench_opts);
    }
    // Wall time on a shared host is noisy (±20% observed between
    // identical runs), so both arms repeat interleaved and each reports
    // its minimum — the standard low-noise estimator for deterministic
    // work. Every repetition re-checks fork-vs-fresh bit-exactness.
    let reps = if smoke { 1 } else { 3 };
    let mut forked_wall = f64::INFINITY;
    let mut fresh_wall = f64::INFINITY;
    let mut bench_wall = 0.0;
    let mut bench_cycles = 0u64;
    let mut forked_hash = 0u64;
    let mut fresh_hash = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let forked = run_mix_group(&bmix, &f2, &bench_opts, &cache, None);
        let fw = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let fresh: Vec<MixResult> =
            f2.iter().map(|p| run_mix(&bmix, p, &bench_opts, &cache)).collect();
        let sw = t0.elapsed().as_secs_f64();
        forked_hash = results_hash(&forked);
        fresh_hash = results_hash(&fresh);
        if forked_hash != fresh_hash {
            return Err(format!(
                "checkpoint-forked results diverge from fresh runs on {} \
                 (forked {forked_hash:016x}, fresh {fresh_hash:016x}): snapshot \
                 fidelity is broken",
                bmix.name
            ));
        }
        forked_wall = forked_wall.min(fw);
        fresh_wall = fresh_wall.min(sw);
        bench_wall += fw + sw;
        bench_cycles += forked.iter().chain(&fresh).map(simulated_cycles).sum::<u64>();
    }
    let fork_speedup = fresh_wall / forked_wall.max(1e-9);
    stages.push(Stage {
        name: "warmup-sharing benchmark".to_string(),
        detail: format!("4MEM-1 x {} policies, forked + fresh, best of {reps}", f2.len()),
        wall_s: bench_wall,
        sim_cycles: bench_cycles,
    });

    let total_wall_s = total_start.elapsed().as_secs_f64();
    let grid_cycles: u64 = stages.iter().map(|s| s.sim_cycles).sum();
    let grid_wall: f64 = stages.iter().filter(|s| s.sim_cycles > 0).map(|s| s.wall_s).sum();
    let cps = grid_cycles as f64 / grid_wall.max(1e-9);
    let rss = peak_rss_bytes();

    // The machine-readable artifact.
    let mut json = String::new();
    json.push_str("{\n  \"schema\": 1,\n");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    let _ = writeln!(json, "  \"kernel\": \"{kernel}\",");
    let _ = writeln!(
        json,
        "  \"options\": {{\"instructions\": {}, \"warmup\": {}, \
         \"profile_instructions\": {}, \"eval_slice\": {}}},",
        opts.instructions, opts.warmup, opts.profile_instructions, opts.eval_slice
    );
    match &store {
        Some(st) => {
            let s = st.stats();
            let _ = writeln!(
                json,
                "  \"store\": {{\"dir\": \"{}\", \"warmup_hits\": {}, \
                 \"warmup_misses\": {}, \"profile_hits\": {}, \"profile_misses\": {}, \
                 \"hit_rate\": {:.4}}},",
                json_escape(&st.dir().display().to_string()),
                s.warmup_hits,
                s.warmup_misses,
                s.profile_hits,
                s.profile_misses,
                s.hit_rate()
            );
        }
        None => json.push_str("  \"store\": null,\n"),
    }
    json.push_str("  \"stages\": [\n");
    for (i, s) in stages.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"detail\": \"{}\", \"wall_s\": {:.6}, \
             \"sim_cycles\": {}}}",
            json_escape(&s.name),
            json_escape(&s.detail),
            s.wall_s,
            s.sim_cycles
        );
        json.push_str(if i + 1 < stages.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"total_wall_s\": {total_wall_s:.6},");
    let _ = writeln!(json, "  \"sim_cycles\": {grid_cycles},");
    let _ = writeln!(json, "  \"sim_cycles_per_sec\": {cps:.0},");
    let _ = writeln!(
        json,
        "  \"warmup_sharing\": {{\"mix\": \"{}\", \"policies\": {}, \"warmup\": {}, \
         \"instructions\": {}, \"reps\": {reps}, \"group_forked_wall_s\": {:.6}, \
         \"per_policy_fresh_wall_s\": {:.6}, \"fork_speedup\": {:.3}, \
         \"forked_hash\": \"{:016x}\", \"fresh_hash\": \"{:016x}\", \"bit_exact\": true}},",
        json_escape(bmix.name),
        f2.len(),
        bench_opts.warmup,
        bench_opts.instructions,
        forked_wall,
        fresh_wall,
        fork_speedup,
        forked_hash,
        fresh_hash
    );
    match rss {
        Some(b) => {
            let _ = writeln!(json, "  \"peak_rss_bytes\": {b}");
        }
        None => json.push_str("  \"peak_rss_bytes\": null\n"),
    }
    json.push_str("}\n");
    std::fs::write(out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;

    // The human summary.
    let mut out = format!(
        "reproduce ({} grid, {}; kernel {kernel}): {} instr/core, warm-up {}\n\n",
        if smoke { "smoke" } else { "full" },
        if no_checkpoint { "checkpointing disabled" } else { "warm-up sharing on" },
        opts.instructions,
        opts.warmup
    );
    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                s.detail.clone(),
                format!("{:.3} s", s.wall_s),
                if s.sim_cycles == 0 {
                    "-".to_string()
                } else {
                    format!("{:.2}", s.sim_cycles as f64 / s.wall_s.max(1e-9) / 1e6)
                },
            ]
        })
        .collect();
    out.push_str(&format_table(&["stage", "work", "wall", "Mcyc/s"], &rows));
    let _ = writeln!(
        out,
        "\nwarm-up sharing on {} x {} policies: forked {:.3} s vs fresh {:.3} s \
         (best of {reps}) -> {:.2}x, bit-exact (hash {:016x})",
        bmix.name,
        f2.len(),
        forked_wall,
        fresh_wall,
        fork_speedup,
        forked_hash
    );
    if let Some(st) = &store {
        let s = st.stats();
        let _ = writeln!(
            out,
            "store {}: warm-up {}/{} hit, profiles {}/{} hit ({:.0}% overall)",
            st.dir().display(),
            s.warmup_hits,
            s.warmup_hits + s.warmup_misses,
            s.profile_hits,
            s.profile_hits + s.profile_misses,
            s.hit_rate() * 100.0
        );
    }
    let _ = writeln!(
        out,
        "total {total_wall_s:.3} s, {:.2} M sim-cycles/s aggregate, peak RSS {} -> {out_path}",
        cps / 1e6,
        rss.map_or_else(|| "n/a".to_string(), |b| format!("{} MiB", b / (1 << 20)))
    );
    Ok(out)
}

fn try_mix(name: &str) -> Result<Mix, String> {
    melreq_workloads::all_mixes()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown workload '{name}'; names follow Table 3 (2MEM-1 … 8MIX-6)"))
}

/// Execute a parsed command, returning its rendered output.
pub fn run_command(cmd: &Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Config { cores } => Ok(SystemConfig::paper(*cores, PolicyKind::MeLreq).describe()),
        Command::Profile { apps, opts } => cmd_profile(apps, opts),
        Command::Run { mix, policy, opts, audit } => cmd_run(mix, policy, opts, *audit),
        Command::Audit { mix, policy, opts } => cmd_audit(mix, policy, opts),
        Command::Compare { mix, policies, opts } => cmd_compare(mix, policies, opts),
        Command::Sweep { kind, policies, opts } => cmd_sweep(kind, policies, opts),
        Command::Reproduce { smoke, no_checkpoint, store, out, opts } => {
            cmd_reproduce(*smoke, *no_checkpoint, store.as_deref(), out, opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentOptions {
        ExperimentOptions::quick()
    }

    #[test]
    fn config_renders() {
        let s = run_command(&Command::Config { cores: 4 }).unwrap();
        assert!(s.contains("4 x 4-issue"));
        assert!(s.contains("ME-LREQ"));
    }

    #[test]
    fn help_renders_usage() {
        let s = run_command(&Command::Help).unwrap();
        assert!(s.contains("USAGE"));
    }

    #[test]
    fn unknown_mix_is_an_error() {
        let e = cmd_run("9MEM-9", &PolicySpec::Paper(PolicyKind::HfRf), &quick(), false);
        assert!(e.is_err());
        assert!(e.unwrap_err().contains("Table 3"));
    }

    #[test]
    fn mix_lookup_is_case_insensitive() {
        assert!(try_mix("2mem-1").is_ok());
    }

    #[test]
    fn profile_rejects_unknown_apps() {
        let e = cmd_profile(&["notanapp".to_string()], &quick());
        assert!(e.is_err());
    }

    #[test]
    fn profile_subset_renders_rows() {
        let s = cmd_profile(&["eon".to_string()], &quick()).unwrap();
        assert!(s.contains("eon"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3); // header + rule + one row
    }

    #[test]
    fn audited_run_reports_clean() {
        let s = cmd_run("2MEM-1", &PolicySpec::Paper(PolicyKind::MeLreq), &quick(), true).unwrap();
        assert!(s.contains("0 violations"));
        assert!(s.contains("stream hash"));
        let e = cmd_run("2MEM-1", &PolicySpec::Fq, &quick(), true);
        assert!(e.is_err(), "--audit must reject externally built policies");
    }

    #[test]
    fn audit_subcommand_verifies_determinism() {
        let s = cmd_audit("2MEM-1", &PolicySpec::Paper(PolicyKind::HfRf), &quick()).unwrap();
        assert!(s.contains("audit OK"));
        assert!(s.contains("pass 2"));
    }

    #[test]
    fn reproduce_smoke_writes_artifact_and_verifies_fork() {
        let dir =
            std::env::temp_dir().join(format!("melreq-reproduce-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("sweep.json");
        let tiny = ExperimentOptions {
            instructions: 3000,
            warmup: 1500,
            profile_instructions: 1500,
            ..ExperimentOptions::default()
        };
        let store = dir.join("store");
        let s =
            cmd_reproduce(true, false, Some(store.to_str().unwrap()), out.to_str().unwrap(), &tiny)
                .unwrap();
        assert!(s.contains("bit-exact"), "summary must confirm the fork gate:\n{s}");
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"mode\": \"smoke\""));
        assert!(json.contains("\"bit_exact\": true"));
        assert!(json.contains("\"fork_speedup\""));
        assert!(json.contains("\"store\": {"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_and_compare_work_end_to_end() {
        let s = cmd_run("2MEM-1", &PolicySpec::Paper(PolicyKind::MeLreq), &quick(), false).unwrap();
        assert!(s.contains("wupwise"));
        assert!(s.contains("SMT speedup"));
        let s =
            cmd_compare("2MEM-1", &[PolicySpec::Paper(PolicyKind::HfRf), PolicySpec::Fq], &quick())
                .unwrap();
        assert!(s.contains("FQ"));
        assert!(s.contains("+0.0%")); // baseline row
    }
}
