//! Argument parsing (hand-rolled — the workspace's only dependencies are
//! the simulation crates plus rand/proptest/criterion).

use melreq_core::experiment::ExperimentOptions;

/// A policy selected on the command line. This is
/// [`melreq_memctrl::PolicyKind`], resolved through the open policy
/// registry — the CLI, the service and the bench harness all parse
/// policy names through the same table, so a token accepted here is
/// accepted everywhere, including the `name(key=value,...)` parameter
/// grammar (e.g. `bliss(threshold=8)`).
pub use melreq_memctrl::PolicyKind as PolicySpec;

/// Observability flags (`--trace`, `--series`, `--sample-epoch`,
/// `--trace-cap`, `--provenance`) accepted by `run` and `trace`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsArgs {
    /// Perfetto trace output path (`--trace PATH`; `trace` uses `--out`).
    pub trace_out: Option<String>,
    /// Epoch time-series output path: CSV, or JSON when the path ends
    /// in `.json`.
    pub series_out: Option<String>,
    /// Sampling epoch in cycles (`--sample-epoch N`).
    pub sample_epoch: Option<u64>,
    /// Trace-ring capacity override in events (`--trace-cap N`).
    pub trace_cap: Option<usize>,
    /// Render per-policy decision-provenance totals.
    pub provenance: bool,
}

impl ObsArgs {
    /// Whether any observability output was requested.
    pub fn any(&self) -> bool {
        self.trace_out.is_some()
            || self.series_out.is_some()
            || self.sample_epoch.is_some()
            || self.provenance
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Profile applications (Table 2 style).
    Profile {
        /// Benchmark names; empty = all 26.
        apps: Vec<String>,
        /// Harness options.
        opts: ExperimentOptions,
    },
    /// Run one mix under one policy, with per-core detail.
    Run {
        /// Table 3 mix name.
        mix: String,
        /// Scheduling policy.
        policy: PolicySpec,
        /// Harness options.
        opts: ExperimentOptions,
        /// Attach the protocol/invariant checker to the run.
        audit: bool,
        /// Observability outputs (trace/series/provenance).
        obs: ObsArgs,
        /// Emit the versioned machine-readable report instead of tables.
        json: bool,
        /// Worker-thread count (`--threads`; falls back to
        /// `MELREQ_THREADS`, then host parallelism).
        threads: Option<usize>,
        /// Host-profile output path (`--profile PATH`): wall-clock span
        /// trace of the run itself (executor, kernel stages, facade).
        prof_out: Option<String>,
    },
    /// Run one mix with the trace collector attached and export a
    /// Chrome/Perfetto trace (plus optional epoch time-series).
    Trace {
        /// Table 3 mix name.
        mix: String,
        /// Scheduling policy.
        policy: PolicySpec,
        /// Perfetto JSON output path.
        out: String,
        /// Observability outputs (series path, epoch, ring capacity).
        obs: ObsArgs,
        /// Harness options.
        opts: ExperimentOptions,
    },
    /// Run one mix twice under the independent protocol/invariant checker
    /// and verify clean reports plus identical event-stream hashes.
    Audit {
        /// Table 3 mix name.
        mix: String,
        /// Scheduling policy.
        policy: PolicySpec,
        /// Harness options.
        opts: ExperimentOptions,
    },
    /// Compare several policies on one mix.
    Compare {
        /// Table 3 mix name.
        mix: String,
        /// Policies, first is the baseline.
        policies: Vec<PolicySpec>,
        /// Harness options.
        opts: ExperimentOptions,
        /// Append per-policy decision-provenance totals.
        provenance: bool,
        /// Emit the versioned machine-readable report instead of tables.
        json: bool,
        /// Worker-thread count for the shared-warm-up policy forks.
        threads: Option<usize>,
        /// Host-profile output path (`--profile PATH`).
        prof_out: Option<String>,
    },
    /// Core-count scaling sweep (2/4/8) of average improvement.
    Sweep {
        /// "mem", "mix" or "all".
        kind: String,
        /// Policies, first is the baseline.
        policies: Vec<PolicySpec>,
        /// Harness options.
        opts: ExperimentOptions,
        /// Worker-thread count for the grid pool.
        threads: Option<usize>,
    },
    /// Drive the full paper grid (Table 2, Figures 2–5, ablation) with
    /// shared warm-ups and a persistent checkpoint store, writing a
    /// machine-readable sweep artifact.
    Reproduce {
        /// Reduced CI-sized grid at quick options; also a hard
        /// fork-vs-fresh divergence gate (nonzero exit on mismatch).
        smoke: bool,
        /// Disable warm-up sharing entirely: no persistent store and one
        /// fresh warm-up per (mix, policy) — the comparison baseline.
        no_checkpoint: bool,
        /// Checkpoint-store directory override (default: `MELREQ_STORE`
        /// env var, else `.melreq-store`).
        store: Option<String>,
        /// Output path of the JSON artifact.
        out: String,
        /// Harness options.
        opts: ExperimentOptions,
        /// Worker-thread count for the global sweep pool.
        threads: Option<usize>,
        /// Baseline sweep artifact to guard `total_wall_s` against
        /// (`--guard PATH`): exit nonzero when this run's wall exceeds
        /// the baseline's beyond the guard ratio.
        guard: Option<String>,
        /// Guard tolerance (`--guard-ratio R`, default 0.25): fail when
        /// `total_wall_s > baseline_total_wall_s / R`.
        guard_ratio: f64,
        /// Host-profile output path (`--profile PATH`): Perfetto span
        /// trace of the sweep itself, summary embedded in the artifact.
        prof_out: Option<String>,
    },
    /// Serve the simulator over HTTP: `/run`, `/compare`, `/healthz`,
    /// `/metrics` on a bounded worker pool sharing one checkpoint store.
    Serve {
        /// Bind address (`--addr HOST:PORT`).
        addr: String,
        /// Worker threads executing simulations.
        workers: usize,
        /// Bounded job-queue capacity (beyond it: 429 + `Retry-After`).
        queue_cap: usize,
        /// Checkpoint-store directory override.
        store: Option<String>,
        /// Run storeless (every request warms up from scratch).
        no_store: bool,
        /// Default per-request wall-clock budget in milliseconds.
        timeout_ms: Option<u64>,
        /// Response-cache capacity in entries (0 = off, the default).
        response_cache: usize,
        /// Idle keep-alive connection timeout in milliseconds
        /// (0 disables the sweep).
        idle_timeout_ms: u64,
        /// Structured JSON access-log path (`--access-log PATH`).
        access_log: Option<String>,
        /// Host-profile output path (`--profile PATH`): request-lifecycle
        /// span trace written at drain.
        prof_out: Option<String>,
    },
    /// Talk to a running server: build the same typed request the local
    /// commands use and POST it (or hit a GET endpoint). Several verbs
    /// in one invocation share one keep-alive connection.
    Client {
        /// Verbs, executed in order on one connection: `run`, `compare`,
        /// `health`, `metrics`, `buildinfo`, `shutdown` (at most one of
        /// run|compare).
        verbs: Vec<String>,
        /// Table 3 mix name (run/compare).
        mix: Option<String>,
        /// Policies for run/compare.
        policies: Vec<PolicySpec>,
        /// Harness options forwarded in the request body.
        opts: ExperimentOptions,
        /// Attach the auditor server-side.
        audit: bool,
        /// Server address.
        addr: String,
        /// Per-request wall-clock budget in milliseconds.
        timeout_ms: Option<u64>,
    },
    /// Drive a running server with the deterministic open-loop load
    /// generator and write the `BENCH_serve.json` artifact.
    Loadbench {
        /// Server address.
        addr: String,
        /// Offered arrival rate, requests per second.
        rps: f64,
        /// Client connections (worker threads).
        conns: usize,
        /// Arrival-window length per phase, seconds.
        duration_s: f64,
        /// Arrival-process seed.
        seed: u64,
        /// Mix for the repeated request of the cached phase.
        mix: String,
        /// Artifact output path.
        out: String,
        /// Baseline artifact to guard cached throughput against.
        guard: Option<String>,
        /// Guard ratio: fail when cached throughput drops below
        /// `baseline * R`.
        guard_ratio: f64,
    },
    /// Run the workspace determinism & snapshot-coverage static
    /// analyzer (rules D01/D02/S01/S02/A01) over `crates/*/src`.
    Analyze {
        /// Emit the versioned machine-readable findings report.
        json: bool,
        /// Regenerate `snap.fingerprint` from the current tree before
        /// the S02 comparison (commit the result).
        fix_fingerprint: bool,
        /// Workspace root (default: walk up from the current directory
        /// to the nearest directory containing `crates/snap`).
        root: Option<String>,
        /// Optional path to also write the rendered report to.
        out: Option<String>,
    },
    /// Print the Table 1 machine configuration.
    Config {
        /// Core count to describe.
        cores: usize,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
melreq — memory access scheduling simulator (ICPP'08 ME-LREQ reproduction)

USAGE:
  melreq profile [--apps a,b,...] [common options]
  melreq run <MIX> [--policy NAME] [--audit] [--json] [trace options]
             [common options]
  melreq trace <MIX> [--policy NAME] [--out PATH] [trace options]
               [common options]
  melreq compare <MIX> [--policies n1,n2,...] [--provenance] [--json]
                 [common options]
  melreq sweep [--kind mem|mix|all] [--policies n1,n2,...] [common options]
  melreq audit [MIX] [--policy NAME] [common options]
  melreq reproduce [--smoke] [--no-checkpoint] [--store DIR] [--out PATH]
                   [--guard PATH [--guard-ratio R]] [common options]
  melreq serve [--addr H:P] [--workers N] [--queue-cap M] [--store DIR]
               [--no-store] [--timeout-ms N] [--response-cache N]
               [--idle-timeout-ms N] [--access-log PATH] [--profile PATH]
  melreq client VERB... [--addr H:P] [--timeout-ms N] [common options]
               where VERB is run <MIX> | compare <MIX> | health | metrics
               | buildinfo | policies | shutdown; several verbs share one
               keep-alive connection (at most one of run|compare per
               invocation)
  melreq loadbench [MIX] [--addr H:P] [--rps R] [--conns N]
                   [--duration S] [--seed N] [--out PATH]
                   [--guard PATH [--guard-ratio R]]
  melreq analyze [--json] [--fix-fingerprint] [--root DIR] [--out PATH]
  melreq config [--cores N]
  melreq help

POLICIES:
  fcfs fcfs-rf hf-rf rr lreq me me-lreq me-lreq-on fix-0123 fix-3210
  fq stf bliss tcm
  Names resolve through the open policy registry (case-insensitive,
  aliases accepted: baseline, hfrf, round-robin, melreq, online,
  fair-queueing, stall-time-fair, tcm-cluster). Parameterized policies
  take `name(key=value,...)`: bliss(threshold=4,clear=10000),
  tcm(quantum=2000), me-lreq-on(epoch=50000). An unknown name suggests
  the nearest registered one. `melreq client policies` (or GET
  /policies on a server) lists every descriptor as JSON; compare/sweep
  with no --policies default to the registry's paper-figure set.

COMMON OPTIONS:
  --instructions N   measured instructions per core   (default 150000)
  --warmup N         warm-up instructions per core    (default 60000)
  --profile N|PATH   a number sets the profiling-run instruction count
                     (default 60000); a path enables the host-side span
                     profiler and writes a Perfetto trace there (run,
                     compare, reproduce, serve — see HOST PROFILING)
  --slice K          evaluation slice index           (default 0)
  --tick-exact       disable the fast-forward kernel and simulate every
                     cycle (debug/baseline knob; results are identical)
  --threads N        worker threads for pooled runs (default MELREQ_THREADS,
                     else host parallelism); results are bit-identical at
                     any value

COMMAND FLAGS:
  profile   --apps a,b,...      subset of SPEC2000 names (default all 26)
  run       --policy NAME       scheduling policy       (default me-lreq)
            --audit             attach the protocol/invariant checker
            --json              print the versioned single-line report
                                (byte-identical to the server's /run body)
  compare   --policies n1,...   policy list, first = baseline
            --provenance        per-policy rule-attribution totals
            --json              versioned report instead of the table
  sweep     --kind mem|mix|all  workload class          (default mem)
            --policies n1,...   policy list, first = baseline
  reproduce --smoke             reduced CI grid + fork-vs-fresh gate
            --no-checkpoint     no store, no in-group warm-up sharing
            --store DIR         checkpoint-store directory
                                (default MELREQ_STORE, else .melreq-store)
            --out PATH          sweep artifact          (BENCH_sweep.json)
            --guard PATH        baseline sweep artifact; exit nonzero when
                                total_wall_s exceeds baseline/R
            --guard-ratio R     wall-guard ratio in (0,1]   (default 0.25)
  serve     --addr H:P          bind address        (default 127.0.0.1:7700)
            --workers N         simulation worker threads       (default 2)
            --queue-cap M       job-queue bound; beyond it 429 (default 16)
            --store DIR         checkpoint-store directory (same default)
            --no-store          run storeless (no warm-up reuse)
            --timeout-ms N      default per-request wall-clock budget
            --response-cache N  cache N rendered responses  (default 0=off)
            --idle-timeout-ms N close idle keep-alive connections after N ms
                                (default 30000; 0 = never)
            --access-log PATH   append one structured JSON line per request
                                (id, endpoint, status, per-stage µs)
            --profile PATH      write the request-lifecycle host profile
                                (Perfetto JSON) at drain
  client    --addr H:P          server address      (default 127.0.0.1:7700)
            --timeout-ms N      request wall-clock budget (forwarded)
  loadbench --addr H:P          server address      (default 127.0.0.1:7700)
            --rps R             offered open-loop arrival rate (default 200)
            --conns N           client connections/workers     (default 16)
            --duration S        arrival window per phase, s   (default 2.0)
            --seed N            arrival-process seed           (default 42)
            --out PATH          load artifact        (BENCH_serve.json)
            --guard PATH        baseline load artifact; exit nonzero when
                                cached throughput drops below baseline*R
            --guard-ratio R     load-guard ratio in (0,1]   (default 0.25)
  analyze   --json              versioned findings report instead of text
            --fix-fingerprint   regenerate snap.fingerprint from the tree
            --root DIR          workspace root (default: nearest ancestor
                                directory containing crates/snap)
            --out PATH          also write the report to a file
  config    --cores N           core count to describe  (default 4)

TRACE OPTIONS (run and trace):
  --trace PATH       write a Chrome/Perfetto trace_event JSON of the run
                     (`trace` writes one always; its path is --out,
                     default trace.json)
  --series PATH      write the epoch time-series (CSV, or JSON when the
                     path ends in .json); implies sampling
  --sample-epoch N   sampling epoch in cycles (default 10000 when a
                     series is requested or under `trace`)
  --trace-cap N      trace-ring capacity in events (default 1048576,
                     oldest events drop beyond it)
  --provenance       print which scheduler rule won each grant,
                     aggregated per policy

SERVICE:
  `melreq serve` exposes the simulator over HTTP/1.1 (std-only, no
  external dependencies): POST /run and /compare take the same JSON
  request the `melreq client` subcommand builds, execute it on a bounded
  worker pool sharing one profile cache and checkpoint store, and return
  `{\"cache\": ..., \"store\": ..., \"report\": ...}` where `report` is
  byte-identical to `melreq run --json` for the same request. All
  connections are served by one nonblocking event loop with keep-alive
  and pipelining; idle connections close after --idle-timeout-ms. With
  --response-cache N, repeated identical requests answer from an LRU of
  rendered reports (`\"cache\":\"response\"`), and identical requests
  arriving while one is already simulating coalesce onto that run
  (`\"cache\":\"coalesced\"`) — same report bytes either way. A full
  queue answers 429 with Retry-After; per-request wall-clock budgets
  cancel runs at an epoch boundary (504); SIGTERM (or POST /shutdown)
  drains queued jobs before exiting. GET /healthz, /metrics (Prometheus
  text format, including per-stage request-latency histograms) and
  /buildinfo (version, poller backend, pool shape) serve operators.
  Every machine-readable body carries schema_version; mismatched client
  requests are rejected.

LOAD TESTING:
  `melreq loadbench` drives a running server with a deterministic
  open-loop arrival process (seeded exponential inter-arrivals; same
  seed = byte-identical offered load, hashed into the artifact) and
  runs two phases back to back: `baseline_close` opens a fresh
  connection per unique request — the cold thread-per-connection
  model — and `keepalive_cached` repeats one identical request over
  persistent connections so the response cache and coalescing answer.
  The artifact (BENCH_serve.json) records per-phase p50/p90/p95/p99
  latency, throughput, 429/504/5xx and transport-error counts, and the
  cached-over-baseline throughput speedup. --guard compares cached
  throughput against a committed baseline artifact and exits nonzero
  (timeout-class, code 6) below baseline*ratio.

HOST PROFILING:
  `--profile PATH` (on run, compare, reproduce and serve) attaches the
  host-side span profiler: thread-local ring buffers record wall-clock
  spans of the process itself — executor job spans with queue-wait and
  steal attribution, kernel stages (warm-up, snapshot encode/decode,
  policy runs), session phases, and under serve the request lifecycle
  (parse → queue → execute → render → flush). At exit the spans are
  drained into a Perfetto trace_event JSON at PATH (one track per
  thread, wall-clock µs — a separate clock domain from the sim-time
  `--trace` output; never merge the two files) with an aggregated
  summary plus a buildinfo block embedded, and the summary is printed
  (reproduce also embeds it in the sweep artifact as `host_profile`).
  Profiling is inert: simulation results are bit-identical with it on
  or off.

TRACING:
  `melreq trace` runs a mix with the deterministic trace collector on
  the audit tap: request arrivals, reconstructed ACT/RD/WR/PRE commands,
  grants (with the winning rule and beaten runner-up), refreshes and
  per-core memory-stall spans, exported as Chrome trace_event JSON —
  open it at https://ui.perfetto.dev. Timestamps are sim-cycles (shown
  as µs). Tracing is inert: results are bit-identical with it on or off.

REPRODUCING:
  `melreq reproduce` runs the whole paper — Table 2 profiles, the
  Figure 2/4/5 grid on 2/4/8 cores, the Figure 3 fixed-priority study
  and the offline-vs-online ablation — sharing each mix's warm-up
  across all policies via system snapshots, and writes BENCH_sweep.json
  (wall time, sim-cycles/s, checkpoint hit rate, peak RSS). Warm-up
  checkpoints and profiles persist in the store directory (--store,
  MELREQ_STORE, default .melreq-store), so a second invocation skips
  all warm-up and profiling simulation. --no-checkpoint disables both
  the store and in-group sharing; --smoke runs a reduced CI grid and
  exits nonzero if forked results diverge from fresh runs.

AUDITING:
  --audit attaches an independent checker that re-validates every DRAM
  grant against the DDR2 timing constraints and every scheduling decision
  against the policy's invariants. `melreq audit` runs a mix twice
  (default 4MEM-1 under ME-LREQ), requires both reports clean, and checks
  the two event-stream hashes are identical; any violation exits nonzero.

STATIC ANALYSIS:
  `melreq analyze` lexes the workspace's own sources and enforces the
  determinism invariants the snapshot/reproduce machinery depends on:
  D01 no HashMap/HashSet in simulation crates; D02 no wall clocks or
  environment reads outside serve/bench/cli; S01 every field of a
  snapshot'd struct referenced in both save_state and load_state; S02
  snapshot layouts match the committed snap.fingerprint unless
  SCHEMA_VERSION was bumped (refresh with --fix-fingerprint); A01 no
  narrowing casts or unchecked cycle arithmetic in dram/memctrl timing
  modules. Suppress a finding in place with a written reason:
  `// melreq-allow(RULE): reason`. Unsuppressed findings exit 7.

EXIT CODES:
  0 success · 2 usage · 3 I/O · 4 divergence (audit/fork gate)
  5 overload · 6 timeout/cancelled · 7 static-analysis findings
";

fn split_list(s: &str) -> Vec<String> {
    s.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect()
}

/// Parse a full argument vector (without the program name).
#[allow(clippy::too_many_lines)]
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };

    // Collect the remaining flags generically first.
    let mut opts = ExperimentOptions::default();
    let mut positional: Vec<String> = Vec::new();
    let mut apps: Vec<String> = Vec::new();
    let mut policies: Vec<PolicySpec> = Vec::new();
    let mut policy: Option<PolicySpec> = None;
    let mut kind = "mem".to_string();
    let mut cores = 4usize;
    let mut audit = false;
    let mut smoke = false;
    let mut no_checkpoint = false;
    let mut store: Option<String> = None;
    let mut out: Option<String> = None;
    let mut obs = ObsArgs::default();
    let mut json = false;
    let mut addr = "127.0.0.1:7700".to_string();
    let mut workers = 2usize;
    let mut queue_cap = 16usize;
    let mut no_store = false;
    let mut timeout_ms: Option<u64> = None;
    let mut response_cache = 0usize;
    let mut fix_fingerprint = false;
    let mut root: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut guard: Option<String> = None;
    let mut guard_ratio = 0.25f64;
    let mut idle_timeout_ms = 30_000u64;
    let mut rps = 200.0f64;
    let mut conns = 16usize;
    let mut duration_s = 2.0f64;
    let mut seed = 42u64;
    let mut prof_out: Option<String> = None;
    let mut access_log: Option<String> = None;

    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--instructions" => {
                opts.instructions =
                    val("--instructions")?.parse().map_err(|e| format!("--instructions: {e}"))?;
            }
            "--warmup" => {
                opts.warmup = val("--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?;
            }
            "--profile" => {
                // Polymorphic: a number is the profiling-run instruction
                // count; anything else is the host-profile output path.
                let v = val("--profile")?;
                match v.parse::<u64>() {
                    Ok(n) => opts.profile_instructions = n,
                    Err(_) => prof_out = Some(v.clone()),
                }
            }
            "--access-log" => access_log = Some(val("--access-log")?.clone()),
            "--slice" => {
                opts.eval_slice = val("--slice")?.parse().map_err(|e| format!("--slice: {e}"))?;
            }
            "--apps" => apps = split_list(val("--apps")?),
            "--policy" => policy = Some(PolicySpec::parse(val("--policy")?)?),
            "--policies" => {
                policies = split_list(val("--policies")?)
                    .iter()
                    .map(|s| PolicySpec::parse(s))
                    .collect::<Result<_, _>>()?;
            }
            "--audit" => audit = true,
            "--tick-exact" => opts.tick_exact = true,
            "--smoke" => smoke = true,
            "--no-checkpoint" => no_checkpoint = true,
            "--store" => store = Some(val("--store")?.clone()),
            "--out" => out = Some(val("--out")?.clone()),
            "--trace" => obs.trace_out = Some(val("--trace")?.clone()),
            "--series" => obs.series_out = Some(val("--series")?.clone()),
            "--sample-epoch" => {
                let n: u64 =
                    val("--sample-epoch")?.parse().map_err(|e| format!("--sample-epoch: {e}"))?;
                if n == 0 {
                    return Err("--sample-epoch must be positive".to_string());
                }
                obs.sample_epoch = Some(n);
            }
            "--trace-cap" => {
                obs.trace_cap =
                    Some(val("--trace-cap")?.parse().map_err(|e| format!("--trace-cap: {e}"))?);
            }
            "--provenance" => obs.provenance = true,
            "--json" => json = true,
            "--kind" => kind = val("--kind")?.clone(),
            "--cores" => {
                cores = val("--cores")?.parse().map_err(|e| format!("--cores: {e}"))?;
            }
            "--addr" => addr = val("--addr")?.clone(),
            "--workers" => {
                workers = val("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
                if workers == 0 {
                    return Err("--workers must be positive".to_string());
                }
            }
            "--queue-cap" => {
                queue_cap = val("--queue-cap")?.parse().map_err(|e| format!("--queue-cap: {e}"))?;
                if queue_cap == 0 {
                    return Err("--queue-cap must be positive".to_string());
                }
            }
            "--no-store" => no_store = true,
            "--threads" => {
                let n: usize = val("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be positive".to_string());
                }
                threads = Some(n);
            }
            "--guard" => guard = Some(val("--guard")?.clone()),
            "--guard-ratio" => {
                guard_ratio =
                    val("--guard-ratio")?.parse().map_err(|e| format!("--guard-ratio: {e}"))?;
                if !(guard_ratio > 0.0 && guard_ratio <= 1.0) {
                    return Err("--guard-ratio must be in (0, 1]".to_string());
                }
            }
            "--fix-fingerprint" => fix_fingerprint = true,
            "--root" => root = Some(val("--root")?.clone()),
            "--timeout-ms" => {
                timeout_ms =
                    Some(val("--timeout-ms")?.parse().map_err(|e| format!("--timeout-ms: {e}"))?);
            }
            "--response-cache" => {
                response_cache = val("--response-cache")?
                    .parse()
                    .map_err(|e| format!("--response-cache: {e}"))?;
            }
            "--idle-timeout-ms" => {
                idle_timeout_ms = val("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-ms: {e}"))?;
            }
            "--rps" => {
                rps = val("--rps")?.parse().map_err(|e| format!("--rps: {e}"))?;
                if !(rps > 0.0 && rps.is_finite()) {
                    return Err("--rps must be positive".to_string());
                }
            }
            "--conns" => {
                conns = val("--conns")?.parse().map_err(|e| format!("--conns: {e}"))?;
                if conns == 0 {
                    return Err("--conns must be positive".to_string());
                }
            }
            "--duration" => {
                duration_s = val("--duration")?.parse().map_err(|e| format!("--duration: {e}"))?;
                if !(duration_s > 0.0 && duration_s.is_finite()) {
                    return Err("--duration must be positive".to_string());
                }
            }
            "--seed" => {
                seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            pos => positional.push(pos.to_string()),
        }
    }

    // With no explicit set, `compare`/`sweep` enumerate the registry's
    // paper-figure policies (the Figure 2 set, in figure order).
    let default_policies = melreq_memctrl::registry::paper_figure_set;

    match cmd.as_str() {
        "profile" => Ok(Command::Profile { apps, opts }),
        "run" => {
            let mix =
                positional.first().ok_or("run needs a workload mix name (e.g. 4MEM-1)")?.clone();
            Ok(Command::Run {
                mix,
                policy: policy.unwrap_or(PolicySpec::MeLreq),
                opts,
                audit,
                obs,
                json,
                threads,
                prof_out,
            })
        }
        "trace" => {
            let mix =
                positional.first().ok_or("trace needs a workload mix name (e.g. 4MEM-1)")?.clone();
            Ok(Command::Trace {
                mix,
                policy: policy.unwrap_or(PolicySpec::MeLreq),
                out: out.unwrap_or_else(|| "trace.json".to_string()),
                obs,
                opts,
            })
        }
        "audit" => {
            // The acceptance workload: a seeded 4-core paper mix.
            let mix = positional.first().cloned().unwrap_or_else(|| "4MEM-1".to_string());
            Ok(Command::Audit { mix, policy: policy.unwrap_or(PolicySpec::MeLreq), opts })
        }
        "compare" => {
            let mix = positional
                .first()
                .ok_or("compare needs a workload mix name (e.g. 4MEM-1)")?
                .clone();
            let policies = if policies.is_empty() { default_policies() } else { policies };
            Ok(Command::Compare {
                mix,
                policies,
                opts,
                provenance: obs.provenance,
                json,
                threads,
                prof_out,
            })
        }
        "sweep" => {
            let policies = if policies.is_empty() { default_policies() } else { policies };
            if !matches!(kind.as_str(), "mem" | "mix" | "all") {
                return Err(format!("--kind must be mem, mix or all (got '{kind}')"));
            }
            Ok(Command::Sweep { kind, policies, opts, threads })
        }
        "reproduce" => Ok(Command::Reproduce {
            smoke,
            no_checkpoint,
            store,
            out: out.unwrap_or_else(|| "BENCH_sweep.json".to_string()),
            opts,
            threads,
            guard,
            guard_ratio,
            prof_out,
        }),
        "serve" => Ok(Command::Serve {
            addr,
            workers,
            queue_cap,
            store,
            no_store,
            timeout_ms,
            response_cache,
            idle_timeout_ms,
            access_log,
            prof_out,
        }),
        "client" => {
            if positional.is_empty() {
                return Err("client needs at least one verb: run, compare, health, metrics, \
                            buildinfo, policies or shutdown"
                    .to_string());
            }
            // Positionals are verbs in execution order; `run` and
            // `compare` consume the next positional as their mix.
            let mut verbs: Vec<String> = Vec::new();
            let mut mix: Option<String> = None;
            let mut pos = positional.iter().peekable();
            while let Some(verb) = pos.next() {
                match verb.as_str() {
                    "run" | "compare" => {
                        if verbs.iter().any(|v| matches!(v.as_str(), "run" | "compare")) {
                            return Err("client takes at most one of run|compare per invocation"
                                .to_string());
                        }
                        let Some(m) = pos.next() else {
                            return Err(format!(
                                "client {verb} needs a workload mix name (e.g. 4MEM-1)"
                            ));
                        };
                        mix = Some(m.clone());
                        verbs.push(verb.clone());
                    }
                    "health" | "metrics" | "buildinfo" | "policies" | "shutdown" => {
                        verbs.push(verb.clone());
                    }
                    other => {
                        return Err(format!(
                            "unknown client verb '{other}' (run, compare, health, metrics, \
                             buildinfo, policies, shutdown)"
                        ));
                    }
                }
            }
            let wants_compare = verbs.iter().any(|v| v == "compare");
            let policies = if let Some(p) = policy {
                vec![p]
            } else if policies.is_empty() && wants_compare {
                default_policies()
            } else if policies.is_empty() {
                vec![PolicySpec::MeLreq]
            } else {
                policies
            };
            Ok(Command::Client { verbs, mix, policies, opts, audit, addr, timeout_ms })
        }
        "loadbench" => {
            let mix = positional.first().cloned().unwrap_or_else(|| "2MEM-1".to_string());
            Ok(Command::Loadbench {
                addr,
                rps,
                conns,
                duration_s,
                seed,
                mix,
                out: out.unwrap_or_else(|| "BENCH_serve.json".to_string()),
                guard,
                guard_ratio,
            })
        }
        "analyze" => Ok(Command::Analyze { json, fix_fingerprint, root, out }),
        "config" => Ok(Command::Config { cores }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command '{other}' (try `melreq help`)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn run_parses_mix_policy_and_options() {
        let c = parse_args(&v(&["run", "4MEM-1", "--policy", "lreq", "--instructions", "5000"]))
            .unwrap();
        match c {
            Command::Run { mix, policy, opts, audit, obs, json, threads, prof_out } => {
                assert_eq!(mix, "4MEM-1");
                assert_eq!(policy, PolicySpec::Lreq);
                assert_eq!(opts.instructions, 5000);
                assert!(!audit);
                assert!(!obs.any());
                assert!(!json);
                assert!(threads.is_none());
                assert!(prof_out.is_none());
            }
            c => panic!("wrong command {c:?}"),
        }
    }

    #[test]
    fn json_flag_parses_on_run_and_compare() {
        match parse_args(&v(&["run", "4MEM-1", "--json"])).unwrap() {
            Command::Run { json, .. } => assert!(json),
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["compare", "4MEM-1", "--json"])).unwrap() {
            Command::Compare { json, .. } => assert!(json),
            c => panic!("wrong command {c:?}"),
        }
    }

    #[test]
    fn audit_flag_and_subcommand_parse() {
        match parse_args(&v(&["run", "4MEM-1", "--audit"])).unwrap() {
            Command::Run { audit, .. } => assert!(audit),
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["audit"])).unwrap() {
            Command::Audit { mix, policy, .. } => {
                assert_eq!(mix, "4MEM-1");
                assert_eq!(policy.name(), "ME-LREQ");
            }
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["audit", "2MIX-1", "--policy", "rr"])).unwrap() {
            Command::Audit { mix, policy, .. } => {
                assert_eq!(mix, "2MIX-1");
                assert_eq!(policy.name(), "RR");
            }
            c => panic!("wrong command {c:?}"),
        }
    }

    #[test]
    fn compare_defaults_to_figure2_policies() {
        let c = parse_args(&v(&["compare", "2MEM-1"])).unwrap();
        match c {
            Command::Compare { policies, .. } => {
                assert_eq!(policies.len(), 5);
                assert_eq!(policies[0].name(), "HF-RF");
                assert_eq!(policies[4].name(), "ME-LREQ");
            }
            c => panic!("wrong command {c:?}"),
        }
    }

    #[test]
    fn policy_names_parse() {
        for (s, name) in [
            ("hf-rf", "HF-RF"),
            ("me-lreq", "ME-LREQ"),
            ("online", "ME-LREQ-ON"),
            ("fq", "FQ"),
            ("stf", "STF"),
            ("fix-3210", "FIX-3210"),
        ] {
            assert_eq!(PolicySpec::parse(s).unwrap().name(), name);
        }
        assert!(PolicySpec::parse("nope").is_err());
    }

    #[test]
    fn reproduce_parses_flags() {
        let c = parse_args(&v(&[
            "reproduce",
            "--smoke",
            "--store",
            "/tmp/s",
            "--out",
            "x.json",
            "--threads",
            "4",
            "--guard",
            "base.json",
            "--guard-ratio",
            "0.5",
        ]))
        .unwrap();
        match c {
            Command::Reproduce {
                smoke,
                no_checkpoint,
                store,
                out,
                threads,
                guard,
                guard_ratio,
                ..
            } => {
                assert!(smoke && !no_checkpoint);
                assert_eq!(store.as_deref(), Some("/tmp/s"));
                assert_eq!(out, "x.json");
                assert_eq!(threads, Some(4));
                assert_eq!(guard.as_deref(), Some("base.json"));
                assert!((guard_ratio - 0.5).abs() < 1e-12);
            }
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["reproduce", "--no-checkpoint"])).unwrap() {
            Command::Reproduce {
                smoke,
                no_checkpoint,
                store,
                out,
                threads,
                guard,
                guard_ratio,
                ..
            } => {
                assert!(!smoke && no_checkpoint && store.is_none());
                assert_eq!(out, "BENCH_sweep.json");
                assert!(threads.is_none() && guard.is_none());
                assert!((guard_ratio - 0.25).abs() < 1e-12);
            }
            c => panic!("wrong command {c:?}"),
        }
    }

    #[test]
    fn threads_flag_parses_and_rejects_zero() {
        match parse_args(&v(&["run", "4MEM-1", "--threads", "8"])).unwrap() {
            Command::Run { threads, .. } => assert_eq!(threads, Some(8)),
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["sweep", "--threads", "2"])).unwrap() {
            Command::Sweep { threads, .. } => assert_eq!(threads, Some(2)),
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["compare", "2MEM-1", "--threads", "1"])).unwrap() {
            Command::Compare { threads, .. } => assert_eq!(threads, Some(1)),
            c => panic!("wrong command {c:?}"),
        }
        assert!(parse_args(&v(&["run", "4MEM-1", "--threads", "0"])).is_err());
        assert!(parse_args(&v(&["reproduce", "--guard-ratio", "0"])).is_err());
        assert!(parse_args(&v(&["reproduce", "--guard-ratio", "1.5"])).is_err());
    }

    #[test]
    fn serve_parses_flags_and_defaults() {
        match parse_args(&v(&["serve"])).unwrap() {
            Command::Serve {
                addr,
                workers,
                queue_cap,
                store,
                no_store,
                timeout_ms,
                response_cache,
                idle_timeout_ms,
                access_log,
                prof_out,
            } => {
                assert_eq!(addr, "127.0.0.1:7700");
                assert_eq!((workers, queue_cap, response_cache), (2, 16, 0));
                assert_eq!(idle_timeout_ms, 30_000);
                assert!(store.is_none() && !no_store && timeout_ms.is_none());
                assert!(access_log.is_none() && prof_out.is_none());
            }
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--queue-cap",
            "8",
            "--no-store",
            "--timeout-ms",
            "2500",
            "--response-cache",
            "32",
            "--idle-timeout-ms",
            "0",
            "--access-log",
            "access.jsonl",
            "--profile",
            "serve_prof.json",
        ]))
        .unwrap()
        {
            Command::Serve {
                addr,
                workers,
                queue_cap,
                no_store,
                timeout_ms,
                response_cache,
                idle_timeout_ms,
                access_log,
                prof_out,
                ..
            } => {
                assert_eq!(addr, "127.0.0.1:0");
                assert_eq!((workers, queue_cap, response_cache), (4, 8, 32));
                assert!(no_store);
                assert_eq!(timeout_ms, Some(2500));
                assert_eq!(idle_timeout_ms, 0);
                assert_eq!(access_log.as_deref(), Some("access.jsonl"));
                assert_eq!(prof_out.as_deref(), Some("serve_prof.json"));
            }
            c => panic!("wrong command {c:?}"),
        }
        assert!(parse_args(&v(&["serve", "--workers", "0"])).is_err());
        assert!(parse_args(&v(&["serve", "--queue-cap", "0"])).is_err());
    }

    #[test]
    fn loadbench_parses_flags_and_defaults() {
        match parse_args(&v(&["loadbench"])).unwrap() {
            Command::Loadbench { addr, rps, conns, duration_s, seed, mix, out, guard, .. } => {
                assert_eq!(addr, "127.0.0.1:7700");
                assert!((rps - 200.0).abs() < 1e-12);
                assert_eq!(conns, 16);
                assert!((duration_s - 2.0).abs() < 1e-12);
                assert_eq!(seed, 42);
                assert_eq!(mix, "2MEM-1");
                assert_eq!(out, "BENCH_serve.json");
                assert!(guard.is_none());
            }
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&[
            "loadbench",
            "4MEM-1",
            "--addr",
            "h:9",
            "--rps",
            "500",
            "--conns",
            "64",
            "--duration",
            "1.5",
            "--seed",
            "7",
            "--out",
            "x.json",
            "--guard",
            "BENCH_serve.json",
            "--guard-ratio",
            "0.1",
        ]))
        .unwrap()
        {
            Command::Loadbench {
                addr,
                rps,
                conns,
                duration_s,
                seed,
                mix,
                out,
                guard,
                guard_ratio,
            } => {
                assert_eq!(
                    (addr.as_str(), mix.as_str(), out.as_str()),
                    ("h:9", "4MEM-1", "x.json")
                );
                assert!((rps - 500.0).abs() < 1e-12);
                assert_eq!((conns, seed), (64, 7));
                assert!((duration_s - 1.5).abs() < 1e-12);
                assert_eq!(guard.as_deref(), Some("BENCH_serve.json"));
                assert!((guard_ratio - 0.1).abs() < 1e-12);
            }
            c => panic!("wrong command {c:?}"),
        }
        assert!(parse_args(&v(&["loadbench", "--rps", "0"])).is_err());
        assert!(parse_args(&v(&["loadbench", "--conns", "0"])).is_err());
        assert!(parse_args(&v(&["loadbench", "--duration", "0"])).is_err());
    }

    #[test]
    fn client_parses_verbs_and_validates() {
        match parse_args(&v(&["client", "run", "4MEM-1", "--policy", "lreq", "--addr", "h:1"]))
            .unwrap()
        {
            Command::Client { verbs, mix, policies, addr, .. } => {
                assert_eq!(verbs, vec!["run".to_string()]);
                assert_eq!(mix.as_deref(), Some("4MEM-1"));
                assert_eq!(policies.len(), 1);
                assert_eq!(policies[0].name(), "LREQ");
                assert_eq!(addr, "h:1");
            }
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["client", "compare", "2MEM-1"])).unwrap() {
            Command::Client { verbs, policies, .. } => {
                assert_eq!(verbs, vec!["compare".to_string()]);
                assert_eq!(policies.len(), 5, "compare defaults to the Figure 2 set");
            }
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["client", "health"])).unwrap() {
            Command::Client { verbs, mix, .. } => {
                assert_eq!(verbs, vec!["health".to_string()]);
                assert!(mix.is_none());
            }
            c => panic!("wrong command {c:?}"),
        }
        assert!(parse_args(&v(&["client"])).is_err());
        assert!(parse_args(&v(&["client", "bogus"])).is_err());
        assert!(parse_args(&v(&["client", "run"])).is_err());
    }

    #[test]
    fn client_chains_verbs_on_one_invocation() {
        match parse_args(&v(&["client", "health", "run", "4MEM-1", "metrics"])).unwrap() {
            Command::Client { verbs, mix, .. } => {
                assert_eq!(verbs, vec!["health".to_string(), "run".into(), "metrics".into()]);
                assert_eq!(mix.as_deref(), Some("4MEM-1"));
            }
            c => panic!("wrong command {c:?}"),
        }
        // The mix positional belongs to run/compare, not to the verb list.
        match parse_args(&v(&["client", "compare", "2MEM-1", "metrics", "shutdown"])).unwrap() {
            Command::Client { verbs, mix, .. } => {
                assert_eq!(verbs, vec!["compare".to_string(), "metrics".into(), "shutdown".into()]);
                assert_eq!(mix.as_deref(), Some("2MEM-1"));
            }
            c => panic!("wrong command {c:?}"),
        }
        // At most one simulation verb per invocation (one mix slot).
        assert!(parse_args(&v(&["client", "run", "4MEM-1", "run", "2MEM-1"])).is_err());
        assert!(parse_args(&v(&["client", "run", "4MEM-1", "compare", "2MEM-1"])).is_err());
        // A trailing run/compare still needs its mix.
        assert!(parse_args(&v(&["client", "health", "run"])).is_err());
    }

    #[test]
    fn trace_and_obs_flags_parse() {
        let c = parse_args(&v(&[
            "trace",
            "4MEM-1",
            "--policy",
            "hf-rf",
            "--out",
            "t.json",
            "--series",
            "s.csv",
            "--sample-epoch",
            "5000",
            "--trace-cap",
            "1024",
        ]))
        .unwrap();
        match c {
            Command::Trace { mix, policy, out, obs, .. } => {
                assert_eq!(mix, "4MEM-1");
                assert_eq!(policy.name(), "HF-RF");
                assert_eq!(out, "t.json");
                assert_eq!(obs.series_out.as_deref(), Some("s.csv"));
                assert_eq!(obs.sample_epoch, Some(5000));
                assert_eq!(obs.trace_cap, Some(1024));
            }
            c => panic!("wrong command {c:?}"),
        }
        // Defaults: out path, policy.
        match parse_args(&v(&["trace", "2MEM-1"])).unwrap() {
            Command::Trace { out, policy, obs, .. } => {
                assert_eq!(out, "trace.json");
                assert_eq!(policy.name(), "ME-LREQ");
                assert!(!obs.provenance);
            }
            c => panic!("wrong command {c:?}"),
        }
        // run accepts the same flags; --sample-epoch 0 is rejected.
        match parse_args(&v(&["run", "2MEM-1", "--trace", "x.json", "--provenance"])).unwrap() {
            Command::Run { obs, .. } => {
                assert_eq!(obs.trace_out.as_deref(), Some("x.json"));
                assert!(obs.provenance && obs.any());
            }
            c => panic!("wrong command {c:?}"),
        }
        assert!(parse_args(&v(&["run", "2MEM-1", "--sample-epoch", "0"])).is_err());
        match parse_args(&v(&["compare", "2MEM-1", "--provenance"])).unwrap() {
            Command::Compare { provenance, .. } => assert!(provenance),
            c => panic!("wrong command {c:?}"),
        }
        assert!(parse_args(&v(&["trace"])).is_err());
    }

    #[test]
    fn unknown_flag_errors_name_the_flag() {
        let e = parse_args(&v(&["run", "4MEM-1", "--frobnicate"])).unwrap_err();
        assert!(e.contains("--frobnicate"), "error must name the flag: {e}");
        let e = parse_args(&v(&["trace", "4MEM-1", "--sample-epoch"])).unwrap_err();
        assert!(e.contains("--sample-epoch"), "error must name the flag: {e}");
        let e = parse_args(&v(&["serve", "--timeout-ms"])).unwrap_err();
        assert!(e.contains("--timeout-ms"), "error must name the flag: {e}");
    }

    #[test]
    fn usage_documents_every_flag() {
        for flag in [
            "--instructions",
            "--warmup",
            "--profile",
            "--slice",
            "--tick-exact",
            "--apps",
            "--policy",
            "--policies",
            "--audit",
            "--smoke",
            "--no-checkpoint",
            "--store",
            "--out",
            "--kind",
            "--cores",
            "--trace",
            "--series",
            "--sample-epoch",
            "--trace-cap",
            "--provenance",
            "--json",
            "--addr",
            "--workers",
            "--queue-cap",
            "--no-store",
            "--timeout-ms",
            "--response-cache",
            "--fix-fingerprint",
            "--root",
            "--threads",
            "--guard",
            "--guard-ratio",
            "--idle-timeout-ms",
            "--rps",
            "--conns",
            "--duration",
            "--seed",
            "--access-log",
        ] {
            assert!(USAGE.contains(flag), "USAGE must document {flag}");
        }
    }

    #[test]
    fn profile_flag_is_polymorphic() {
        // A number keeps the legacy meaning: profiling-run instructions.
        match parse_args(&v(&["run", "4MEM-1", "--profile", "12345"])).unwrap() {
            Command::Run { opts, prof_out, .. } => {
                assert_eq!(opts.profile_instructions, 12_345);
                assert!(prof_out.is_none());
            }
            c => panic!("wrong command {c:?}"),
        }
        // A path enables the host profiler on run, compare and reproduce.
        match parse_args(&v(&["run", "4MEM-1", "--profile", "prof.json"])).unwrap() {
            Command::Run { opts, prof_out, .. } => {
                assert_eq!(opts.profile_instructions, 60_000, "default untouched");
                assert_eq!(prof_out.as_deref(), Some("prof.json"));
            }
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["compare", "2MEM-1", "--profile", "p.json"])).unwrap() {
            Command::Compare { prof_out, .. } => {
                assert_eq!(prof_out.as_deref(), Some("p.json"));
            }
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["reproduce", "--smoke", "--profile", "p.json"])).unwrap() {
            Command::Reproduce { prof_out, .. } => {
                assert_eq!(prof_out.as_deref(), Some("p.json"));
            }
            c => panic!("wrong command {c:?}"),
        }
    }

    #[test]
    fn client_buildinfo_verb_parses() {
        match parse_args(&v(&["client", "buildinfo"])).unwrap() {
            Command::Client { verbs, mix, .. } => {
                assert_eq!(verbs, vec!["buildinfo".to_string()]);
                assert!(mix.is_none());
            }
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["client", "health", "buildinfo", "metrics"])).unwrap() {
            Command::Client { verbs, .. } => {
                assert_eq!(verbs, vec!["health".to_string(), "buildinfo".into(), "metrics".into()]);
            }
            c => panic!("wrong command {c:?}"),
        }
    }

    #[test]
    fn analyze_parses_flags_and_defaults() {
        match parse_args(&v(&["analyze"])).unwrap() {
            Command::Analyze { json, fix_fingerprint, root, out } => {
                assert!(!json && !fix_fingerprint && root.is_none() && out.is_none());
            }
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&[
            "analyze",
            "--json",
            "--fix-fingerprint",
            "--root",
            "/tmp/ws",
            "--out",
            "analyze.json",
        ]))
        .unwrap()
        {
            Command::Analyze { json, fix_fingerprint, root, out } => {
                assert!(json && fix_fingerprint);
                assert_eq!(root.as_deref(), Some("/tmp/ws"));
                assert_eq!(out.as_deref(), Some("analyze.json"));
            }
            c => panic!("wrong command {c:?}"),
        }
        assert!(parse_args(&v(&["analyze", "--root"])).is_err());
    }

    #[test]
    fn client_policies_verb_parses() {
        match parse_args(&v(&["client", "policies"])).unwrap() {
            Command::Client { verbs, mix, .. } => {
                assert_eq!(verbs, vec!["policies".to_string()]);
                assert!(mix.is_none());
            }
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["client", "policies", "run", "4MEM-1"])).unwrap() {
            Command::Client { verbs, .. } => {
                assert_eq!(verbs, vec!["policies".to_string(), "run".into()]);
            }
            c => panic!("wrong command {c:?}"),
        }
    }

    #[test]
    fn unknown_policy_suggests_nearest_name() {
        let e = parse_args(&v(&["run", "4MEM-1", "--policy", "me-lerq"])).unwrap_err();
        assert!(e.contains("unknown policy"), "{e}");
        assert!(e.contains("did you mean 'me-lreq'"), "nearest-name suggestion missing: {e}");
        let e = parse_args(&v(&["compare", "4MEM-1", "--policies", "hf-rf,blis"])).unwrap_err();
        assert!(e.contains("did you mean 'bliss'"), "{e}");
    }

    #[test]
    fn parameterized_policy_tokens_parse_on_the_cli() {
        match parse_args(&v(&["run", "4MEM-1", "--policy", "bliss(threshold=8,clear=500)"]))
            .unwrap()
        {
            Command::Run { policy, .. } => {
                assert_eq!(policy.name(), "BLISS");
                assert_eq!(policy, PolicySpec::parse("bliss(threshold=8,clear=500)").unwrap());
            }
            c => panic!("wrong command {c:?}"),
        }
        match parse_args(&v(&["compare", "4MEM-1", "--policies", "tcm(quantum=1500),stf"])).unwrap()
        {
            Command::Compare { policies, .. } => {
                assert_eq!(
                    policies.iter().map(PolicySpec::name).collect::<Vec<_>>(),
                    vec!["TCM", "STF"]
                );
            }
            c => panic!("wrong command {c:?}"),
        }
    }

    #[test]
    fn usage_documents_the_registry_surface() {
        for needle in [
            "bliss",
            "tcm",
            "policies",
            "bliss(threshold=4,clear=10000)",
            "tcm(quantum=2000)",
            "me-lreq-on(epoch=50000)",
            "/policies",
        ] {
            assert!(USAGE.contains(needle), "USAGE must document {needle}");
        }
        // Every registered id and alias appears in or resolves from the
        // grammar USAGE describes.
        for d in melreq_memctrl::registry() {
            assert!(PolicySpec::parse(d.id).is_ok(), "{} must resolve", d.id);
        }
    }

    #[test]
    fn sweep_validates_kind() {
        assert!(parse_args(&v(&["sweep", "--kind", "mem"])).is_ok());
        assert!(parse_args(&v(&["sweep", "--kind", "bogus"])).is_err());
    }

    #[test]
    fn missing_values_and_unknown_flags_error() {
        assert!(parse_args(&v(&["run", "4MEM-1", "--policy"])).is_err());
        assert!(parse_args(&v(&["run", "4MEM-1", "--frobnicate"])).is_err());
        assert!(parse_args(&v(&["run"])).is_err());
        assert!(parse_args(&v(&["bogus"])).is_err());
    }

    #[test]
    fn policies_list_parses() {
        let c = parse_args(&v(&["compare", "4MEM-2", "--policies", "hf-rf,fq,stf"])).unwrap();
        match c {
            Command::Compare { policies, .. } => {
                assert_eq!(
                    policies.iter().map(PolicySpec::name).collect::<Vec<_>>(),
                    vec!["HF-RF", "FQ", "STF"]
                );
            }
            c => panic!("wrong command {c:?}"),
        }
    }
}
