//! The `melreq` command-line tool. See `melreq help`.

use melreq_cli::{parse_args, run_command};
use melreq_core::api::MelreqError;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = parse_args(&args).map_err(MelreqError::Usage).and_then(|cmd| run_command(&cmd));
    match result {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
