//! The `melreq` command-line tool. See `melreq help`.

use melreq_cli::{parse_args, run_command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|cmd| run_command(&cmd)) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
