//! Command parsing and command implementations for the `melreq` CLI.
//!
//! The binary (`src/main.rs`) is a thin shell over this library so the
//! parsing and the command logic are unit-testable.
//!
//! ```text
//! melreq profile [--apps swim,mcf] [--instructions N]
//! melreq run <MIX> [--policy me-lreq] [--instructions N] [--warmup N]
//! melreq trace <MIX> [--policy me-lreq] [--out trace.json] [--series s.csv]
//! melreq compare <MIX> [--policies hf-rf,rr,lreq,me,me-lreq,fq,stf]
//! melreq sweep [--kind mem|mix] [--policies ...]
//! melreq config [--cores N]
//! ```

pub mod commands;
pub mod parse;

pub use commands::run_command;
pub use parse::{parse_args, Command, ObsArgs, PolicySpec};
