//! End-to-end proof that `melreq analyze` exits nonzero on a seeded
//! snapshot-coverage hole, and that the `--out` artifact is written
//! before the gate decision (so CI keeps the report on failure).

use melreq_cli::{run_command, Command};
use melreq_core::api::MelreqError;
use std::path::{Path, PathBuf};

fn temp_tree(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("melreq-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    write(&root, "crates/snap/src/lib.rs", "pub const SCHEMA_VERSION: u32 = 1;\n");
    root
}

fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().expect("relative path has a parent"))
        .expect("create fixture dirs");
    std::fs::write(path, contents).expect("write fixture file");
}

const DRIFTED: &str = r#"pub struct Bank {
    ready_at: u64,
    lost: u64,
}

impl Bank {
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.ready_at);
    }

    pub fn load_state(&mut self, src: &[u64]) {
        self.ready_at = src[0];
    }
}
"#;

#[test]
fn unserialized_field_fails_the_gate_with_exit_7() {
    let root = temp_tree("gate");
    write(&root, "crates/dram/src/model.rs", DRIFTED);
    let out_path = root.join("analyze.json");

    let cmd = Command::Analyze {
        json: true,
        fix_fingerprint: false,
        root: Some(root.display().to_string()),
        out: Some(out_path.display().to_string()),
    };
    let err = run_command(&cmd).expect_err("a dropped field must fail the gate");
    assert_eq!(err.exit_code(), 7, "static-analysis findings map to exit code 7");
    match &err {
        MelreqError::Analysis(payload) => {
            assert!(payload.contains("\"rule\":\"S01\""), "payload carries the report");
            assert!(payload.contains("Bank.lost"));
        }
        other => panic!("expected MelreqError::Analysis, got {other:?}"),
    }

    // The artifact exists even though the command failed.
    let artifact = std::fs::read_to_string(&out_path).expect("--out written before gating");
    assert!(artifact.contains("\"rule\":\"S01\""));
    assert!(artifact.contains("\"tool\":\"melreq-analyze\""));

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn clean_tree_passes_after_fix_fingerprint() {
    let root = temp_tree("gate-clean");
    let cmd = Command::Analyze {
        json: false,
        fix_fingerprint: true,
        root: Some(root.display().to_string()),
        out: None,
    };
    let rendered = run_command(&cmd).expect("empty tree with fixed fingerprint is clean");
    assert!(rendered.contains("0 finding(s)"));

    let _ = std::fs::remove_dir_all(&root);
}
