//! # melreq-obs — deterministic trace & telemetry
//!
//! Observability layer for the melreq simulator, fed by the exact same
//! [`melreq_audit::AuditHandle`] tap points as the protocol checker —
//! no new hooks, and the disabled path stays a single `Option` check
//! (allocation-free). Three pillars:
//!
//! 1. **Structured event trace** ([`TraceRing`]): request arrivals,
//!    reconstructed DRAM commands (ACT/RD/WR/PRE), grants, refreshes
//!    and per-core memory-bound spans in a bounded drop-oldest ring,
//!    exported as Chrome/Perfetto `trace_event` JSON
//!    ([`export_chrome_json`]) with sim-cycles as timestamps.
//! 2. **Epoch time-series** ([`EpochRow`]): per-core IPC, pending
//!    reads and live ME values; per-channel queue depth, bus
//!    utilization and row-hit/read/write rates — sampled by
//!    `melreq_core::System` at exact epoch boundaries and rendered as
//!    CSV/JSON ([`series::render_csv`], [`series::render_json`]).
//! 3. **Decision provenance** ([`Rule`], [`RuleTotals`]): each grant
//!    is attributed to the scheduler rule that won it (row-hit-first,
//!    read-first, ME rank, LREQ count, FCFS tiebreak, …) plus the
//!    beaten runner-up, with per-policy totals.
//!
//! Tracing is *provably inert*: the collector only observes the event
//! stream — it never re-runs a policy (which would advance ME-LREQ's
//! tie-break RNG) and never calls back into the simulator, so enabling
//! it cannot change `RunOutcome`s or audit hashes. The determinism
//! test in `melreq-core` pins this for all five paper policies.

pub mod collector;
pub mod event;
pub mod hostprof;
pub mod metrics;
pub mod perfetto;
pub mod provenance;
pub mod series;

pub use collector::{ChannelSample, Collector, CoreSample, Fanout, ObsConfig};
pub use event::{CmdKind, TraceEvent, TraceRing};
pub use hostprof::export_host_profile;
pub use metrics::{Counter, Gauge, Histogram, MetricKind, Registry};
pub use perfetto::export_chrome_json;
pub use provenance::{Rule, RuleTotals, RunnerUp};
pub use series::EpochRow;
