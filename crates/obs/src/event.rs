//! The structured trace event model and its bounded ring buffer.
//!
//! Trace events are *derived observations*: the collector reconstructs
//! them from the same audit tap stream the protocol checker consumes
//! (`melreq_audit::AuditEvent`), so recording them cannot perturb the
//! simulation. Timestamps are simulation cycles.

use melreq_audit::GrantOutcome;
use melreq_stats::types::Cycle;
use std::collections::VecDeque;

use crate::provenance::{Rule, RunnerUp};

/// A DRAM command reconstructed from a grant's claimed row-buffer
/// outcome and the device timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    /// Row activate.
    Act,
    /// Column read (CAS latency + burst).
    Read,
    /// Column write.
    Write,
    /// Precharge (explicit, conflict-induced, or close-page auto).
    Pre,
}

impl CmdKind {
    /// Display name used as the Perfetto slice name.
    pub fn name(self) -> &'static str {
        match self {
            CmdKind::Act => "ACT",
            CmdKind::Read => "RD",
            CmdKind::Write => "WR",
            CmdKind::Pre => "PRE",
        }
    }
}

/// One entry of the structured event trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A request entered the controller's shared buffer.
    Arrival {
        /// Request id (monotone in arrival order).
        id: u64,
        /// Originating core.
        core: u16,
        /// Decoded channel.
        channel: usize,
        /// Decoded bank.
        bank: usize,
        /// Decoded row.
        row: u64,
        /// Write-back (true) or demand read (false).
        write: bool,
        /// Submission cycle.
        at: Cycle,
    },
    /// A reconstructed DRAM command occupying a bank for `dur` cycles.
    Command {
        /// Command type.
        kind: CmdKind,
        /// Channel.
        channel: usize,
        /// Bank.
        bank: usize,
        /// Request id the command serves (0 for explicit precharges).
        id: u64,
        /// Start cycle.
        at: Cycle,
        /// Occupancy in cycles.
        dur: Cycle,
    },
    /// An all-bank refresh held the channel for `dur` cycles.
    Refresh {
        /// Channel refreshed.
        channel: usize,
        /// Start cycle.
        at: Cycle,
        /// tRFC in CPU cycles.
        dur: Cycle,
    },
    /// A transaction was granted to the DRAM device.
    Grant {
        /// Request id.
        id: u64,
        /// Originating core.
        core: u16,
        /// Channel.
        channel: usize,
        /// Bank.
        bank: usize,
        /// Row.
        row: u64,
        /// Write-back (true) or read (false).
        write: bool,
        /// Effective grant cycle.
        at: Cycle,
        /// Cycles the request waited in the buffer before the grant.
        queued_for: Cycle,
        /// Claimed row-buffer outcome.
        outcome: GrantOutcome,
        /// Cycle of the last data beat.
        data_ready: Cycle,
        /// The scheduler rule that decided this grant (present when the
        /// tap emitted `Decision` events, i.e. `wants_decisions`).
        rule: Option<Rule>,
        /// The best candidate the winner beat, if any.
        runner_up: Option<RunnerUp>,
    },
    /// A span during which a core had at least one demand read
    /// outstanding at the memory controller (reconstructed memory-bound
    /// period; see DESIGN.md "Observability").
    CoreWait {
        /// Core.
        core: u16,
        /// First cycle with an outstanding read.
        from: Cycle,
        /// Cycle the last outstanding read's data returned.
        to: Cycle,
    },
}

impl TraceEvent {
    /// The event's primary timestamp (start cycle).
    pub fn at(&self) -> Cycle {
        match *self {
            TraceEvent::Arrival { at, .. }
            | TraceEvent::Command { at, .. }
            | TraceEvent::Refresh { at, .. }
            | TraceEvent::Grant { at, .. } => at,
            TraceEvent::CoreWait { from, .. } => from,
        }
    }
}

/// A bounded drop-oldest ring buffer of trace events.
///
/// When the buffer is full the oldest event is discarded and counted;
/// the trace therefore always holds the *most recent* window of the
/// run, which is what one wants when opening it in Perfetto.
#[derive(Debug)]
pub struct TraceRing {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl TraceRing {
    /// An empty ring holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        TraceRing { buf: VecDeque::new(), cap: cap.max(1), dropped: 0 }
    }

    /// Append one event, discarding the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refresh(at: Cycle) -> TraceEvent {
        TraceEvent::Refresh { channel: 0, at, dur: 10 }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = TraceRing::new(3);
        for t in 0..5 {
            r.push(refresh(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ats: Vec<Cycle> = r.iter().map(TraceEvent::at).collect();
        assert_eq!(ats, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = TraceRing::new(0);
        r.push(refresh(1));
        r.push(refresh(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
