//! The trace collector: an [`AuditSink`] that turns the audit tap
//! stream into the structured trace, the provenance totals, and the
//! event-derived half of the epoch time-series.
//!
//! The collector is attached through the exact same
//! `melreq_audit::AuditHandle` tap the protocol checker uses, so the
//! instrumented crates need no new hooks and the disabled path stays a
//! single `Option` check. Everything here is read-only observation:
//! the collector never calls back into the simulator and never re-runs
//! a policy (see `provenance`), which is what makes tracing provably
//! inert.

use melreq_audit::{AuditEvent, AuditHandle, AuditSink, GrantOutcome, TimingParams};
use melreq_memctrl::{Bliss, PriorityTable, TcmCluster};
use melreq_stats::types::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex};

use crate::event::{CmdKind, TraceEvent, TraceRing};
use crate::provenance::{classify, fix_rank, me_rank, PolicyView, Rule, RuleTotals, RunnerUp};
use crate::series::EpochRow;

/// Collector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Structured-trace ring capacity (drop-oldest beyond this).
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        // ~1M events ≈ a few hundred thousand grants: plenty for any
        // plot while bounding memory to tens of MB.
        ObsConfig { ring_capacity: 1 << 20 }
    }
}

/// Per-core sample handed in by the system at an epoch boundary.
#[derive(Debug, Clone, Copy)]
pub struct CoreSample {
    /// Cumulative committed instructions.
    pub committed: u64,
    /// Demand reads currently pending at the controller.
    pub pending_reads: u32,
}

/// Per-channel sample handed in by the system at an epoch boundary.
#[derive(Debug, Clone, Copy)]
pub struct ChannelSample {
    /// Requests currently queued for the channel.
    pub queue_depth: usize,
    /// Cumulative data-bus busy cycles.
    pub busy_cycles: Cycle,
}

/// Reconstructs memory-bound spans per core: a span is open while the
/// core has ≥ 1 demand read outstanding at the controller.
#[derive(Debug, Default)]
struct CoreTrack {
    inflight: u64,
    open_since: Option<Cycle>,
    /// Data-return times of granted reads, popped as time advances.
    completions: BinaryHeap<Reverse<Cycle>>,
}

/// Per-channel grant counts accumulated between epoch samples.
#[derive(Debug, Default, Clone)]
struct ChanAccum {
    reads: u64,
    writes: u64,
    row_hits: u64,
}

/// The deterministic trace/telemetry collector (see crate docs).
#[derive(Debug)]
pub struct Collector {
    ring: TraceRing,
    // --- configuration knowledge replicated from the tap stream ---
    timing: TimingParams,
    channels: usize,
    cores: usize,
    policy: String,
    read_first: bool,
    me: Vec<f64>,
    table: Option<PriorityTable>,
    fixed_rank: Option<Vec<u32>>,
    rr_next: usize,
    /// Tunable parameters announced via `PolicyParams`.
    params: Vec<(&'static str, u64)>,
    /// BLISS replica: blacklist bits, streak owner/length, grant count.
    bliss_blacklisted: Vec<bool>,
    bliss_last_core: Option<u16>,
    bliss_streak: u64,
    bliss_grants: u64,
    /// TCM replica: per-quantum read counts, grant count, ranks, shuffle.
    tcm_reads: Vec<u64>,
    tcm_grants: u64,
    tcm_rank: Vec<u32>,
    tcm_shuffle: u64,
    // --- provenance ---
    pending_rule: Option<(u64, Rule, Option<RunnerUp>)>,
    totals: Vec<(String, RuleTotals)>,
    decisions_seen: u64,
    // --- core memory-bound span reconstruction ---
    tracks: Vec<CoreTrack>,
    // --- epoch accumulators (event-derived half of the series) ---
    chan_accum: Vec<ChanAccum>,
    prev_committed: Vec<u64>,
    prev_busy: Vec<Cycle>,
    last_sample_at: Cycle,
    series: Vec<EpochRow>,
}

impl Collector {
    /// A collector with the given configuration.
    pub fn new(cfg: ObsConfig) -> Self {
        Collector {
            ring: TraceRing::new(cfg.ring_capacity),
            timing: TimingParams::default(),
            channels: 0,
            cores: 0,
            policy: String::new(),
            read_first: true,
            me: Vec::new(),
            table: None,
            fixed_rank: None,
            rr_next: 0,
            params: Vec::new(),
            bliss_blacklisted: Vec::new(),
            bliss_last_core: None,
            bliss_streak: 0,
            bliss_grants: 0,
            tcm_reads: Vec::new(),
            tcm_grants: 0,
            tcm_rank: Vec::new(),
            tcm_shuffle: 0,
            pending_rule: None,
            totals: Vec::new(),
            decisions_seen: 0,
            tracks: Vec::new(),
            chan_accum: Vec::new(),
            prev_committed: Vec::new(),
            prev_busy: Vec::new(),
            last_sample_at: 0,
            series: Vec::new(),
        }
    }

    /// A collector with default configuration, wrapped for sharing with
    /// an [`AuditHandle`]. Returns the handle to attach and the shared
    /// collector to read results back from after the run.
    pub fn shared(cfg: ObsConfig) -> (AuditHandle, Arc<Mutex<Collector>>) {
        let collector = Arc::new(Mutex::new(Collector::new(cfg)));
        let sink: Arc<Mutex<dyn AuditSink>> = collector.clone();
        (AuditHandle::from_shared(sink, true), collector)
    }

    // ---- results ----

    /// The structured event trace (most recent window, oldest first).
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Epoch time-series rows collected so far.
    pub fn series(&self) -> &[EpochRow] {
        &self.series
    }

    /// Per-policy rule-attribution totals, in first-seen order. The
    /// warm-up policy and the measured policy get separate buckets.
    pub fn rule_totals(&self) -> &[(String, RuleTotals)] {
        &self.totals
    }

    /// Rule totals for the policy active at the end of the run (the
    /// measured policy after a warm-up swap), if any decision was seen.
    pub fn active_rule_totals(&self) -> Option<(&str, &RuleTotals)> {
        self.totals
            .iter()
            .find(|(name, _)| *name == self.policy)
            .map(|(name, t)| (name.as_str(), t))
    }

    /// `Decision` events observed (0 when the tap had decisions off).
    pub fn decisions_seen(&self) -> u64 {
        self.decisions_seen
    }

    /// Device geometry as reported by `DramConfig` (channels, cores).
    pub fn geometry(&self) -> (usize, usize) {
        (self.channels, self.cores)
    }

    /// DRAM timing as reported by `DramConfig`.
    pub fn timing(&self) -> TimingParams {
        self.timing
    }

    /// Close still-open memory-bound spans. Call once after the run,
    /// before exporting; further events may reopen spans.
    pub fn finish(&mut self) {
        for core in 0..self.tracks.len() {
            // Drain queued completions, then close whatever remains
            // open at the latest cycle we know about.
            let last = self.tracks[core]
                .completions
                .iter()
                .map(|r| r.0)
                .max()
                .unwrap_or(self.last_sample_at);
            self.advance_track(core, Cycle::MAX);
            let t = &mut self.tracks[core];
            if let Some(from) = t.open_since.take() {
                let to = last.max(from);
                self.ring.push(TraceEvent::CoreWait { core: core as u16, from, to });
            }
        }
    }

    // ---- epoch sampling (driven by melreq_core::System) ----

    /// Record one epoch sample at cycle `at`. `cores` and `channels`
    /// carry the state only the system can see (cumulative committed
    /// instructions, live queue depths, cumulative bus-busy cycles);
    /// the collector supplies the event-derived rest.
    pub fn sample_epoch(&mut self, at: Cycle, cores: &[CoreSample], channels: &[ChannelSample]) {
        let dt = at.saturating_sub(self.last_sample_at).max(1) as f64;
        self.prev_committed.resize(cores.len(), 0);
        self.prev_busy.resize(channels.len(), 0);
        self.chan_accum.resize(channels.len(), ChanAccum::default());

        let ipc: Vec<f64> = cores
            .iter()
            .zip(&self.prev_committed)
            .map(|(c, &prev)| c.committed.saturating_sub(prev) as f64 / dt)
            .collect();
        let bus_util: Vec<f64> = channels
            .iter()
            .zip(&self.prev_busy)
            .map(|(c, &prev)| (c.busy_cycles.saturating_sub(prev) as f64 / dt).min(1.0))
            .collect();
        let row_hit_rate: Vec<f64> = self
            .chan_accum
            .iter()
            .map(|a| {
                let grants = a.reads + a.writes;
                if grants == 0 {
                    0.0
                } else {
                    a.row_hits as f64 / grants as f64
                }
            })
            .collect();
        self.series.push(EpochRow {
            cycle: at,
            ipc,
            pending_reads: cores.iter().map(|c| c.pending_reads).collect(),
            me: self.me.clone(),
            queue_depth: channels.iter().map(|c| c.queue_depth).collect(),
            bus_util,
            reads: self.chan_accum.iter().map(|a| a.reads).collect(),
            writes: self.chan_accum.iter().map(|a| a.writes).collect(),
            row_hit_rate,
        });

        for (prev, c) in self.prev_committed.iter_mut().zip(cores) {
            *prev = c.committed;
        }
        for (prev, c) in self.prev_busy.iter_mut().zip(channels) {
            *prev = c.busy_cycles;
        }
        for a in &mut self.chan_accum {
            *a = ChanAccum::default();
        }
        self.last_sample_at = at;
    }

    // ---- internals ----

    /// Pop completions up to `now`, closing the span when the last
    /// outstanding read returns.
    fn advance_track(&mut self, core: usize, now: Cycle) {
        while let Some(&Reverse(done)) = self.tracks[core].completions.peek() {
            if done > now {
                break;
            }
            self.tracks[core].completions.pop();
            let t = &mut self.tracks[core];
            t.inflight = t.inflight.saturating_sub(1);
            if t.inflight == 0 {
                if let Some(from) = t.open_since.take() {
                    self.ring.push(TraceEvent::CoreWait {
                        core: core as u16,
                        from,
                        to: done.max(from),
                    });
                }
            }
        }
    }

    /// The announced value of parameter `key`, or `default` when the
    /// stream never announced one.
    fn param(&self, key: &str, default: u64) -> u64 {
        self.params.iter().find(|(k, _)| *k == key).map_or(default, |(_, v)| *v)
    }

    /// Advance the replica of the active policy's grant-history state
    /// for one policy-selected (read) grant, mirroring `note_grant`.
    fn replay_note_grant(&mut self, core: u16) {
        match self.policy.as_str() {
            "RR" if self.cores > 0 => {
                self.rr_next = (usize::from(core) + 1) % self.cores;
            }
            "BLISS" => {
                if self.bliss_last_core == Some(core) {
                    self.bliss_streak += 1;
                } else {
                    self.bliss_last_core = Some(core);
                    self.bliss_streak = 1;
                }
                let threshold = self.param("threshold", u64::from(Bliss::DEFAULT_THRESHOLD));
                if self.bliss_streak >= threshold {
                    if let Some(b) = self.bliss_blacklisted.get_mut(usize::from(core)) {
                        *b = true;
                    }
                }
                self.bliss_grants += 1;
                if self.bliss_grants >= self.param("clear", Bliss::DEFAULT_CLEAR_INTERVAL) {
                    self.bliss_blacklisted.iter_mut().for_each(|b| *b = false);
                    self.bliss_grants = 0;
                }
            }
            "TCM" => {
                if let Some(r) = self.tcm_reads.get_mut(usize::from(core)) {
                    *r += 1;
                }
                self.tcm_grants += 1;
                if self.tcm_grants >= self.param("quantum", TcmCluster::DEFAULT_QUANTUM) {
                    self.tcm_rank =
                        TcmCluster::rank_from_interval(&self.tcm_reads, self.tcm_shuffle);
                    self.tcm_shuffle += 1;
                    self.tcm_reads.iter_mut().for_each(|r| *r = 0);
                    self.tcm_grants = 0;
                }
            }
            _ => {}
        }
    }

    fn current_totals(&mut self) -> &mut RuleTotals {
        if let Some(i) = self.totals.iter().position(|(name, _)| *name == self.policy) {
            &mut self.totals[i].1
        } else {
            self.totals.push((self.policy.clone(), RuleTotals::default()));
            &mut self.totals.last_mut().expect("just pushed").1
        }
    }

    /// Rebuild the replica policy state after a `CtrlConfig` or
    /// `ProfileUpdate` (both cheap and rare: attach, policy swap,
    /// online-ME epoch).
    fn rebuild_policy_caches(&mut self) {
        self.fixed_rank = None;
        self.table = None;
        if self.me.is_empty() {
            return;
        }
        match self.policy.as_str() {
            "ME" => self.fixed_rank = Some(me_rank(&self.me)),
            name if name.starts_with("FIX-") => self.fixed_rank = fix_rank(name, self.cores),
            "ME-LREQ" => self.table = Some(PriorityTable::new(&self.me)),
            _ => {}
        }
    }

    /// Reconstruct the DRAM command sequence a grant implies and push
    /// it onto the ring (an approximation for visualization: the write
    /// recovery before a close-page precharge is folded into the
    /// precharge slice).
    fn push_commands(&mut self, g: &GrantCmd) {
        let t = self.timing;
        let (id, channel, bank) = (g.id, g.channel, g.bank);
        let mut at = g.granted_at;
        if g.outcome == GrantOutcome::Conflict {
            self.ring.push(TraceEvent::Command {
                kind: CmdKind::Pre,
                channel,
                bank,
                id,
                at,
                dur: t.t_rp.max(1),
            });
            at += t.t_rp;
        }
        if g.outcome != GrantOutcome::Hit {
            self.ring.push(TraceEvent::Command {
                kind: CmdKind::Act,
                channel,
                bank,
                id,
                at,
                dur: t.t_rcd.max(1),
            });
            at += t.t_rcd;
        }
        let kind = if g.write { CmdKind::Write } else { CmdKind::Read };
        let dur = g.data_ready.saturating_sub(at).max(1);
        self.ring.push(TraceEvent::Command { kind, channel, bank, id, at, dur });
        if !g.keep_open {
            let pre_at = g.data_ready + if g.write { t.t_wr } else { 0 };
            self.ring.push(TraceEvent::Command {
                kind: CmdKind::Pre,
                channel,
                bank,
                id,
                at: pre_at,
                dur: t.t_rp.max(1),
            });
        }
    }
}

/// The slice of a `Grant` event that drives command reconstruction.
#[derive(Debug, Clone, Copy)]
struct GrantCmd {
    id: u64,
    channel: usize,
    bank: usize,
    write: bool,
    granted_at: Cycle,
    data_ready: Cycle,
    keep_open: bool,
    outcome: GrantOutcome,
}

impl AuditSink for Collector {
    fn record(&mut self, ev: &AuditEvent) {
        match ev {
            AuditEvent::DramConfig { channels, timing, .. } => {
                self.channels = *channels;
                self.timing = *timing;
                self.chan_accum.resize(*channels, ChanAccum::default());
                self.prev_busy.resize(*channels, 0);
            }
            AuditEvent::CtrlConfig { cores, policy, read_first, .. } => {
                self.cores = *cores;
                self.policy = (*policy).to_string();
                self.read_first = *read_first;
                // A (re-)announced policy is freshly constructed: its
                // rotation pointer, blacklist, and clustering all start
                // from their initial state.
                self.rr_next = 0;
                self.params = Vec::new();
                self.bliss_blacklisted = vec![false; *cores];
                self.bliss_last_core = None;
                self.bliss_streak = 0;
                self.bliss_grants = 0;
                self.tcm_reads = vec![0; *cores];
                self.tcm_grants = 0;
                self.tcm_rank = vec![0; *cores];
                self.tcm_shuffle = 0;
                self.pending_rule = None;
                while self.tracks.len() < *cores {
                    self.tracks.push(CoreTrack::default());
                }
                self.prev_committed.resize(*cores, 0);
                self.rebuild_policy_caches();
            }
            AuditEvent::PolicyParams { params } => {
                self.params = params.clone();
            }
            AuditEvent::ProfileUpdate { me } => {
                self.me = me.clone();
                self.rebuild_policy_caches();
            }
            AuditEvent::Submit { id, core, channel, bank, row, write, at } => {
                self.ring.push(TraceEvent::Arrival {
                    id: *id,
                    core: *core,
                    channel: *channel,
                    bank: *bank,
                    row: *row,
                    write: *write,
                    at: *at,
                });
                let core = *core as usize;
                if !*write && core < self.tracks.len() {
                    self.advance_track(core, *at);
                    let t = &mut self.tracks[core];
                    t.inflight += 1;
                    if t.inflight == 1 {
                        t.open_since = Some(*at);
                    }
                }
            }
            AuditEvent::Refresh { channel, at } => {
                self.ring.push(TraceEvent::Refresh {
                    channel: *channel,
                    at: *at,
                    dur: self.timing.t_rfc.max(1),
                });
            }
            AuditEvent::Precharge { channel, bank, at } => {
                self.ring.push(TraceEvent::Command {
                    kind: CmdKind::Pre,
                    channel: *channel,
                    bank: *bank,
                    id: 0,
                    at: *at,
                    dur: self.timing.t_rp.max(1),
                });
            }
            AuditEvent::Decision { draining, chosen, candidates, pending_reads, .. } => {
                self.decisions_seen += 1;
                let view = PolicyView {
                    name: &self.policy,
                    read_first: self.read_first,
                    table: self.table.as_ref(),
                    fixed_rank: self.fixed_rank.as_deref(),
                    me: &self.me,
                    rr_next: self.rr_next,
                    blacklisted: &self.bliss_blacklisted,
                    tcm_rank: &self.tcm_rank,
                    cores: self.cores,
                };
                let (rule, runner_up) =
                    classify(&view, *draining, *chosen, candidates, pending_reads);
                self.current_totals().add(rule);
                self.pending_rule = Some((*chosen, rule, runner_up));
            }
            AuditEvent::Grant {
                id,
                core,
                channel,
                bank,
                row,
                write,
                requested_at,
                granted_at,
                keep_open,
                outcome,
                data_ready,
            } => {
                let (rule, runner_up) = match self.pending_rule.take() {
                    Some((decided, rule, ru)) if decided == *id => (Some(rule), ru),
                    _ => (None, None),
                };
                self.ring.push(TraceEvent::Grant {
                    id: *id,
                    core: *core,
                    channel: *channel,
                    bank: *bank,
                    row: *row,
                    write: *write,
                    at: *granted_at,
                    queued_for: granted_at.saturating_sub(*requested_at),
                    outcome: *outcome,
                    data_ready: *data_ready,
                    rule,
                    runner_up,
                });
                self.push_commands(&GrantCmd {
                    id: *id,
                    channel: *channel,
                    bank: *bank,
                    write: *write,
                    granted_at: *granted_at,
                    data_ready: *data_ready,
                    keep_open: *keep_open,
                    outcome: *outcome,
                });
                if let Some(a) = self.chan_accum.get_mut(*channel) {
                    if *write {
                        a.writes += 1;
                    } else {
                        a.reads += 1;
                    }
                    if *outcome == GrantOutcome::Hit {
                        a.row_hits += 1;
                    }
                }
                if !*write {
                    // Replay the grant-history policy state: `note_grant`
                    // fires exactly on policy-selected (read) grants.
                    self.replay_note_grant(*core);
                    let core = *core as usize;
                    if core < self.tracks.len() {
                        self.tracks[core].completions.push(Reverse(*data_ready));
                    }
                }
            }
        }
    }
}

/// Forward each audit event to several sinks (e.g. a protocol auditor
/// *and* a trace collector on the same tap).
#[derive(Debug)]
pub struct Fanout {
    sinks: Vec<Arc<Mutex<dyn AuditSink>>>,
}

impl Fanout {
    /// A fanout over `sinks`, notified in order.
    pub fn new(sinks: Vec<Arc<Mutex<dyn AuditSink>>>) -> Self {
        Fanout { sinks }
    }

    /// Wrap a fanout over `sinks` in a ready-to-attach handle.
    pub fn handle(sinks: Vec<Arc<Mutex<dyn AuditSink>>>, decisions: bool) -> AuditHandle {
        AuditHandle::new(Fanout::new(sinks), decisions)
    }
}

impl AuditSink for Fanout {
    fn record(&mut self, ev: &AuditEvent) {
        for s in &self.sinks {
            s.lock().expect("fanout sink poisoned").record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use melreq_audit::CandidateInfo;

    fn base_config(c: &mut Collector, policy: &'static str) {
        c.record(&AuditEvent::DramConfig {
            channels: 1,
            banks_per_channel: 4,
            timing: TimingParams {
                t_rcd: 10,
                t_cl: 10,
                t_rp: 10,
                t_wr: 8,
                burst: 4,
                t_refi: 0,
                t_rfc: 60,
                t_rrd: 0,
                t_faw: 0,
            },
        });
        c.record(&AuditEvent::CtrlConfig {
            cores: 2,
            policy,
            read_first: true,
            buffer_entries: 64,
            drain_start: 32,
            drain_stop: 16,
            overhead: 0,
        });
        c.record(&AuditEvent::ProfileUpdate { me: vec![4.0, 2.0] });
    }

    fn grant(id: u64, core: u16, write: bool, at: Cycle, outcome: GrantOutcome) -> AuditEvent {
        AuditEvent::Grant {
            id,
            core,
            channel: 0,
            bank: 0,
            row: 1,
            write,
            requested_at: at,
            granted_at: at,
            keep_open: true,
            outcome,
            data_ready: at + 24,
        }
    }

    #[test]
    fn decision_then_grant_attributes_rule() {
        let mut c = Collector::new(ObsConfig { ring_capacity: 64 });
        base_config(&mut c, "HF-RF");
        c.record(&AuditEvent::Decision {
            channel: 0,
            at: 5,
            draining: false,
            chosen: 1,
            candidates: vec![
                CandidateInfo {
                    id: 1,
                    core: 0,
                    bank: 0,
                    row: 1,
                    write: false,
                    row_hit: true,
                    arrival: 0,
                },
                CandidateInfo {
                    id: 0,
                    core: 1,
                    bank: 1,
                    row: 2,
                    write: false,
                    row_hit: false,
                    arrival: 0,
                },
            ],
            pending_reads: vec![1, 1],
        });
        c.record(&grant(1, 0, false, 5, GrantOutcome::Hit));
        let (name, totals) = c.active_rule_totals().expect("totals");
        assert_eq!(name, "HF-RF");
        assert_eq!(totals.get(Rule::RowHitFirst), 1);
        let g = c.ring().iter().find_map(|e| match e {
            TraceEvent::Grant { rule, runner_up, .. } => Some((*rule, *runner_up)),
            _ => None,
        });
        let (rule, ru) = g.expect("grant traced");
        assert_eq!(rule, Some(Rule::RowHitFirst));
        assert_eq!(ru.map(|r| r.id), Some(0));
    }

    #[test]
    fn policy_swap_opens_a_new_totals_bucket() {
        let mut c = Collector::new(ObsConfig::default());
        base_config(&mut c, "HF-RF");
        let one_decision = |c: &mut Collector| {
            c.record(&AuditEvent::Decision {
                channel: 0,
                at: 5,
                draining: false,
                chosen: 1,
                candidates: vec![CandidateInfo {
                    id: 1,
                    core: 0,
                    bank: 0,
                    row: 1,
                    write: false,
                    row_hit: false,
                    arrival: 0,
                }],
                pending_reads: vec![1, 0],
            });
        };
        one_decision(&mut c);
        c.record(&AuditEvent::CtrlConfig {
            cores: 2,
            policy: "ME-LREQ",
            read_first: true,
            buffer_entries: 64,
            drain_start: 32,
            drain_stop: 16,
            overhead: 0,
        });
        one_decision(&mut c);
        assert_eq!(c.rule_totals().len(), 2);
        assert_eq!(c.rule_totals()[0].0, "HF-RF");
        assert_eq!(c.active_rule_totals().expect("active").0, "ME-LREQ");
    }

    #[test]
    fn grant_synthesizes_commands_by_outcome() {
        let mut c = Collector::new(ObsConfig::default());
        base_config(&mut c, "HF-RF");
        c.record(&grant(0, 0, false, 100, GrantOutcome::Conflict));
        let kinds: Vec<CmdKind> = c
            .ring()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Command { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![CmdKind::Pre, CmdKind::Act, CmdKind::Read]);
    }

    #[test]
    fn epoch_sample_computes_rates_and_resets_accumulators() {
        let mut c = Collector::new(ObsConfig::default());
        base_config(&mut c, "HF-RF");
        c.record(&grant(0, 0, false, 50, GrantOutcome::Hit));
        c.record(&grant(1, 1, true, 60, GrantOutcome::ClosedMiss));
        c.sample_epoch(
            100,
            &[
                CoreSample { committed: 80, pending_reads: 2 },
                CoreSample { committed: 40, pending_reads: 0 },
            ],
            &[ChannelSample { queue_depth: 3, busy_cycles: 25 }],
        );
        let row = &c.series()[0];
        assert_eq!(row.cycle, 100);
        assert!((row.ipc[0] - 0.8).abs() < 1e-12);
        assert_eq!(row.pending_reads, vec![2, 0]);
        assert_eq!(row.queue_depth, vec![3]);
        assert!((row.bus_util[0] - 0.25).abs() < 1e-12);
        assert_eq!(row.reads, vec![1]);
        assert_eq!(row.writes, vec![1]);
        assert!((row.row_hit_rate[0] - 0.5).abs() < 1e-12);
        // Second epoch: deltas, not cumulative values.
        c.sample_epoch(
            200,
            &[
                CoreSample { committed: 100, pending_reads: 0 },
                CoreSample { committed: 60, pending_reads: 1 },
            ],
            &[ChannelSample { queue_depth: 0, busy_cycles: 35 }],
        );
        let row = &c.series()[1];
        assert!((row.ipc[0] - 0.2).abs() < 1e-12);
        assert!((row.bus_util[0] - 0.1).abs() < 1e-12);
        assert_eq!(row.reads, vec![0]);
        assert_eq!(row.row_hit_rate[0], 0.0);
    }

    #[test]
    fn core_wait_spans_open_and_close() {
        let mut c = Collector::new(ObsConfig::default());
        base_config(&mut c, "HF-RF");
        c.record(&AuditEvent::Submit {
            id: 0,
            core: 0,
            channel: 0,
            bank: 0,
            row: 1,
            write: false,
            at: 10,
        });
        c.record(&grant(0, 0, false, 20, GrantOutcome::Hit)); // data_ready 44
        c.finish();
        let span = c.ring().iter().find_map(|e| match e {
            TraceEvent::CoreWait { core, from, to } => Some((*core, *from, *to)),
            _ => None,
        });
        assert_eq!(span, Some((0, 10, 44)));
    }

    #[test]
    fn fanout_feeds_all_sinks() {
        let a: Arc<Mutex<dyn AuditSink>> = Arc::new(Mutex::new(melreq_audit::Recorder::default()));
        let collector = Arc::new(Mutex::new(Collector::new(ObsConfig::default())));
        let c_dyn: Arc<Mutex<dyn AuditSink>> = collector.clone();
        let h = Fanout::handle(vec![a.clone(), c_dyn], true);
        h.emit(|| AuditEvent::Refresh { channel: 0, at: 7 });
        assert!(format!("{:?}", a.lock().expect("recorder")).contains("Refresh"));
        assert_eq!(collector.lock().expect("collector").ring().len(), 1);
    }
}
