//! Chrome/Perfetto `trace_event` JSON export.
//!
//! One process per channel (threads = banks, thread 0 = channel-level
//! events such as refresh) plus one process for the cores. Timestamps
//! are simulation cycles (the viewer displays them as microseconds —
//! read 1 µs as 1 cycle). Events are sorted by start time at export,
//! so the emitted array has monotonically non-decreasing `ts` over all
//! non-metadata entries — CI checks exactly this.

use std::fmt::Write as _;

use melreq_audit::GrantOutcome;
use melreq_stats::types::Cycle;

use crate::collector::Collector;
use crate::event::TraceEvent;

/// pid of the synthetic "cores" process (channels take 1..=channels).
fn cores_pid(channels: usize) -> usize {
    channels + 1
}

fn outcome_name(o: GrantOutcome) -> &'static str {
    match o {
        GrantOutcome::Hit => "hit",
        GrantOutcome::ClosedMiss => "closed-miss",
        GrantOutcome::Conflict => "conflict",
    }
}

/// Append one `trace_event` record with the `",\n"` separator protocol
/// (shared with the host-profile exporter in [`crate::hostprof`]).
pub(crate) fn push_event(out: &mut String, first: &mut bool, body: std::fmt::Arguments<'_>) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("    ");
    let _ = out.write_fmt(body);
}

/// Render the collector's trace (and epoch series, as counter tracks)
/// as a Chrome `trace_event` JSON object.
pub fn export_chrome_json(collector: &Collector) -> String {
    let (channels, cores) = collector.geometry();
    let mut out = format!(
        "{{\n  \"schema_version\": {},\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n",
        melreq_snap::SCHEMA_VERSION
    );
    let mut first = true;

    // Track metadata first (ph "M" entries are exempt from the
    // monotonic-ts contract).
    for ch in 0..channels {
        push_event(
            &mut out,
            &mut first,
            format_args!(
                "{{\"ph\": \"M\", \"pid\": {pid}, \"name\": \"process_name\", \
                 \"args\": {{\"name\": \"channel {ch}\"}}}}",
                pid = ch + 1
            ),
        );
        push_event(
            &mut out,
            &mut first,
            format_args!(
                "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"channel\"}}}}",
                pid = ch + 1
            ),
        );
    }
    push_event(
        &mut out,
        &mut first,
        format_args!(
            "{{\"ph\": \"M\", \"pid\": {pid}, \"name\": \"process_name\", \
             \"args\": {{\"name\": \"cores\"}}}}",
            pid = cores_pid(channels)
        ),
    );
    for core in 0..cores {
        push_event(
            &mut out,
            &mut first,
            format_args!(
                "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"core {core}\"}}}}",
                pid = cores_pid(channels),
                tid = core + 1
            ),
        );
    }

    // Sort by start cycle: the raw stream is in emission order, and a
    // lazily synced device may emit a refresh with an earlier timestamp
    // than the grant that triggered the sync.
    let mut events: Vec<&TraceEvent> = collector.ring().iter().collect();
    events.sort_by_key(|e| e.at());
    let counters = collector.series();
    let mut counter_i = 0usize;

    let mut flush_counters = |out: &mut String, first: &mut bool, up_to: Cycle| {
        while counter_i < counters.len() && counters[counter_i].cycle <= up_to {
            let row = &counters[counter_i];
            for (ch, depth) in row.queue_depth.iter().enumerate() {
                push_event(
                    out,
                    first,
                    format_args!(
                        "{{\"ph\": \"C\", \"pid\": {pid}, \"ts\": {ts}, \
                         \"name\": \"queue depth\", \"args\": {{\"requests\": {depth}}}}}",
                        pid = ch + 1,
                        ts = row.cycle
                    ),
                );
            }
            counter_i += 1;
        }
    };

    for ev in events {
        flush_counters(&mut out, &mut first, ev.at());
        match ev {
            TraceEvent::Arrival { id, core, channel, bank, row, write, at } => {
                push_event(
                    &mut out,
                    &mut first,
                    format_args!(
                        "{{\"ph\": \"i\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {at}, \
                         \"s\": \"t\", \"name\": \"arrival\", \"cat\": \"request\", \
                         \"args\": {{\"id\": {id}, \"channel\": {channel}, \"bank\": {bank}, \
                         \"row\": {row}, \"write\": {write}}}}}",
                        pid = cores_pid(channels),
                        tid = *core as usize + 1
                    ),
                );
            }
            TraceEvent::Command { kind, channel, bank, id, at, dur } => {
                push_event(
                    &mut out,
                    &mut first,
                    format_args!(
                        "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {at}, \
                         \"dur\": {dur}, \"name\": \"{name}\", \"cat\": \"dram\", \
                         \"args\": {{\"id\": {id}}}}}",
                        pid = channel + 1,
                        tid = bank + 1,
                        name = kind.name()
                    ),
                );
            }
            TraceEvent::Refresh { channel, at, dur } => {
                push_event(
                    &mut out,
                    &mut first,
                    format_args!(
                        "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": 0, \"ts\": {at}, \
                         \"dur\": {dur}, \"name\": \"REFRESH\", \"cat\": \"dram\", \
                         \"args\": {{}}}}",
                        pid = channel + 1
                    ),
                );
            }
            TraceEvent::Grant {
                id,
                core,
                channel,
                bank,
                row,
                write,
                at,
                queued_for,
                outcome,
                data_ready,
                rule,
                runner_up,
            } => {
                let rule_name = rule.map_or("untracked", |r| r.name());
                let mut extra = String::new();
                if let Some(ru) = runner_up {
                    let _ = write!(extra, ", \"beat_id\": {}, \"beat_core\": {}", ru.id, ru.core);
                }
                push_event(
                    &mut out,
                    &mut first,
                    format_args!(
                        "{{\"ph\": \"i\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {at}, \
                         \"s\": \"t\", \"name\": \"grant core{core}\", \"cat\": \"sched\", \
                         \"args\": {{\"id\": {id}, \"row\": {row}, \"write\": {write}, \
                         \"outcome\": \"{oc}\", \"rule\": \"{rule_name}\", \
                         \"queued_for\": {queued_for}, \"data_ready\": {data_ready}{extra}}}}}",
                        pid = channel + 1,
                        tid = bank + 1,
                        oc = outcome_name(*outcome)
                    ),
                );
            }
            TraceEvent::CoreWait { core, from, to } => {
                push_event(
                    &mut out,
                    &mut first,
                    format_args!(
                        "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {from}, \
                         \"dur\": {dur}, \"name\": \"mem-wait\", \"cat\": \"core\", \
                         \"args\": {{}}}}",
                        pid = cores_pid(channels),
                        tid = *core as usize + 1,
                        dur = to.saturating_sub(*from).max(1)
                    ),
                );
            }
        }
    }
    flush_counters(&mut out, &mut first, Cycle::MAX);

    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{ChannelSample, CoreSample, ObsConfig};
    use melreq_audit::{AuditEvent, AuditSink, TimingParams};

    fn collector_with_activity() -> Collector {
        let mut c = Collector::new(ObsConfig::default());
        c.record(&AuditEvent::DramConfig {
            channels: 2,
            banks_per_channel: 4,
            timing: TimingParams { t_rcd: 10, t_rp: 10, t_rfc: 60, ..TimingParams::default() },
        });
        c.record(&AuditEvent::CtrlConfig {
            cores: 2,
            policy: "HF-RF",
            read_first: true,
            buffer_entries: 64,
            drain_start: 32,
            drain_stop: 16,
            overhead: 0,
        });
        c.record(&AuditEvent::Submit {
            id: 0,
            core: 1,
            channel: 0,
            bank: 2,
            row: 9,
            write: false,
            at: 5,
        });
        c.record(&AuditEvent::Grant {
            id: 0,
            core: 1,
            channel: 0,
            bank: 2,
            row: 9,
            write: false,
            requested_at: 5,
            granted_at: 12,
            keep_open: true,
            outcome: melreq_audit::GrantOutcome::ClosedMiss,
            data_ready: 40,
        });
        // An out-of-order (late-synced) refresh: export must re-sort.
        c.record(&AuditEvent::Refresh { channel: 1, at: 2 });
        c.sample_epoch(
            50,
            &[CoreSample { committed: 10, pending_reads: 0 }; 2],
            &[ChannelSample { queue_depth: 1, busy_cycles: 4 }; 2],
        );
        c.finish();
        c
    }

    fn ts_values(json: &str) -> Vec<i64> {
        // Non-metadata events all carry "ts": N — extract in order.
        json.lines()
            .filter(|l| !l.contains("\"ph\": \"M\""))
            .filter_map(|l| {
                let i = l.find("\"ts\": ")?;
                let rest = &l[i + 6..];
                let end = rest.find([',', '}'])?;
                rest[..end].trim().parse().ok()
            })
            .collect()
    }

    #[test]
    fn export_is_time_sorted_and_structured() {
        let c = collector_with_activity();
        let json = export_chrome_json(&c);
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\": \"channel 0\""));
        assert!(json.contains("\"name\": \"cores\""));
        assert!(json.contains("REFRESH"));
        assert!(json.contains("\"name\": \"ACT\""));
        assert!(json.contains("mem-wait"));
        assert!(json.contains("queue depth"));
        let ts = ts_values(&json);
        assert!(!ts.is_empty());
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts must be non-decreasing: {ts:?}");
    }

    #[test]
    fn export_balances_braces_and_brackets() {
        let json = export_chrome_json(&collector_with_activity());
        let depth_ok = |open: char, close: char| {
            let mut d = 0i64;
            for ch in json.chars() {
                if ch == open {
                    d += 1;
                } else if ch == close {
                    d -= 1;
                    assert!(d >= 0);
                }
            }
            d == 0
        };
        assert!(depth_ok('{', '}'));
        assert!(depth_ok('[', ']'));
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n  ]"));
    }
}
