//! The epoch time-series: periodic samples of system state for
//! plotting, dumped as CSV or JSON.
//!
//! Sampling is driven by `melreq_core::System` at exact `sample_epoch`
//! boundaries (the fast-forward kernel clamps its jumps to land on
//! them, exactly like the online-ME estimator), so rows are identical
//! between the fast-forward and tick-exact kernels.

use melreq_stats::types::Cycle;
use std::fmt::Write as _;

/// One epoch's sample. All rates are over the epoch just ended.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRow {
    /// Cycle the epoch ended (the sample point).
    pub cycle: Cycle,
    /// Per-core committed instructions per cycle over the epoch.
    pub ipc: Vec<f64>,
    /// Per-core pending demand reads at the sample point.
    pub pending_reads: Vec<u32>,
    /// Live per-core ME values feeding the priority tables.
    pub me: Vec<f64>,
    /// Per-channel request-queue depth at the sample point.
    pub queue_depth: Vec<usize>,
    /// Per-channel data-bus utilization over the epoch (0..=1).
    pub bus_util: Vec<f64>,
    /// Per-channel reads granted during the epoch.
    pub reads: Vec<u64>,
    /// Per-channel writes granted during the epoch.
    pub writes: Vec<u64>,
    /// Per-channel row-hit fraction of the epoch's grants (0 when no
    /// grant landed in the epoch).
    pub row_hit_rate: Vec<f64>,
}

/// Render rows as CSV with a dynamic per-core/per-channel header. The
/// first line is a `# schema_version=N` comment stamping the artifact
/// with the workspace-wide schema version (`melreq_snap::SCHEMA_VERSION`).
pub fn render_csv(rows: &[EpochRow], cores: usize, channels: usize) -> String {
    let mut out = format!("# schema_version={}\n", melreq_snap::SCHEMA_VERSION);
    out.push_str("cycle");
    for i in 0..cores {
        let _ = write!(out, ",core{i}_ipc,core{i}_pending,core{i}_me");
    }
    for c in 0..channels {
        let _ = write!(
            out,
            ",ch{c}_queue_depth,ch{c}_bus_util,ch{c}_reads,ch{c}_writes,ch{c}_row_hit_rate"
        );
    }
    out.push('\n');
    for r in rows {
        let _ = write!(out, "{}", r.cycle);
        for i in 0..cores {
            let _ = write!(
                out,
                ",{:.6},{},{:.6}",
                r.ipc.get(i).copied().unwrap_or(0.0),
                r.pending_reads.get(i).copied().unwrap_or(0),
                r.me.get(i).copied().unwrap_or(0.0)
            );
        }
        for c in 0..channels {
            let _ = write!(
                out,
                ",{},{:.6},{},{},{:.6}",
                r.queue_depth.get(c).copied().unwrap_or(0),
                r.bus_util.get(c).copied().unwrap_or(0.0),
                r.reads.get(c).copied().unwrap_or(0),
                r.writes.get(c).copied().unwrap_or(0),
                r.row_hit_rate.get(c).copied().unwrap_or(0.0)
            );
        }
        out.push('\n');
    }
    out
}

fn json_f64_list(out: &mut String, vals: &[f64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if v.is_finite() {
            let _ = write!(out, "{v:.6}");
        } else {
            out.push_str("null");
        }
    }
    out.push(']');
}

/// Render rows as a versioned JSON document:
/// `{"schema_version": N, "rows": [...]}` with one object per epoch.
pub fn render_json(rows: &[EpochRow]) -> String {
    let mut out = format!("{{\"schema_version\": {}, \"rows\": [\n", melreq_snap::SCHEMA_VERSION);
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(out, "  {{\"cycle\": {}, \"ipc\": ", r.cycle);
        json_f64_list(&mut out, &r.ipc);
        out.push_str(", \"pending_reads\": [");
        for (j, p) in r.pending_reads.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{p}");
        }
        out.push_str("], \"me\": ");
        json_f64_list(&mut out, &r.me);
        out.push_str(", \"queue_depth\": [");
        for (j, q) in r.queue_depth.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{q}");
        }
        out.push_str("], \"bus_util\": ");
        json_f64_list(&mut out, &r.bus_util);
        out.push_str(", \"reads\": [");
        for (j, n) in r.reads.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{n}");
        }
        out.push_str("], \"writes\": [");
        for (j, n) in r.writes.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{n}");
        }
        out.push_str("], \"row_hit_rate\": ");
        json_f64_list(&mut out, &r.row_hit_rate);
        out.push('}');
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cycle: Cycle) -> EpochRow {
        EpochRow {
            cycle,
            ipc: vec![0.5, 1.0],
            pending_reads: vec![3, 0],
            me: vec![2.0, 8.0],
            queue_depth: vec![4],
            bus_util: vec![0.25],
            reads: vec![10],
            writes: vec![2],
            row_hit_rate: vec![0.5],
        }
    }

    #[test]
    fn csv_has_schema_stamp_header_and_one_line_per_row() {
        let csv = render_csv(&[row(100), row(200)], 2, 1);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], format!("# schema_version={}", melreq_snap::SCHEMA_VERSION));
        assert!(lines[1].starts_with("cycle,core0_ipc"));
        assert!(lines[1].contains("ch0_row_hit_rate"));
        assert!(lines[2].starts_with("100,"));
        // header column count matches data column count
        assert_eq!(lines[1].split(',').count(), lines[2].split(',').count());
    }

    #[test]
    fn json_is_a_versioned_document_of_row_objects() {
        let json = render_json(&[row(100)]);
        assert!(json.starts_with(&format!(
            "{{\"schema_version\": {}, \"rows\": [",
            melreq_snap::SCHEMA_VERSION
        )));
        assert!(json.contains("\"cycle\": 100"));
        assert!(json.contains("\"row_hit_rate\""));
        assert!(json.trim_end().ends_with("]}"));
    }
}
