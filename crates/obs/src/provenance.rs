//! Scheduler decision provenance: which rule won each grant.
//!
//! The collector re-derives, for every `Decision` event in the audit tap
//! stream, *why* the chosen request beat the others — purely from the
//! candidate set, the per-core pending-read counts, and a replica of the
//! policy's public state (ME vector / priority table / rotation
//! pointer). The real policy object is never consulted and never
//! re-run, so classification cannot advance ME-LREQ's tie-break RNG or
//! otherwise perturb the simulation.
//!
//! Classification is attribution, not arbitration: the observed
//! `chosen` id is always taken as ground truth. When the replica cannot
//! explain the choice (an external policy such as FQ/STF, or an
//! ablation table the tap stream does not describe), the grant is
//! attributed to [`Rule::External`] rather than guessed.

use melreq_audit::CandidateInfo;
use melreq_memctrl::PriorityTable;
use melreq_stats::types::CoreId;

/// The rule that decided a grant (see DESIGN.md "Observability" for the
/// full decision tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Only one schedulable request existed: no arbitration happened.
    OnlyCandidate,
    /// The sole schedulable read bypassed pending writes.
    ReadFirst,
    /// Same-core contest settled by the open-row buffer (hit vs. miss).
    RowHitFirst,
    /// Same class, same standing: arrival order broke the tie.
    FcfsTiebreak,
    /// Round-Robin's rotation pointer picked the winning core.
    RoundRobin,
    /// A fixed core ranking (ME or FIX-*) — or, for ME-LREQ, the ME
    /// term with pending counts equal — picked the winning core.
    MeRank,
    /// The pending-read count (LREQ, or ME-LREQ with equal ME) picked
    /// the winning core.
    LreqCount,
    /// ME-LREQ's full `ME/PendingRead` ratio decided (both terms
    /// differed between the contending cores).
    MeLreqRatio,
    /// ME-LREQ's quantized priorities tied; the seeded RNG picked.
    RandomTie,
    /// BLISS's blacklist bit demoted the beaten core's requests.
    BlissBlacklist,
    /// TCM's cluster ranking picked the winning core.
    TcmCluster,
    /// Write-drain mode: writes were being flushed ahead of reads.
    WriteDrain,
    /// No read was schedulable, so a write went out opportunistically.
    WriteFallback,
    /// An external or unreplicable policy made the call (FQ, STF,
    /// ablation tables).
    External,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 14] = [
        Rule::OnlyCandidate,
        Rule::ReadFirst,
        Rule::RowHitFirst,
        Rule::FcfsTiebreak,
        Rule::RoundRobin,
        Rule::MeRank,
        Rule::LreqCount,
        Rule::MeLreqRatio,
        Rule::RandomTie,
        Rule::BlissBlacklist,
        Rule::TcmCluster,
        Rule::WriteDrain,
        Rule::WriteFallback,
        Rule::External,
    ];

    /// Display name used in reports and trace args.
    pub fn name(self) -> &'static str {
        match self {
            Rule::OnlyCandidate => "only-candidate",
            Rule::ReadFirst => "read-first",
            Rule::RowHitFirst => "row-hit-first",
            Rule::FcfsTiebreak => "fcfs-tiebreak",
            Rule::RoundRobin => "round-robin",
            Rule::MeRank => "me-rank",
            Rule::LreqCount => "lreq-count",
            Rule::MeLreqRatio => "me-lreq-ratio",
            Rule::RandomTie => "random-tie",
            Rule::BlissBlacklist => "bliss-blacklist",
            Rule::TcmCluster => "tcm-cluster",
            Rule::WriteDrain => "write-drain",
            Rule::WriteFallback => "write-fallback",
            Rule::External => "external",
        }
    }

    fn index(self) -> usize {
        Rule::ALL.iter().position(|&r| r == self).expect("rule listed in ALL")
    }
}

/// The best candidate the winner beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerUp {
    /// Request id.
    pub id: u64,
    /// Originating core.
    pub core: u16,
    /// Write-back (true) or read (false).
    pub write: bool,
    /// Whether it would have hit an open row.
    pub row_hit: bool,
}

impl RunnerUp {
    fn of(c: &CandidateInfo) -> Self {
        RunnerUp { id: c.id, core: c.core, write: c.write, row_hit: c.row_hit }
    }
}

/// Per-rule grant counts for one policy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleTotals {
    counts: [u64; Rule::ALL.len()],
}

impl RuleTotals {
    /// Count one decision under `rule`.
    pub fn add(&mut self, rule: Rule) {
        self.counts[rule.index()] += 1;
    }

    /// Decisions attributed to `rule`.
    pub fn get(&self, rule: Rule) -> u64 {
        self.counts[rule.index()]
    }

    /// Total decisions counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(rule, count)` pairs with non-zero counts, in report order.
    pub fn nonzero(&self) -> impl Iterator<Item = (Rule, u64)> + '_ {
        Rule::ALL.iter().filter_map(|&r| {
            let n = self.get(r);
            (n > 0).then_some((r, n))
        })
    }
}

/// The collector's replica of the active policy's decision inputs.
#[derive(Debug)]
pub(crate) struct PolicyView<'a> {
    /// Active policy display name (from `CtrlConfig`).
    pub name: &'a str,
    /// Whether reads bypass writes.
    pub read_first: bool,
    /// ME-LREQ's priority table, rebuilt from the last `ProfileUpdate`.
    pub table: Option<&'a PriorityTable>,
    /// Per-core rank (0 = best) for ME / FIX-* policies.
    pub fixed_rank: Option<&'a [u32]>,
    /// Live ME vector (last `ProfileUpdate`).
    pub me: &'a [f64],
    /// Replica of Round-Robin's rotation pointer.
    pub rr_next: usize,
    /// Replica of BLISS's per-core blacklist bits (empty otherwise).
    pub blacklisted: &'a [bool],
    /// Replica of TCM's per-core cluster ranks (empty otherwise).
    pub tcm_rank: &'a [u32],
    /// Core count.
    pub cores: usize,
}

/// Hit-first-then-oldest sort key, mirroring the policies' in-core
/// tiebreak (smaller = preferred).
fn hf_key(c: &CandidateInfo) -> (bool, u64) {
    (!c.row_hit, c.id)
}

/// Same-core contest: the row buffer decided iff hit status differs.
fn same_core_rule(chosen: &CandidateInfo, beaten: &CandidateInfo) -> Rule {
    if chosen.row_hit != beaten.row_hit {
        Rule::RowHitFirst
    } else {
        Rule::FcfsTiebreak
    }
}

/// Attribute one scheduling decision. Returns the winning rule and the
/// beaten runner-up (`None` when nothing contested the choice).
pub(crate) fn classify(
    view: &PolicyView<'_>,
    draining: bool,
    chosen: u64,
    cands: &[CandidateInfo],
    pending: &[u32],
) -> (Rule, Option<RunnerUp>) {
    let Some(ci) = cands.iter().find(|c| c.id == chosen) else {
        return (Rule::External, None);
    };
    if cands.len() == 1 {
        return (Rule::OnlyCandidate, None);
    }

    if ci.write {
        // Writes only go out while draining or when no read is
        // schedulable; either way the in-class order is hit-first.
        let rule = if draining && view.read_first { Rule::WriteDrain } else { Rule::WriteFallback };
        let beaten = cands
            .iter()
            .filter(|c| c.write && c.id != chosen)
            .min_by_key(|c| hf_key(c))
            .or_else(|| cands.iter().filter(|c| !c.write).min_by_key(|c| hf_key(c)));
        return (rule, beaten.map(RunnerUp::of));
    }

    if !view.read_first {
        // Plain FCFS: one mixed class, strictly by arrival order.
        let beaten = cands.iter().filter(|c| c.id != chosen).min_by_key(|c| c.id);
        return (Rule::FcfsTiebreak, beaten.map(RunnerUp::of));
    }

    let other_reads: Vec<&CandidateInfo> =
        cands.iter().filter(|c| !c.write && c.id != chosen).collect();
    if other_reads.is_empty() {
        // The only schedulable read; it bypassed the pending writes.
        let beaten = cands.iter().filter(|c| c.write).min_by_key(|c| hf_key(c));
        return match beaten {
            Some(w) => (Rule::ReadFirst, Some(RunnerUp::of(w))),
            None => (Rule::OnlyCandidate, None),
        };
    }

    // Same-core reads exist → the core-selection layer was not decisive;
    // the in-core hit-first-then-oldest order was. This holds for every
    // core-aware policy (they all finish with `pick_hf_oldest`).
    let same_core =
        other_reads.iter().filter(|c| c.core == ci.core).min_by_key(|c| hf_key(c)).copied();
    let cross_core = |core: u16| {
        other_reads.iter().filter(move |c| c.core == core).min_by_key(|c| hf_key(c)).copied()
    };

    match view.name {
        "FCFS" | "FCFS-RF" => {
            let beaten = other_reads.iter().min_by_key(|c| c.id).copied();
            (Rule::FcfsTiebreak, beaten.map(RunnerUp::of))
        }
        "HF-RF" => {
            let beaten = other_reads.iter().min_by_key(|c| hf_key(c)).copied().expect("non-empty");
            (same_core_rule(ci, beaten), Some(RunnerUp::of(beaten)))
        }
        "RR" => {
            if let Some(b) = same_core {
                return (same_core_rule(ci, b), Some(RunnerUp::of(b)));
            }
            // The rotation beat the *next* core after the winner's slot
            // that also had a read schedulable.
            if view.cores > 0 {
                for off in 0..view.cores {
                    let core = ((view.rr_next + off) % view.cores) as u16;
                    if core == ci.core {
                        continue;
                    }
                    if let Some(b) = cross_core(core) {
                        return (Rule::RoundRobin, Some(RunnerUp::of(b)));
                    }
                }
            }
            (Rule::External, None)
        }
        "LREQ" => {
            if let Some(b) = same_core {
                return (same_core_rule(ci, b), Some(RunnerUp::of(b)));
            }
            // LeastRequest keys cores by (pending, core id), ascending.
            let beaten_core = other_reads
                .iter()
                .map(|c| c.core)
                .min_by_key(|&c| (pending.get(c as usize).copied().unwrap_or(0), c))
                .expect("non-empty");
            let b = cross_core(beaten_core).expect("core has a read");
            (Rule::LreqCount, Some(RunnerUp::of(b)))
        }
        name if view.fixed_rank.is_some() && (name == "ME" || name.starts_with("FIX-")) => {
            if let Some(b) = same_core {
                return (same_core_rule(ci, b), Some(RunnerUp::of(b)));
            }
            let rank = view.fixed_rank.expect("guarded");
            let beaten_core = other_reads
                .iter()
                .map(|c| c.core)
                .min_by_key(|&c| rank.get(c as usize).copied().unwrap_or(u32::MAX))
                .expect("non-empty");
            let b = cross_core(beaten_core).expect("core has a read");
            (Rule::MeRank, Some(RunnerUp::of(b)))
        }
        "ME-LREQ" => {
            if let Some(b) = same_core {
                return (same_core_rule(ci, b), Some(RunnerUp::of(b)));
            }
            let Some(table) = view.table else {
                return (Rule::External, None);
            };
            let prio = |core: u16| {
                let p = pending.get(core as usize).copied().unwrap_or(0).max(1);
                table.lookup(CoreId(core), p)
            };
            // Highest priority among the other cores, ties to the lower
            // core id (deterministic runner-up even when the real
            // policy's RNG would have picked among ties).
            let beaten_core = other_reads
                .iter()
                .map(|c| c.core)
                .min_by_key(|&c| (std::cmp::Reverse(prio(c)), c))
                .expect("non-empty");
            let b = cross_core(beaten_core).expect("core has a read");
            let (pc, po) = (prio(ci.core), prio(beaten_core));
            if pc == po {
                return (Rule::RandomTie, Some(RunnerUp::of(b)));
            }
            if pc < po {
                // The replica disagrees with the observed winner: the
                // controller must be running a table we cannot see
                // (e.g. the linear-quantization ablation). Attribute
                // conservatively instead of guessing.
                return (Rule::External, Some(RunnerUp::of(b)));
            }
            // pc > po — split the win between the ME and LREQ terms.
            let me_of = |core: u16| view.me.get(core as usize).copied().unwrap_or(1.0);
            let pend_of = |core: u16| pending.get(core as usize).copied().unwrap_or(0).max(1);
            let rule = if me_of(ci.core) == me_of(beaten_core) {
                Rule::LreqCount
            } else if pend_of(ci.core) == pend_of(beaten_core) {
                Rule::MeRank
            } else {
                Rule::MeLreqRatio
            };
            (rule, Some(RunnerUp::of(b)))
        }
        "BLISS" => {
            // Request-level rule: minimize (blacklisted, !row_hit, id).
            let bl = |c: &CandidateInfo| {
                view.blacklisted.get(usize::from(c.core)).copied().unwrap_or(false)
            };
            let beaten =
                other_reads.iter().min_by_key(|c| (bl(c), hf_key(c))).copied().expect("non-empty");
            let rule = if bl(ci) != bl(beaten) {
                Rule::BlissBlacklist
            } else {
                same_core_rule(ci, beaten)
            };
            (rule, Some(RunnerUp::of(beaten)))
        }
        "TCM" => {
            if let Some(b) = same_core {
                return (same_core_rule(ci, b), Some(RunnerUp::of(b)));
            }
            let rank_of =
                |core: u16| view.tcm_rank.get(usize::from(core)).copied().unwrap_or(u32::MAX);
            let beaten_core = other_reads
                .iter()
                .map(|c| c.core)
                .min_by_key(|&c| (rank_of(c), c))
                .expect("non-empty");
            let b = cross_core(beaten_core).expect("core has a read");
            (Rule::TcmCluster, Some(RunnerUp::of(b)))
        }
        _ => (Rule::External, None),
    }
}

/// Per-core rank (0 = best) of the ME scheme: descending profiled
/// memory efficiency, ties to the lower core id — mirrors
/// `FixedPriority::from_memory_efficiency`.
pub(crate) fn me_rank(me: &[f64]) -> Vec<u32> {
    let mut order: Vec<usize> = (0..me.len()).collect();
    order.sort_by(|&a, &b| {
        me[b].partial_cmp(&me[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let mut rank = vec![0u32; me.len()];
    for (pos, &core) in order.iter().enumerate() {
        rank[core] = pos as u32;
    }
    rank
}

/// Parse a FIX-* policy name ("FIX-3210") into its per-core rank
/// vector, if the digits cover `cores` cores exactly.
pub(crate) fn fix_rank(name: &str, cores: usize) -> Option<Vec<u32>> {
    let digits = name.strip_prefix("FIX-")?;
    let order: Option<Vec<usize>> =
        digits.chars().map(|c| c.to_digit(10).map(|d| d as usize)).collect();
    let order = order?;
    if order.len() != cores {
        return None;
    }
    let mut rank = vec![u32::MAX; cores];
    for (pos, &core) in order.iter().enumerate() {
        if core >= cores || rank[core] != u32::MAX {
            return None;
        }
        rank[core] = pos as u32;
    }
    Some(rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u64, core: u16, write: bool, hit: bool) -> CandidateInfo {
        CandidateInfo { id, core, bank: 0, row: id, write, row_hit: hit, arrival: id }
    }

    fn view<'a>(name: &'a str, me: &'a [f64], cores: usize) -> PolicyView<'a> {
        PolicyView {
            name,
            read_first: name != "FCFS",
            table: None,
            fixed_rank: None,
            me,
            rr_next: 0,
            blacklisted: &[],
            tcm_rank: &[],
            cores,
        }
    }

    #[test]
    fn single_candidate_is_uncontested() {
        let v = view("HF-RF", &[], 2);
        let cands = [cand(3, 0, false, true)];
        assert_eq!(classify(&v, false, 3, &cands, &[1, 0]), (Rule::OnlyCandidate, None));
    }

    #[test]
    fn hf_rf_attributes_hit_vs_age() {
        let v = view("HF-RF", &[], 2);
        // Hit id 5 beats miss id 2 → row-hit-first.
        let cands = [cand(5, 0, false, true), cand(2, 1, false, false)];
        let (rule, ru) = classify(&v, false, 5, &cands, &[1, 1]);
        assert_eq!(rule, Rule::RowHitFirst);
        assert_eq!(ru.map(|r| r.id), Some(2));
        // Both hits: age decided.
        let cands = [cand(1, 0, false, true), cand(4, 1, false, true)];
        let (rule, _) = classify(&v, false, 1, &cands, &[1, 1]);
        assert_eq!(rule, Rule::FcfsTiebreak);
    }

    #[test]
    fn lone_read_beats_writes_by_read_first() {
        let v = view("HF-RF", &[], 2);
        let cands = [cand(7, 0, false, false), cand(2, 1, true, true)];
        let (rule, ru) = classify(&v, false, 7, &cands, &[1, 0]);
        assert_eq!(rule, Rule::ReadFirst);
        assert_eq!(ru.map(|r| r.id), Some(2));
    }

    #[test]
    fn drain_mode_attributes_write_drain() {
        let v = view("HF-RF", &[], 2);
        let cands = [cand(2, 0, true, true), cand(1, 1, false, true)];
        let (rule, ru) = classify(&v, true, 2, &cands, &[0, 1]);
        assert_eq!(rule, Rule::WriteDrain);
        assert_eq!(ru.map(|r| r.id), Some(1));
    }

    #[test]
    fn lreq_attributes_pending_counts() {
        let v = view("LREQ", &[], 2);
        let cands = [cand(9, 0, false, false), cand(1, 1, false, true)];
        // Core 0 wins with fewer pending reads despite older hit on 1.
        let (rule, ru) = classify(&v, false, 9, &cands, &[1, 6]);
        assert_eq!(rule, Rule::LreqCount);
        assert_eq!(ru.map(|r| r.core), Some(1));
    }

    #[test]
    fn round_robin_attributes_rotation() {
        let mut v = view("RR", &[], 4);
        v.rr_next = 2;
        let cands = [cand(0, 2, false, false), cand(1, 0, false, false)];
        let (rule, ru) = classify(&v, false, 0, &cands, &[1, 0, 1, 0]);
        assert_eq!(rule, Rule::RoundRobin);
        assert_eq!(ru.map(|r| r.core), Some(0));
    }

    #[test]
    fn me_rank_mirrors_fixed_priority() {
        assert_eq!(me_rank(&[2.0, 40.0, 1.0, 15.0]), vec![2, 0, 3, 1]);
    }

    #[test]
    fn fix_rank_parses_paper_orders() {
        assert_eq!(fix_rank("FIX-3210", 4), Some(vec![3, 2, 1, 0]));
        assert_eq!(fix_rank("FIX-0123", 4), Some(vec![0, 1, 2, 3]));
        assert_eq!(fix_rank("FIX-33", 2), None);
        assert_eq!(fix_rank("ME", 2), None);
    }

    #[test]
    fn me_scheme_attributes_rank() {
        let me = [2.0, 40.0];
        let rank = me_rank(&me);
        let mut v = view("ME", &me, 2);
        v.fixed_rank = Some(&rank);
        let cands = [cand(8, 1, false, false), cand(1, 0, false, true)];
        let (rule, ru) = classify(&v, false, 8, &cands, &[1, 1]);
        assert_eq!(rule, Rule::MeRank);
        assert_eq!(ru.map(|r| r.core), Some(0));
    }

    #[test]
    fn me_lreq_splits_attribution_between_terms() {
        let me = [16.0, 4.0];
        let table = PriorityTable::new(&me);
        let mut v = view("ME-LREQ", &me, 2);
        v.table = Some(&table);
        let cands = [cand(0, 0, false, true), cand(1, 1, false, false)];
        // Equal pending → the ME term decided.
        let (rule, _) = classify(&v, false, 0, &cands, &[2, 2]);
        assert_eq!(rule, Rule::MeRank);
        // Core 0's ratio 16/8 loses to core 1's 4/1 → ratio attribution
        // for core 1's win (both terms differ).
        let (rule, ru) = classify(&v, false, 1, &cands, &[8, 1]);
        assert_eq!(rule, Rule::MeLreqRatio);
        assert_eq!(ru.map(|r| r.core), Some(0));
        // Equal ME collapses to least-request.
        let me_eq = [8.0, 8.0];
        let table_eq = PriorityTable::new(&me_eq);
        let mut v = view("ME-LREQ", &me_eq, 2);
        v.table = Some(&table_eq);
        let (rule, _) = classify(&v, false, 1, &cands, &[5, 1]);
        assert_eq!(rule, Rule::LreqCount);
        // Identical quantized priority → the RNG must have picked.
        let (rule, _) = classify(&v, false, 0, &cands, &[3, 3]);
        assert_eq!(rule, Rule::RandomTie);
    }

    #[test]
    fn same_core_contests_ignore_the_policy() {
        let v = view("LREQ", &[], 2);
        let cands = [cand(5, 0, false, true), cand(2, 0, false, false)];
        let (rule, ru) = classify(&v, false, 5, &cands, &[2, 0]);
        assert_eq!(rule, Rule::RowHitFirst);
        assert_eq!(ru.map(|r| r.id), Some(2));
    }

    #[test]
    fn bliss_attributes_blacklist_and_falls_back_to_hit_order() {
        let mut v = view("BLISS", &[], 2);
        let black = [true, false];
        v.blacklisted = &black;
        // Core 1's miss beats blacklisted core 0's older hit.
        let cands = [cand(0, 0, false, true), cand(1, 1, false, false)];
        let (rule, ru) = classify(&v, false, 1, &cands, &[1, 1]);
        assert_eq!(rule, Rule::BlissBlacklist);
        assert_eq!(ru.map(|r| r.core), Some(0));
        // Nobody blacklisted: the row buffer decided.
        v.blacklisted = &[];
        let (rule, _) = classify(&v, false, 0, &cands, &[1, 1]);
        assert_eq!(rule, Rule::RowHitFirst);
    }

    #[test]
    fn tcm_attributes_cluster_rank() {
        let mut v = view("TCM", &[], 2);
        let rank = [1, 0];
        v.tcm_rank = &rank;
        let cands = [cand(0, 0, false, true), cand(1, 1, false, false)];
        let (rule, ru) = classify(&v, false, 1, &cands, &[1, 1]);
        assert_eq!(rule, Rule::TcmCluster);
        assert_eq!(ru.map(|r| r.core), Some(0));
    }

    #[test]
    fn unknown_policy_is_external() {
        let v = view("FQ", &[], 2);
        let cands = [cand(0, 0, false, false), cand(1, 1, false, false)];
        assert_eq!(classify(&v, false, 0, &cands, &[1, 1]).0, Rule::External);
    }

    #[test]
    fn totals_accumulate_and_enumerate() {
        let mut t = RuleTotals::default();
        t.add(Rule::RowHitFirst);
        t.add(Rule::RowHitFirst);
        t.add(Rule::RandomTie);
        assert_eq!(t.total(), 3);
        assert_eq!(t.get(Rule::RowHitFirst), 2);
        let nz: Vec<_> = t.nonzero().collect();
        assert_eq!(nz, vec![(Rule::RowHitFirst, 2), (Rule::RandomTie, 1)]);
    }
}
