//! Chrome/Perfetto `trace_event` export of a host-side span profile
//! (`melreq-prof`).
//!
//! This is the *wall-clock* clock domain: timestamps are microseconds
//! since the profiler epoch — a deliberately separate domain from the
//! sim-time traces [`crate::perfetto::export_chrome_json`] emits, where
//! 1 "µs" is one simulated DRAM cycle. The two exports share the
//! writer protocol (metadata records first, `X` slices sorted by start
//! so `ts` is monotonically non-decreasing) but never share a file.
//!
//! Layout: one synthetic process (`pid` 1, named after the profiled
//! command) with one thread track per [`melreq_prof::TrackData`] —
//! `"worker 0"`..`"worker N"` for the sweep executor, `"main"` for the
//! driving thread. The aggregated summary and the buildinfo block are
//! embedded as extra top-level keys (Perfetto ignores unknown keys).

use crate::perfetto::push_event;
use melreq_prof::{Profile, Span};

/// The synthetic host process id.
const HOST_PID: usize = 1;

/// Render a drained host profile as Chrome `trace_event` JSON.
///
/// `process_name` labels the synthetic process (e.g. `"melreq
/// reproduce"`). `extra_blocks` are `(key, json_value)` pairs appended
/// as additional top-level keys — the aggregated summary
/// (`melreq_prof::Summary::render_json`) and the buildinfo block.
pub fn export_host_profile(
    profile: &Profile,
    process_name: &str,
    extra_blocks: &[(&str, String)],
) -> String {
    let mut out = format!(
        "{{\n  \"schema_version\": {},\n  \"displayTimeUnit\": \"ms\",\n",
        melreq_snap::SCHEMA_VERSION
    );
    for (key, value) in extra_blocks {
        out.push_str(&format!("  \"{key}\": {value},\n"));
    }
    out.push_str("  \"traceEvents\": [\n");
    let mut first = true;

    push_event(
        &mut out,
        &mut first,
        format_args!(
            "{{\"ph\": \"M\", \"pid\": {HOST_PID}, \"name\": \"process_name\", \
             \"args\": {{\"name\": \"{}\"}}}}",
            esc(process_name)
        ),
    );
    for (tid0, track) in profile.tracks.iter().enumerate() {
        push_event(
            &mut out,
            &mut first,
            format_args!(
                "{{\"ph\": \"M\", \"pid\": {HOST_PID}, \"tid\": {tid}, \
                 \"name\": \"thread_name\", \"args\": {{\"name\": \"{}\"}}}}",
                esc(&track.label),
                tid = tid0 + 1
            ),
        );
    }

    // One global start-sorted stream across tracks: the monotonic-ts
    // contract CI checks for sim traces holds here too.
    let mut events: Vec<(usize, &Span)> = Vec::with_capacity(profile.total_spans());
    for (tid0, track) in profile.tracks.iter().enumerate() {
        for span in &track.spans {
            events.push((tid0 + 1, span));
        }
    }
    events.sort_by_key(|(_, s)| s.start_ns);

    for (tid, span) in events {
        let mut args = String::new();
        for (k, v) in span.args() {
            if !args.is_empty() {
                args.push_str(", ");
            }
            args.push_str(&format!("\"{}\": {v}", esc(k)));
        }
        push_event(
            &mut out,
            &mut first,
            format_args!(
                "{{\"ph\": \"X\", \"pid\": {HOST_PID}, \"tid\": {tid}, \"ts\": {ts}, \
                 \"dur\": {dur}, \"name\": \"{name}\", \"cat\": \"{cat}\", \
                 \"args\": {{{args}}}}}",
                ts = span.start_ns / 1_000,
                dur = (span.dur_ns / 1_000).max(1),
                name = esc(&span.name),
                cat = esc(span.cat)
            ),
        );
    }

    out.push_str("\n  ]\n}\n");
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a profile without going through the global recorder (unit
    /// tests must not race other tests over the process-wide state).
    fn sample_profile() -> Profile {
        melreq_prof::disable();
        let _ = melreq_prof::drain();
        melreq_prof::enable();
        melreq_prof::set_thread_track(|| "worker 0".to_string());
        melreq_prof::record("exec.job", || "job 0".to_string(), 2_000, 9_000, &[("steal", 1)]);
        melreq_prof::record("warmup", || "4MEM-1".to_string(), 1_000, 5_000, &[]);
        melreq_prof::disable();
        melreq_prof::drain()
    }

    #[test]
    fn host_export_is_sorted_and_carries_tracks_and_blocks() {
        let profile = sample_profile();
        let json = export_host_profile(
            &profile,
            "melreq test",
            &[("summary", melreq_prof::summarize(&profile, 3).render_json())],
        );
        assert!(json.contains("\"summary\": {"));
        assert!(json.contains("\"name\": \"melreq test\""));
        assert!(json.contains("\"name\": \"worker 0\""));
        assert!(json.contains("\"cat\": \"exec.job\""));
        assert!(json.contains("\"steal\": 1"));
        // The warmup span starts earlier and must be emitted first.
        let warm = json.find("\"name\": \"4MEM-1\"").expect("warmup span present");
        let job = json.find("\"name\": \"job 0\"").expect("job span present");
        assert!(warm < job, "events sorted by start time");
        // Balanced structure, no trailing comma.
        assert!(!json.contains(",\n  ]"));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
