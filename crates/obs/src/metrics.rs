//! Prometheus text-format metrics (`text/plain; version=0.0.4`),
//! dependency-free.
//!
//! A [`Registry`] holds named metric families; each family owns one or
//! more samples (name plus optional `{label="value"}` suffix) backed by
//! an atomic [`Counter`], a [`Gauge`], or a closure evaluated at scrape
//! time (for sources that already keep their own counters, e.g. the
//! checkpoint store's hit/miss statistics). [`Registry::render`] emits
//! the families in registration order with `# HELP`/`# TYPE` headers
//! once per family — the exact shape `promtool check metrics` accepts.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed upper bounds, rendered Prometheus-style as
/// cumulative `_bucket{le=...}` samples plus `_sum` and `_count`.
#[derive(Debug)]
pub struct Histogram {
    /// Bucket upper bounds, strictly increasing; the `+Inf` bucket is
    /// implicit (it always equals `_count`).
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, stored as `f64` bits (CAS-updated).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        if let Some(i) = self.bounds.iter().position(|b| v <= *b) {
            self.counts[i].fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// `(upper bound, cumulative count)` per declared bucket.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        self.bounds
            .iter()
            .zip(&self.counts)
            .map(|(b, c)| {
                acc += c.load(Ordering::Relaxed);
                (*b, acc)
            })
            .collect()
    }
}

/// What a metric family is, for the `# TYPE` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Source {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Func(Box<dyn Fn() -> f64 + Send>),
    Histogram(Arc<Histogram>),
}

struct Sample {
    /// Full sample name including any `{label="value"}` suffix.
    name: String,
    source: Source,
}

struct Family {
    /// Family name (sample name minus labels).
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<Sample>,
}

/// A set of metric families rendered to Prometheus text format.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().expect("metrics registry poisoned");
        let names: Vec<&str> = families.iter().map(|fam| fam.name.as_str()).collect();
        f.debug_struct("Registry").field("families", &names).finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register and return a counter. `sample` is the full sample name
    /// (labels included); the family is everything before the first
    /// `{`. Repeat registrations under one family must agree on kind
    /// (checked) and reuse the first `help`.
    pub fn counter(&self, sample: &str, help: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.attach(sample, help, MetricKind::Counter, Source::Counter(c.clone()));
        c
    }

    /// Register and return a gauge.
    pub fn gauge(&self, sample: &str, help: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.attach(sample, help, MetricKind::Gauge, Source::Gauge(g.clone()));
        g
    }

    /// Register and return a histogram with the given bucket upper
    /// bounds (the `+Inf` bucket is implicit).
    pub fn histogram(&self, sample: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new(bounds));
        self.attach(sample, help, MetricKind::Histogram, Source::Histogram(h.clone()));
        h
    }

    /// Register a scrape-time closure (for externally owned counters).
    pub fn func(
        &self,
        sample: &str,
        help: &str,
        kind: MetricKind,
        f: impl Fn() -> f64 + Send + 'static,
    ) {
        self.attach(sample, help, kind, Source::Func(Box::new(f)));
    }

    fn attach(&self, sample: &str, help: &str, kind: MetricKind, source: Source) {
        let family_name = sample.split('{').next().unwrap_or(sample).to_string();
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.iter_mut().find(|f| f.name == family_name);
        let sample = Sample { name: sample.to_string(), source };
        match family {
            Some(f) => {
                assert_eq!(f.kind, kind, "metric family '{family_name}' kind mismatch");
                f.samples.push(sample);
            }
            None => families.push(Family {
                name: family_name,
                help: help.to_string(),
                kind,
                samples: vec![sample],
            }),
        }
    }

    /// Render every family in registration order as Prometheus text.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for f in families.iter() {
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.as_str()));
            for s in &f.samples {
                match &s.source {
                    Source::Counter(c) => {
                        out.push_str(&format!("{} {}\n", s.name, format_value(c.get() as f64)));
                    }
                    Source::Gauge(g) => {
                        out.push_str(&format!("{} {}\n", s.name, format_value(g.get() as f64)));
                    }
                    Source::Func(func) => {
                        out.push_str(&format!("{} {}\n", s.name, format_value(func())));
                    }
                    Source::Histogram(h) => render_histogram(&mut out, &s.name, h),
                }
            }
        }
        out
    }
}

/// Expand one histogram sample into its cumulative `_bucket` series
/// (ending with `le="+Inf"`, which by construction equals `_count`)
/// plus `_sum` and `_count`, threading any existing labels through.
fn render_histogram(out: &mut String, sample: &str, h: &Histogram) {
    let (base, labels) = match sample.split_once('{') {
        Some((base, rest)) => (base, rest.trim_end_matches('}')),
        None => (sample, ""),
    };
    let with = |extra: &str| -> String {
        if labels.is_empty() {
            format!("{{{extra}}}")
        } else {
            format!("{{{labels},{extra}}}")
        }
    };
    for (bound, cum) in h.cumulative() {
        out.push_str(&format!(
            "{base}_bucket{} {cum}\n",
            with(&format!("le=\"{}\"", format_value(bound)))
        ));
    }
    let count = h.count();
    out.push_str(&format!("{base}_bucket{} {count}\n", with("le=\"+Inf\"")));
    let suffix = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
    out.push_str(&format!("{base}_sum{suffix} {}\n", format_value(h.sum())));
    out.push_str(&format!("{base}_count{suffix} {count}\n"));
}

/// Integral values print without a fractional part (Prometheus accepts
/// both; the integral form keeps scrapes byte-stable for tests).
#[allow(clippy::cast_possible_truncation)]
fn format_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_families_with_headers_once() {
        let reg = Registry::new();
        let a = reg.counter("melreq_requests_total{endpoint=\"run\"}", "Requests accepted.");
        let b = reg.counter("melreq_requests_total{endpoint=\"compare\"}", "Requests accepted.");
        let depth = reg.gauge("melreq_queue_depth", "Jobs queued.");
        a.add(3);
        b.inc();
        depth.set(2);
        let text = reg.render();
        assert_eq!(text.matches("# HELP melreq_requests_total").count(), 1);
        assert_eq!(text.matches("# TYPE melreq_requests_total counter").count(), 1);
        assert!(text.contains("melreq_requests_total{endpoint=\"run\"} 3\n"));
        assert!(text.contains("melreq_requests_total{endpoint=\"compare\"} 1\n"));
        assert!(text.contains("# TYPE melreq_queue_depth gauge\n"));
        assert!(text.contains("melreq_queue_depth 2\n"));
    }

    #[test]
    fn func_sources_evaluate_at_scrape_time() {
        let reg = Registry::new();
        let shared = Arc::new(Counter::new());
        let probe = shared.clone();
        reg.func("melreq_store_hits_total", "Store hits.", MetricKind::Counter, move || {
            probe.get() as f64
        });
        assert!(reg.render().contains("melreq_store_hits_total 0\n"));
        shared.add(7);
        assert!(reg.render().contains("melreq_store_hits_total 7\n"));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-4);
        assert_eq!(g.get(), -4);
    }

    #[test]
    fn values_render_integral_or_float() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(0.5), "0.5");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_matches_count() {
        let reg = Registry::new();
        let h = reg.histogram("req_seconds", "Latency.", &[0.1, 0.5, 1.0]);
        for v in [0.05, 0.05, 0.3, 0.7, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 6.1).abs() < 1e-9);
        assert_eq!(h.cumulative(), vec![(0.1, 2), (0.5, 3), (1.0, 4)]);
        let text = reg.render();
        assert!(text.contains("# TYPE req_seconds histogram\n"));
        assert!(text.contains("req_seconds_bucket{le=\"0.1\"} 2\n"));
        assert!(text.contains("req_seconds_bucket{le=\"0.5\"} 3\n"));
        assert!(text.contains("req_seconds_bucket{le=\"1\"} 4\n"));
        assert!(text.contains("req_seconds_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("req_seconds_sum 6.1"));
        assert!(text.contains("req_seconds_count 5\n"));
    }

    #[test]
    fn labeled_histogram_threads_labels_through_bucket_lines() {
        let reg = Registry::new();
        let parse =
            reg.histogram("stage_seconds{stage=\"parse\"}", "Per-stage latency.", &[0.01, 0.1]);
        let queue =
            reg.histogram("stage_seconds{stage=\"queue\"}", "Per-stage latency.", &[0.01, 0.1]);
        parse.observe(0.005);
        queue.observe(0.05);
        let text = reg.render();
        assert_eq!(text.matches("# TYPE stage_seconds histogram").count(), 1);
        assert!(text.contains("stage_seconds_bucket{stage=\"parse\",le=\"0.01\"} 1\n"));
        assert!(text.contains("stage_seconds_bucket{stage=\"parse\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("stage_seconds_bucket{stage=\"queue\",le=\"0.01\"} 0\n"));
        assert!(text.contains("stage_seconds_bucket{stage=\"queue\",le=\"0.1\"} 1\n"));
        assert!(text.contains("stage_seconds_sum{stage=\"parse\"} 0.005\n"));
        assert!(text.contains("stage_seconds_count{stage=\"queue\"} 1\n"));
    }
}
