//! Property-based tests of the controller, queue, priority table and
//! scheduling policies.

use melreq_dram::{DramGeometry, DramSystem};
use melreq_memctrl::controller::ControllerConfig;
use melreq_memctrl::policy::{Candidate, PolicyKind};
use melreq_memctrl::request::{MemRequest, ReqId};
use melreq_memctrl::table::PriorityTable;
use melreq_memctrl::{MemoryController, RequestQueue};
use melreq_stats::types::{AccessKind, CoreId};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Queue counters always equal a recount of the queue contents.
    #[test]
    fn queue_counters_consistent(
        ops in proptest::collection::vec((0u16..4, any::<bool>(), any::<bool>()), 1..100)
    ) {
        let g = DramGeometry::paper();
        let mut q = RequestQueue::new(64, 4, g.channels);
        let mut next_id = 0u64;
        let mut live: Vec<ReqId> = Vec::new();
        for (core, is_read, remove) in ops {
            if remove && !live.is_empty() {
                let id = live.remove(live.len() / 2);
                q.remove(id);
            } else if q.has_space() {
                let id = ReqId(next_id);
                next_id += 1;
                let addr = next_id * 64;
                q.push(MemRequest {
                    id,
                    core: CoreId(core),
                    addr,
                    loc: g.decode(addr),
                    kind: if is_read { AccessKind::Read } else { AccessKind::Write },
                    arrival: next_id,
                });
                live.push(id);
            }
            let mut reads = [0u32; 4];
            let mut writes = [0u32; 4];
            for r in q.iter() {
                if r.is_read() {
                    reads[r.core.index()] += 1;
                } else {
                    writes[r.core.index()] += 1;
                }
            }
            for c in 0..4u16 {
                prop_assert_eq!(q.pending_reads(CoreId(c)), reads[c as usize]);
                prop_assert_eq!(q.pending_writes(CoreId(c)), writes[c as usize]);
            }
            prop_assert_eq!(q.len(), live.len());
        }
    }

    /// Table entries are non-increasing in the pending-read count and,
    /// at fixed pending count, ordered like the ME values.
    #[test]
    fn priority_table_monotone(
        me in proptest::collection::vec(0.01f64..10000.0, 2..8),
        p in 1u32..=63
    ) {
        let t = PriorityTable::new(&me);
        for c in 0..me.len() {
            let hi = t.lookup(CoreId(c as u16), p);
            let lo = t.lookup(CoreId(c as u16), p + 1);
            prop_assert!(hi >= lo, "priority must not rise with pending reads");
        }
        for a in 0..me.len() {
            for b in 0..me.len() {
                if me[a] > me[b] {
                    prop_assert!(
                        t.lookup(CoreId(a as u16), p) >= t.lookup(CoreId(b as u16), p),
                        "higher ME must not map to lower priority"
                    );
                }
            }
        }
    }

    /// Every policy returns a valid candidate index for arbitrary
    /// non-empty candidate sets.
    #[test]
    fn policies_select_valid_indices(
        seed in any::<u64>(),
        raw in proptest::collection::vec((any::<u8>(), 0u16..8, any::<bool>()), 1..64)
    ) {
        let cands: Vec<Candidate> = raw
            .iter()
            .enumerate()
            .map(|(i, (id, core, hit))| Candidate {
                id: ReqId((*id as u64) << 8 | i as u64),
                core: CoreId(*core),
                row_hit: *hit,
            })
            .collect();
        let mut pending = [0u32; 8];
        for c in &cands {
            pending[c.core.index()] += 1;
        }
        let me: Vec<f64> = (0..8).map(|i| 1.0 + i as f64 * 3.0).collect();
        let mut policies = PolicyKind::figure2_set();
        policies.push(PolicyKind::Fcfs);
        policies.push(PolicyKind::Fixed { name: "FIX", order: (0..8).rev().collect() });
        for kind in policies {
            let mut p = kind.build(&me, 8, seed);
            let idx = p.select(&cands, &pending);
            prop_assert!(idx < cands.len(), "{} returned out-of-range index", kind.name());
        }
    }

    /// ME-LREQ with identical ME values picks a core with the minimum
    /// pending-read count (it degenerates to least-request, up to the
    /// random tie-break among equals).
    #[test]
    fn me_lreq_degenerates_to_lreq(
        seed in any::<u64>(),
        pendings in proptest::collection::vec(1u32..20, 2..6)
    ) {
        let n = pendings.len();
        let me = vec![5.0; n];
        let cands: Vec<Candidate> = (0..n)
            .map(|i| Candidate { id: ReqId(i as u64), core: CoreId(i as u16), row_hit: false })
            .collect();
        let mut pend = vec![0u32; n];
        pend.copy_from_slice(&pendings);
        let mut p = PolicyKind::MeLreq.build(&me, n, seed);
        let idx = p.select(&cands, &pend);
        let min = *pendings.iter().min().expect("non-empty");
        prop_assert_eq!(
            pendings[cands[idx].core.index()], min,
            "ME-LREQ with flat ME must pick a least-request core"
        );
    }

    /// Controller conservation: every submitted read completes exactly
    /// once, and writes never produce completions.
    #[test]
    fn controller_conserves_requests(
        reqs in proptest::collection::vec((0u16..4, 0u64..1024, any::<bool>()), 1..48),
        policy_pick in 0usize..5
    ) {
        let kind = PolicyKind::figure2_set()[policy_pick].clone();
        let me = vec![1.0, 2.0, 4.0, 8.0];
        let mut ctrl = MemoryController::new(
            ControllerConfig::paper(),
            DramSystem::paper(),
            kind.build(&me, 4, 7),
            kind.read_first(),
            4,
        );
        let mut expected_reads = HashSet::new();
        let mut now = 0u64;
        for (core, line, is_read) in reqs {
            while !ctrl.can_accept() {
                ctrl.tick(now);
                while ctrl.pop_completed(now).is_some() {}
                now += 1;
            }
            let kind = if is_read { AccessKind::Read } else { AccessKind::Write };
            let id = ctrl.submit(CoreId(core), line * 64, kind, now);
            if is_read {
                expected_reads.insert(id);
            }
        }
        let mut seen = HashSet::new();
        for _ in 0..500_000u64 {
            ctrl.tick(now);
            while let Some((id, _, _)) = ctrl.pop_completed(now) {
                prop_assert!(seen.insert(id), "duplicate completion {id:?}");
                prop_assert!(expected_reads.contains(&id), "completion for a write or unknown id");
            }
            now += 1;
            if seen.len() == expected_reads.len() && ctrl.is_idle() {
                break;
            }
        }
        prop_assert_eq!(seen.len(), expected_reads.len(), "lost read completions");
        prop_assert!(ctrl.is_idle(), "controller left non-idle");
    }
}
