//! Memory controller and scheduling policies from the ICPP'08 ME-LREQ paper.
//!
//! This crate implements the paper's primary contribution. It provides:
//!
//! * [`request::MemRequest`] — a memory transaction tagged with its
//!   originating core (the unit the policies differentiate on);
//! * [`queue::RequestQueue`] — the controller's shared 64-entry request
//!   buffer with per-core pending read/write counters (the two counters
//!   per core described in Section 3.2);
//! * [`table::PriorityTable`] — the hardware workload-priority table of
//!   Figure 1: per core, one pre-computed, 10-bit quantized
//!   `ME[i]/PendingRead[i]` value for every possible pending-read count,
//!   initialized "by OS at the time of program loading";
//! * [`policy`] — every scheduling scheme the paper evaluates: FCFS,
//!   FCFS+Read-First, Hit-First+Read-First (the baseline), Round-Robin,
//!   Least-Request, Memory-Efficiency (fixed priority), arbitrary fixed
//!   priorities (FIX-0123 / FIX-3210 of Figure 3), and **ME-LREQ**;
//! * [`controller::MemoryController`] — the transaction engine binding a
//!   policy to the DRAM device: read-first with write-drain hysteresis
//!   (drain starts at ½ buffer, stops at ¼ — Section 4.1), close-page row
//!   management, one grant per channel per cycle, per-core latency and
//!   bandwidth accounting.

pub mod controller;
pub mod ext;
pub mod policy;
pub mod queue;
pub mod registry;
pub mod request;
pub mod table;
pub mod zoo;

pub use controller::{ChannelTraffic, ControllerConfig, ControllerStats, MemoryController};
pub use ext::{FairQueueing, StallTimeFair};
pub use policy::{PolicyKind, SchedulerPolicy};
pub use queue::RequestQueue;
pub use registry::{canonical_name, registry, suggest, ParamSpec, PolicyDescriptor};
pub use request::{MemRequest, ReqId};
pub use table::PriorityTable;
pub use zoo::{Bliss, TcmCluster};
