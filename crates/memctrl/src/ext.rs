//! Extension policies beyond the paper's evaluated set.
//!
//! The paper's related-work section points at two contemporaneous fair
//! memory schedulers — Nesbit et al.'s *Fair Queuing CMP Memory Systems*
//! (MICRO'06) and Mutlu & Moscibroda's *Stall-Time Fair Memory Access
//! Scheduling* (MICRO'07) — and distinguishes ME-LREQ as performance-
//! oriented rather than fairness-oriented. This module implements
//! simplified versions of both so the comparison can actually be run
//! (`examples/` and the bench binaries accept any
//! [`SchedulerPolicy`]):
//!
//! * [`FairQueueing`] — start-time fair queueing over memory service: each
//!   core owns a virtual clock that advances by `chunk / share` per
//!   granted request; the candidate core with the smallest virtual start
//!   time wins. Long-term, every core receives its share of memory
//!   service regardless of demand.
//! * [`StallTimeFair`] — a slowdown-balancing heuristic: the controller
//!   tracks per-core accumulated queueing delay (a proxy for the extra
//!   stall a core suffers from sharing) and serves the core with the
//!   largest backlog-weighted delay.
//!
//! Both are deliberately reduced to the controller-visible signals this
//! simulator models; they are faithful to the *objective* of the
//! original proposals, not to their full mechanisms.

use crate::policy::{Candidate, SchedulerPolicy};
use melreq_stats::types::{CoreId, Cycle};

/// Start-time fair queueing over memory service (FQ-style).
///
/// Classic SFQ bookkeeping: each core has a per-flow virtual finish time
/// `vt[i]`; a request's *start tag* is `max(vt[i], V)` where `V` is the
/// global virtual clock (the start tag of the last grant). The candidate
/// with the smallest start tag wins, and the winner's flow clock
/// advances by `QUANTUM / share`. The `max(·, V)` is what prevents a
/// long-idle core from monopolizing the bus with its stale clock when it
/// returns.
#[derive(Debug, Clone)]
pub struct FairQueueing {
    /// Per-core virtual finish times (in service quanta).
    virtual_time: Vec<u64>,
    /// Global virtual clock: start tag of the most recent grant.
    global_vt: u64,
    /// Per-core service shares (relative weights; equal by default).
    share: Vec<u32>, // melreq-allow(S01): construction weights, identical across snapshot peers
}

impl FairQueueing {
    /// Equal-share fair queueing over `cores` cores.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        FairQueueing { virtual_time: vec![0; cores], global_vt: 0, share: vec![1; cores] }
    }

    /// Weighted shares (e.g. QoS classes). `share[i] = 2` gives core `i`
    /// twice the memory service of a `share = 1` core under contention.
    pub fn with_shares(shares: Vec<u32>) -> Self {
        assert!(!shares.is_empty(), "need at least one core");
        assert!(shares.iter().all(|&s| s > 0), "shares must be positive");
        FairQueueing { virtual_time: vec![0; shares.len()], global_vt: 0, share: shares }
    }

    /// A core's virtual clock (test/diagnostic access).
    pub fn virtual_time(&self, core: CoreId) -> u64 {
        self.virtual_time[core.index()]
    }

    #[inline]
    fn start_tag(&self, core: CoreId) -> u64 {
        self.virtual_time[core.index()].max(self.global_vt)
    }
}

/// Service quantum charged per granted request, scaled by 1/share.
const QUANTUM: u64 = 64;

impl SchedulerPolicy for FairQueueing {
    fn name(&self) -> &'static str {
        "FQ"
    }

    fn select(&mut self, cands: &[Candidate], _pending: &[u32]) -> usize {
        let best_core = cands
            .iter()
            .map(|c| c.core)
            .min_by_key(|c| (self.start_tag(*c), c.index()))
            .expect("non-empty");
        cands
            .iter()
            .enumerate()
            .filter(|(_, c)| c.core == best_core)
            .min_by_key(|(_, c)| (!c.row_hit, c.id))
            .map(|(i, _)| i)
            .expect("selected core has a candidate")
    }

    fn note_grant(&mut self, granted: &Candidate) {
        let i = granted.core.index();
        let start = self.start_tag(granted.core);
        self.global_vt = start;
        self.virtual_time[i] = start + QUANTUM / self.share[i] as u64;
    }

    fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.u64s(&self.virtual_time);
        enc.u64(self.global_vt);
    }

    fn load_state(&mut self, dec: &mut melreq_snap::Dec<'_>) -> Result<(), melreq_snap::SnapError> {
        let vt = dec.u64s()?;
        if vt.len() != self.virtual_time.len() {
            return Err(melreq_snap::SnapError::Invalid("fair-queueing core count mismatch"));
        }
        self.virtual_time = vt;
        self.global_vt = dec.u64()?;
        Ok(())
    }
}

/// Stall-time-fairness heuristic (STFM-style).
///
/// The controller cannot see core stall cycles directly, but a request's
/// queueing delay is the memory-side component of the extra stall its
/// core suffers from sharing. This policy serves the core whose
/// *accumulated queueing-delay debt* is largest, decaying the debt on
/// service so the measure tracks the recent past.
#[derive(Debug, Clone)]
pub struct StallTimeFair {
    debt: Vec<f64>,
    last_now: Cycle,
}

impl StallTimeFair {
    /// A balancer over `cores` cores.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        StallTimeFair { debt: vec![0.0; cores], last_now: 0 }
    }

    /// A core's current delay debt (test/diagnostic access).
    pub fn debt(&self, core: CoreId) -> f64 {
        self.debt[core.index()]
    }

    /// Accrue queueing delay: each core's debt grows with its pending
    /// read count per cycle (total waiting ≈ Σ queue residence).
    pub fn accrue(&mut self, pending: &[u32], now: Cycle) {
        let dt = now.saturating_sub(self.last_now) as f64;
        self.last_now = now;
        for (d, &p) in self.debt.iter_mut().zip(pending) {
            *d += dt * p as f64;
        }
    }
}

impl SchedulerPolicy for StallTimeFair {
    fn name(&self) -> &'static str {
        "STF"
    }

    fn select(&mut self, cands: &[Candidate], pending: &[u32]) -> usize {
        // `select` is invoked once per grant opportunity; use it as the
        // accrual tick too (dt = 1 grant epoch).
        self.accrue(pending, self.last_now + 1);
        let best_core = cands
            .iter()
            .map(|c| c.core)
            .max_by(|a, b| {
                self.debt[a.index()]
                    .partial_cmp(&self.debt[b.index()])
                    .expect("debts are finite")
                    .then(b.index().cmp(&a.index()))
            })
            .expect("non-empty");
        cands
            .iter()
            .enumerate()
            .filter(|(_, c)| c.core == best_core)
            .min_by_key(|(_, c)| (!c.row_hit, c.id))
            .map(|(i, _)| i)
            .expect("selected core has a candidate")
    }

    fn note_grant(&mut self, granted: &Candidate) {
        // Serving a request repays part of the core's debt.
        let i = granted.core.index();
        self.debt[i] = (self.debt[i] - QUANTUM as f64).max(0.0);
    }

    fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.f64s(&self.debt);
        enc.u64(self.last_now);
    }

    fn load_state(&mut self, dec: &mut melreq_snap::Dec<'_>) -> Result<(), melreq_snap::SnapError> {
        let debt = dec.f64s()?;
        if debt.len() != self.debt.len() {
            return Err(melreq_snap::SnapError::Invalid("stall-time-fair core count mismatch"));
        }
        self.debt = debt;
        self.last_now = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReqId;

    fn cand(id: u64, core: u16, hit: bool) -> Candidate {
        Candidate { id: ReqId(id), core: CoreId(core), row_hit: hit }
    }

    #[test]
    fn fq_alternates_between_equal_cores() {
        let mut p = FairQueueing::new(2);
        let cands = [cand(0, 0, false), cand(1, 1, false)];
        let mut grants = [0u32; 2];
        for _ in 0..10 {
            let i = p.select(&cands, &[1, 1]);
            grants[cands[i].core.index()] += 1;
            p.note_grant(&cands[i]);
        }
        assert_eq!(grants, [5, 5], "equal shares must split service evenly");
    }

    #[test]
    fn fq_respects_weighted_shares() {
        let mut p = FairQueueing::with_shares(vec![2, 1]);
        let cands = [cand(0, 0, false), cand(1, 1, false)];
        let mut grants = [0u32; 2];
        for _ in 0..12 {
            let i = p.select(&cands, &[1, 1]);
            grants[cands[i].core.index()] += 1;
            p.note_grant(&cands[i]);
        }
        assert_eq!(grants, [8, 4], "2:1 shares must yield 2:1 service");
    }

    #[test]
    fn fq_idle_core_cannot_monopolize_on_return() {
        let mut p = FairQueueing::new(2);
        // Core 0 runs alone for a while.
        let solo = [cand(0, 0, false)];
        for _ in 0..100 {
            let i = p.select(&solo, &[1, 0]);
            p.note_grant(&solo[i]);
        }
        // Core 1 returns: it must not win 100 grants in a row; the
        // fast-forward clamps its deficit.
        let both = [cand(0, 0, false), cand(1, 1, false)];
        let mut core1_streak = 0;
        loop {
            let i = p.select(&both, &[1, 1]);
            if both[i].core == CoreId(1) {
                core1_streak += 1;
                p.note_grant(&both[i]);
            } else {
                break;
            }
            assert!(core1_streak < 5, "returning core monopolized the bus");
        }
    }

    #[test]
    fn fq_uses_hit_first_within_core() {
        let mut p = FairQueueing::new(1);
        let cands = [cand(0, 0, false), cand(3, 0, true)];
        assert_eq!(p.select(&cands, &[2]), 1);
    }

    #[test]
    fn stf_prefers_the_most_delayed_core() {
        let mut p = StallTimeFair::new(2);
        // Core 1 has had 10 pending reads queued for 100 cycles.
        p.accrue(&[1, 10], 100);
        let cands = [cand(0, 0, false), cand(1, 1, false)];
        assert_eq!(cands[p.select(&cands, &[1, 10])].core, CoreId(1));
        assert!(p.debt(CoreId(1)) > p.debt(CoreId(0)));
    }

    #[test]
    fn stf_debt_decays_with_service() {
        let mut p = StallTimeFair::new(2);
        p.accrue(&[0, 2], 100);
        let before = p.debt(CoreId(1));
        p.note_grant(&cand(0, 1, false));
        assert!(p.debt(CoreId(1)) < before);
        assert!(p.debt(CoreId(1)) >= 0.0);
    }

    #[test]
    fn policies_report_names() {
        assert_eq!(FairQueueing::new(1).name(), "FQ");
        assert_eq!(StallTimeFair::new(1).name(), "STF");
    }

    #[test]
    fn fq_snapshot_round_trips() {
        let mut p = FairQueueing::with_shares(vec![2, 1]);
        let cands = [cand(0, 0, false), cand(1, 1, false)];
        for _ in 0..7 {
            let i = p.select(&cands, &[1, 1]);
            p.note_grant(&cands[i]);
        }
        let mut enc = melreq_snap::Enc::new();
        p.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut q = FairQueueing::with_shares(vec![2, 1]);
        let mut dec = melreq_snap::Dec::new(&bytes);
        q.load_state(&mut dec).expect("load");
        assert!(dec.is_exhausted(), "trailing bytes after fq state");
        assert_eq!(p.virtual_time(CoreId(0)), q.virtual_time(CoreId(0)));
        assert_eq!(p.select(&cands, &[1, 1]), q.select(&cands, &[1, 1]));
    }

    #[test]
    fn stf_snapshot_round_trips() {
        let mut p = StallTimeFair::new(2);
        p.accrue(&[3, 1], 250);
        p.note_grant(&cand(0, 0, false));
        let mut enc = melreq_snap::Enc::new();
        p.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut q = StallTimeFair::new(2);
        q.load_state(&mut melreq_snap::Dec::new(&bytes)).expect("load");
        assert_eq!(p.debt(CoreId(0)).to_bits(), q.debt(CoreId(0)).to_bits());
        assert_eq!(p.debt(CoreId(1)).to_bits(), q.debt(CoreId(1)).to_bits());
        let cands = [cand(5, 0, false), cand(6, 1, false)];
        assert_eq!(p.select(&cands, &[1, 1]), q.select(&cands, &[1, 1]));
    }
}
