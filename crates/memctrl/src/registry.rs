//! The open policy registry: one static table from which every layer —
//! CLI `--policy` parsing, canonical request serialization, `compare`
//! set enumeration, service request validation, and the `GET /policies`
//! endpoint — derives its view of the scheduler zoo.
//!
//! Each [`PolicyDescriptor`] names a policy (stable id + aliases),
//! documents its typed parameters with defaults, carries capability
//! flags, and holds a factory closing over nothing, so adding a
//! scheduler is one table row plus its `SchedulerPolicy` impl.
//!
//! The grammar accepted by [`PolicyKind::parse`] is
//! `name` or `name(key=val,...)` — e.g. `bliss(threshold=8)` — with
//! omitted keys taking their registered defaults. [`canonical_name`]
//! is the inverse: parameters are emitted only when they differ from
//! the defaults, so `parse → canonical_name → parse` is the identity
//! for every registered id and alias.

use crate::policy::PolicyKind;
use crate::zoo::{Bliss, TcmCluster};
use std::fmt::Write as _;

/// One typed policy parameter with its default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSpec {
    /// Key accepted inside `name(key=val)`.
    pub key: &'static str,
    /// Value used when the key is omitted.
    pub default: u64,
    /// One-line description.
    pub doc: &'static str,
}

/// One registered scheduling policy.
#[derive(Debug, Clone, Copy)]
pub struct PolicyDescriptor {
    /// Stable lowercase id — the canonical parse token.
    pub id: &'static str,
    /// Display name used in reports (the paper's shorthand).
    pub display: &'static str,
    /// Additional accepted parse tokens.
    pub aliases: &'static [&'static str],
    /// Typed parameters, in factory-argument order.
    pub params: &'static [ParamSpec],
    /// One-line description.
    pub doc: &'static str,
    /// Whether the policy consumes a profiled memory-efficiency vector.
    pub needs_me_profile: bool,
    /// Whether reads bypass writes under this policy.
    pub read_first: bool,
    /// Position in the paper-figure compare set (Figure 2 order), when
    /// the policy belongs to it.
    pub paper_figure: Option<u8>,
    /// Factory: builds the [`PolicyKind`] from parameter values given in
    /// `params` order (callers pass defaults for omitted keys).
    pub make: fn(&[u64]) -> PolicyKind,
}

impl PolicyDescriptor {
    /// The policy built with every parameter at its default.
    pub fn default_kind(&self) -> PolicyKind {
        let defaults: Vec<u64> = self.params.iter().map(|p| p.default).collect();
        (self.make)(&defaults)
    }

    /// Single-line JSON rendering (one element of `GET /policies`).
    pub fn json(&self) -> String {
        let mut s = String::new();
        write!(s, "{{\"id\":\"{}\",\"display\":\"{}\"", self.id, self.display).unwrap();
        let aliases: Vec<String> = self.aliases.iter().map(|a| format!("\"{a}\"")).collect();
        write!(s, ",\"aliases\":[{}]", aliases.join(",")).unwrap();
        let params: Vec<String> = self
            .params
            .iter()
            .map(|p| {
                format!("{{\"key\":\"{}\",\"default\":{},\"doc\":\"{}\"}}", p.key, p.default, p.doc)
            })
            .collect();
        write!(s, ",\"params\":[{}]", params.join(",")).unwrap();
        write!(s, ",\"doc\":\"{}\"", self.doc).unwrap();
        write!(s, ",\"needs_me_profile\":{}", self.needs_me_profile).unwrap();
        write!(s, ",\"read_first\":{}", self.read_first).unwrap();
        match self.paper_figure {
            Some(i) => write!(s, ",\"paper_figure\":{i}}}").unwrap(),
            None => s.push_str(",\"paper_figure\":null}"),
        }
        s
    }
}

fn mk_fcfs(_: &[u64]) -> PolicyKind {
    PolicyKind::Fcfs
}
fn mk_fcfs_rf(_: &[u64]) -> PolicyKind {
    PolicyKind::FcfsRf
}
fn mk_hf_rf(_: &[u64]) -> PolicyKind {
    PolicyKind::HfRf
}
fn mk_rr(_: &[u64]) -> PolicyKind {
    PolicyKind::RoundRobin
}
fn mk_lreq(_: &[u64]) -> PolicyKind {
    PolicyKind::Lreq
}
fn mk_me(_: &[u64]) -> PolicyKind {
    PolicyKind::Me
}
fn mk_me_lreq(_: &[u64]) -> PolicyKind {
    PolicyKind::MeLreq
}
fn mk_me_lreq_on(v: &[u64]) -> PolicyKind {
    PolicyKind::MeLreqOnline { epoch_cycles: v[0] }
}
fn mk_fix_0123(_: &[u64]) -> PolicyKind {
    PolicyKind::Fixed { name: "FIX-0123", order: vec![0, 1, 2, 3] }
}
fn mk_fix_3210(_: &[u64]) -> PolicyKind {
    PolicyKind::Fixed { name: "FIX-3210", order: vec![3, 2, 1, 0] }
}
fn mk_fq(_: &[u64]) -> PolicyKind {
    PolicyKind::Fq
}
fn mk_stf(_: &[u64]) -> PolicyKind {
    PolicyKind::Stf
}
fn mk_bliss(v: &[u64]) -> PolicyKind {
    PolicyKind::Bliss {
        threshold: u32::try_from(v[0].clamp(1, u64::from(u32::MAX))).expect("clamped"),
        clear_interval: v[1].max(1),
    }
}
fn mk_tcm(v: &[u64]) -> PolicyKind {
    PolicyKind::TcmCluster { quantum: v[0].max(1) }
}

/// The registry itself: every policy resolvable by name, paper schemes
/// first in Figure 2 order, then the straw-men and extensions.
static REGISTRY: &[PolicyDescriptor] = &[
    PolicyDescriptor {
        id: "hf-rf",
        display: "HF-RF",
        aliases: &["hfrf", "baseline"],
        params: &[],
        doc: "hit-first + read-first, the paper's baseline",
        needs_me_profile: false,
        read_first: true,
        paper_figure: Some(0),
        make: mk_hf_rf,
    },
    PolicyDescriptor {
        id: "me",
        display: "ME",
        aliases: &[],
        params: &[],
        doc: "fixed core priority by profiled memory efficiency",
        needs_me_profile: true,
        read_first: true,
        paper_figure: Some(1),
        make: mk_me,
    },
    PolicyDescriptor {
        id: "rr",
        display: "RR",
        aliases: &["round-robin"],
        params: &[],
        doc: "round-robin over cores",
        needs_me_profile: false,
        read_first: true,
        paper_figure: Some(2),
        make: mk_rr,
    },
    PolicyDescriptor {
        id: "lreq",
        display: "LREQ",
        aliases: &[],
        params: &[],
        doc: "fewest pending reads first",
        needs_me_profile: false,
        read_first: true,
        paper_figure: Some(3),
        make: mk_lreq,
    },
    PolicyDescriptor {
        id: "me-lreq",
        display: "ME-LREQ",
        aliases: &["melreq"],
        params: &[],
        doc: "the paper's contribution: quantized ME/PendingRead priority",
        needs_me_profile: true,
        read_first: true,
        paper_figure: Some(4),
        make: mk_me_lreq,
    },
    PolicyDescriptor {
        id: "fcfs",
        display: "FCFS",
        aliases: &[],
        params: &[],
        doc: "strict arrival order, no read bypass",
        needs_me_profile: false,
        read_first: false,
        paper_figure: None,
        make: mk_fcfs,
    },
    PolicyDescriptor {
        id: "fcfs-rf",
        display: "FCFS-RF",
        aliases: &[],
        params: &[],
        doc: "arrival order with reads bypassing writes",
        needs_me_profile: false,
        read_first: true,
        paper_figure: None,
        make: mk_fcfs_rf,
    },
    PolicyDescriptor {
        id: "me-lreq-on",
        display: "ME-LREQ-ON",
        aliases: &["online"],
        params: &[ParamSpec {
            key: "epoch",
            default: 50_000,
            doc: "online ME re-estimation period in CPU cycles",
        }],
        doc: "ME-LREQ with online memory-efficiency estimation",
        needs_me_profile: false,
        read_first: true,
        paper_figure: None,
        make: mk_me_lreq_on,
    },
    PolicyDescriptor {
        id: "fix-0123",
        display: "FIX-0123",
        aliases: &[],
        params: &[],
        doc: "straw-man fixed priority, core 0 first (Figure 3)",
        needs_me_profile: false,
        read_first: true,
        paper_figure: None,
        make: mk_fix_0123,
    },
    PolicyDescriptor {
        id: "fix-3210",
        display: "FIX-3210",
        aliases: &[],
        params: &[],
        doc: "straw-man fixed priority, core 3 first (Figure 3)",
        needs_me_profile: false,
        read_first: true,
        paper_figure: None,
        make: mk_fix_3210,
    },
    PolicyDescriptor {
        id: "fq",
        display: "FQ",
        aliases: &["fair-queueing"],
        params: &[],
        doc: "start-time fair queueing over memory service",
        needs_me_profile: false,
        read_first: true,
        paper_figure: None,
        make: mk_fq,
    },
    PolicyDescriptor {
        id: "stf",
        display: "STF",
        aliases: &["stall-time-fair"],
        params: &[],
        doc: "stall-time-fairness heuristic (queueing-delay debt)",
        needs_me_profile: false,
        read_first: true,
        paper_figure: None,
        make: mk_stf,
    },
    PolicyDescriptor {
        id: "bliss",
        display: "BLISS",
        aliases: &[],
        params: &[
            ParamSpec {
                key: "threshold",
                default: Bliss::DEFAULT_THRESHOLD as u64,
                doc: "consecutive grants before a core is blacklisted",
            },
            ParamSpec {
                key: "clear",
                default: Bliss::DEFAULT_CLEAR_INTERVAL,
                doc: "grants between blacklist clearings",
            },
        ],
        doc: "BLISS blacklisting: demote cores with long grant streaks",
        needs_me_profile: false,
        read_first: true,
        paper_figure: None,
        make: mk_bliss,
    },
    PolicyDescriptor {
        id: "tcm",
        display: "TCM",
        aliases: &["tcm-cluster"],
        params: &[ParamSpec {
            key: "quantum",
            default: TcmCluster::DEFAULT_QUANTUM,
            doc: "grants per re-clustering quantum",
        }],
        doc: "TCM-style two-cluster scheduling with bandwidth-cluster shuffle",
        needs_me_profile: false,
        read_first: true,
        paper_figure: None,
        make: mk_tcm,
    },
];

/// Every registered policy, paper-figure schemes first.
pub fn registry() -> &'static [PolicyDescriptor] {
    REGISTRY
}

/// Resolve a lowercase token (id or alias) to its descriptor.
pub fn find(token: &str) -> Option<&'static PolicyDescriptor> {
    REGISTRY.iter().find(|d| d.id == token || d.aliases.contains(&token))
}

/// The descriptor a built [`PolicyKind`] belongs to, when registered.
pub fn descriptor_of(kind: &PolicyKind) -> Option<&'static PolicyDescriptor> {
    let id = match kind {
        PolicyKind::Fcfs => "fcfs",
        PolicyKind::FcfsRf => "fcfs-rf",
        PolicyKind::HfRf => "hf-rf",
        PolicyKind::RoundRobin => "rr",
        PolicyKind::Lreq => "lreq",
        PolicyKind::Me => "me",
        PolicyKind::MeLreq => "me-lreq",
        PolicyKind::MeLreqOnline { .. } => "me-lreq-on",
        PolicyKind::Fixed { name: "FIX-0123", .. } => "fix-0123",
        PolicyKind::Fixed { name: "FIX-3210", .. } => "fix-3210",
        PolicyKind::Fixed { .. } => return None,
        PolicyKind::Fq => "fq",
        PolicyKind::Stf => "stf",
        PolicyKind::Bliss { .. } => "bliss",
        PolicyKind::TcmCluster { .. } => "tcm",
    };
    find(id)
}

/// Current parameter values of `kind`, in its descriptor's `params`
/// order (empty for parameter-free policies).
fn param_values(kind: &PolicyKind) -> Vec<u64> {
    match kind {
        PolicyKind::MeLreqOnline { epoch_cycles } => vec![*epoch_cycles],
        PolicyKind::Bliss { threshold, clear_interval } => {
            vec![u64::from(*threshold), *clear_interval]
        }
        PolicyKind::TcmCluster { quantum } => vec![*quantum],
        _ => Vec::new(),
    }
}

/// The canonical parse token of `kind`: the registry id, with
/// `(key=val,...)` appended only for parameters that differ from their
/// defaults. Unregistered kinds (ad-hoc `Fixed` orders) fall back to
/// the lowercased display name.
pub fn canonical_name(kind: &PolicyKind) -> String {
    let Some(desc) = descriptor_of(kind) else {
        return kind.name().to_ascii_lowercase();
    };
    let values = param_values(kind);
    let overrides: Vec<String> = desc
        .params
        .iter()
        .zip(&values)
        .filter(|(spec, &v)| v != spec.default)
        .map(|(spec, v)| format!("{}={v}", spec.key))
        .collect();
    if overrides.is_empty() {
        desc.id.to_string()
    } else {
        format!("{}({})", desc.id, overrides.join(","))
    }
}

/// The registry's paper-figure compare set (Figure 2 order) — what
/// `compare` runs when no explicit policy set is given.
pub fn paper_figure_set() -> Vec<PolicyKind> {
    let mut figured: Vec<&PolicyDescriptor> =
        REGISTRY.iter().filter(|d| d.paper_figure.is_some()).collect();
    figured.sort_by_key(|d| d.paper_figure);
    figured.iter().map(|d| d.default_kind()).collect()
}

/// Single-line JSON array of every descriptor (`GET /policies` body).
pub fn registry_json() -> String {
    let items: Vec<String> = REGISTRY.iter().map(PolicyDescriptor::json).collect();
    format!("[{}]", items.join(","))
}

/// Levenshtein edit distance (iterative two-row DP).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<u8> = a.bytes().collect();
    let b: Vec<u8> = b.bytes().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The registered id or alias nearest to `token` by edit distance
/// (ties to the lexicographically smaller name).
pub fn suggest(token: &str) -> &'static str {
    REGISTRY
        .iter()
        .flat_map(|d| std::iter::once(d.id).chain(d.aliases.iter().copied()))
        .min_by_key(|name| (edit_distance(token, name), *name))
        .expect("registry is non-empty")
}

/// The standard unknown-policy error, with a nearest-name suggestion.
fn unknown_policy(token: &str) -> String {
    format!("unknown policy '{token}'; did you mean '{}'?", suggest(token))
}

impl PolicyKind {
    /// Parse a policy token — `name` or `name(key=val,...)` — against
    /// the registry. Case-insensitive; omitted parameters take their
    /// registered defaults; unknown names are rejected with a
    /// nearest-name suggestion.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let (name, args) = match s.find('(') {
            Some(open) => {
                if !s.ends_with(')') {
                    return Err(format!("policy '{s}': missing closing ')'"));
                }
                (&s[..open], Some(&s[open + 1..s.len() - 1]))
            }
            None => (s, None),
        };
        let token = name.trim().to_ascii_lowercase();
        let Some(desc) = find(&token) else {
            return Err(unknown_policy(&token));
        };
        let mut values: Vec<u64> = desc.params.iter().map(|p| p.default).collect();
        if let Some(args) = args {
            for part in args.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                let Some((key, val)) = part.split_once('=') else {
                    return Err(format!(
                        "policy '{}': expected 'key=value', got '{part}'",
                        desc.id
                    ));
                };
                let key = key.trim().to_ascii_lowercase();
                let Some(idx) = desc.params.iter().position(|p| p.key == key) else {
                    let valid: Vec<&str> = desc.params.iter().map(|p| p.key).collect();
                    return Err(if valid.is_empty() {
                        format!("policy '{}' takes no parameters", desc.id)
                    } else {
                        format!(
                            "policy '{}': unknown parameter '{key}' (valid: {})",
                            desc.id,
                            valid.join(", ")
                        )
                    });
                };
                values[idx] = val.trim().parse::<u64>().map_err(|_| {
                    format!("policy '{}': parameter '{key}' wants an unsigned integer", desc.id)
                })?;
            }
        }
        Ok((desc.make)(&values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_and_alias_round_trips() {
        for d in registry() {
            for token in std::iter::once(d.id).chain(d.aliases.iter().copied()) {
                let kind = PolicyKind::parse(token).expect("registered token parses");
                let canon = canonical_name(&kind);
                assert_eq!(canon, d.id, "alias '{token}' must canonicalize to the id");
                let again = PolicyKind::parse(&canon).expect("canonical name parses");
                assert_eq!(kind, again, "parse → canonical_name → parse must be identity");
            }
        }
    }

    #[test]
    fn parameterized_tokens_parse_and_round_trip() {
        let k = PolicyKind::parse("bliss(threshold=8, clear=500)").expect("parse");
        assert_eq!(k, PolicyKind::Bliss { threshold: 8, clear_interval: 500 });
        assert_eq!(canonical_name(&k), "bliss(threshold=8,clear=500)");
        assert_eq!(PolicyKind::parse(&canonical_name(&k)).expect("round trip"), k);

        let k = PolicyKind::parse("me-lreq-on(epoch=1000)").expect("parse");
        assert_eq!(k, PolicyKind::MeLreqOnline { epoch_cycles: 1000 });
        assert_eq!(canonical_name(&k), "me-lreq-on(epoch=1000)");

        // Defaults collapse to the bare id.
        let k = PolicyKind::parse("tcm(quantum=2000)").expect("parse");
        assert_eq!(canonical_name(&k), "tcm");
        assert_eq!(
            PolicyKind::parse("me-lreq-on").expect("default"),
            PolicyKind::MeLreqOnline { epoch_cycles: 50_000 }
        );
    }

    #[test]
    fn unknown_policy_suggests_the_nearest_name() {
        let err = PolicyKind::parse("me-lerq").expect_err("typo rejected");
        assert!(err.contains("unknown policy 'me-lerq'"), "{err}");
        assert!(err.contains("did you mean 'me-lreq'?"), "{err}");
        let err = PolicyKind::parse("blis").expect_err("typo rejected");
        assert!(err.contains("'bliss'"), "{err}");
        let err = PolicyKind::parse("tmc").expect_err("typo rejected");
        assert!(err.contains("did you mean"), "{err}");
    }

    #[test]
    fn bad_parameter_syntax_is_rejected() {
        assert!(PolicyKind::parse("bliss(threshold=8").is_err(), "missing ')'");
        assert!(PolicyKind::parse("bliss(threshold)").is_err(), "missing '='");
        assert!(PolicyKind::parse("bliss(limit=2)").is_err(), "unknown key");
        assert!(PolicyKind::parse("bliss(threshold=abc)").is_err(), "non-numeric");
        assert!(PolicyKind::parse("hf-rf(x=1)").is_err(), "params on a param-less policy");
        let err = PolicyKind::parse("hf-rf(x=1)").expect_err("rejected");
        assert!(err.contains("takes no parameters"), "{err}");
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert_eq!(PolicyKind::parse(" HF-RF ").expect("parse"), PolicyKind::HfRf);
        assert_eq!(
            PolicyKind::parse("BLISS(THRESHOLD=2)").expect("parse"),
            PolicyKind::Bliss { threshold: 2, clear_interval: Bliss::DEFAULT_CLEAR_INTERVAL }
        );
    }

    #[test]
    fn paper_figure_set_matches_figure2() {
        let reg = paper_figure_set();
        let fig2 = PolicyKind::figure2_set();
        assert_eq!(reg, fig2, "registry must enumerate the paper's Figure 2 set in order");
    }

    #[test]
    fn ids_and_aliases_are_unique_and_lowercase() {
        let mut seen = Vec::new();
        for d in registry() {
            for token in std::iter::once(d.id).chain(d.aliases.iter().copied()) {
                assert_eq!(token, token.to_ascii_lowercase(), "token '{token}' must be lowercase");
                assert!(!seen.contains(&token), "token '{token}' registered twice");
                seen.push(token);
            }
        }
    }

    #[test]
    fn descriptor_flags_mirror_policy_kind() {
        for d in registry() {
            let kind = d.default_kind();
            assert_eq!(d.read_first, kind.read_first(), "{}: read_first drift", d.id);
            assert_eq!(d.display, kind.name(), "{}: display drift", d.id);
        }
    }

    #[test]
    fn registry_json_is_well_formed_and_complete() {
        let json = registry_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        for d in registry() {
            assert!(json.contains(&format!("\"id\":\"{}\"", d.id)), "{} missing", d.id);
        }
        assert!(json.contains("\"key\":\"threshold\""));
        assert!(json.contains("\"paper_figure\":0"));
        assert_eq!(json.matches("{\"id\":").count(), registry().len());
    }

    #[test]
    fn edit_distance_is_sane() {
        assert_eq!(edit_distance("bliss", "bliss"), 0);
        assert_eq!(edit_distance("blis", "bliss"), 1);
        assert_eq!(edit_distance("", "tcm"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
