//! The transaction engine: queues + policy + DRAM + write-drain machinery.

use crate::policy::{Candidate, SchedulerPolicy};
use crate::queue::RequestQueue;
use crate::request::{MemRequest, ReqId};
use melreq_audit::{AuditEvent, AuditHandle, CandidateInfo};
use melreq_dram::{DramSystem, RowPolicy};
use melreq_stats::types::{AccessKind, Addr, CoreId, Cycle};
use melreq_stats::{Counter, LatencyTracker};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Controller configuration (Table 1 defaults via [`ControllerConfig::paper`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerConfig {
    /// Shared request-buffer entries (M in Figure 1).
    pub buffer_entries: usize,
    /// Pending-write count at which write draining starts ("half of the
    /// memory buffer size", Section 3.2).
    pub drain_start: usize,
    /// Pending-write count at which draining stops ("one-fourth of the
    /// buffer size").
    pub drain_stop: usize,
    /// Fixed controller pipeline overhead applied to every request before
    /// it becomes schedulable (15 ns = 48 cycles in Table 1).
    pub overhead: Cycle,
    /// Row-buffer management discipline (close-page in the paper).
    pub row_policy: RowPolicy,
}

impl ControllerConfig {
    /// The paper's configuration: 64 entries, drain at 32/16, 48-cycle
    /// overhead.
    pub fn paper() -> Self {
        ControllerConfig {
            buffer_entries: 64,
            drain_start: 32,
            drain_stop: 16,
            overhead: 48,
            row_policy: RowPolicy::ClosePage,
        }
    }

    /// The paper's controller with open-page row management (for the
    /// page-policy ablation; pair with a page-interleaved geometry).
    pub fn paper_open_page() -> Self {
        ControllerConfig { row_policy: RowPolicy::OpenPage, ..Self::paper() }
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Per-channel grant counts (the channel-resolved view of
/// `reads_served`/`writes_served`/`grant_row_hits`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelTraffic {
    /// Reads granted on this channel.
    pub reads: u64,
    /// Writes granted on this channel.
    pub writes: u64,
    /// Grants that were row-buffer hits on this channel.
    pub row_hits: u64,
}

impl ChannelTraffic {
    /// Row-hit fraction of this channel's grants (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Aggregate and per-core controller statistics.
#[derive(Debug, Clone)]
pub struct ControllerStats {
    /// Read latency (enqueue → last data beat) per core: the quantity of
    /// Figure 4.
    pub read_latency: Vec<LatencyTracker>,
    /// Reads granted.
    pub reads_served: Counter,
    /// Writes granted.
    pub writes_served: Counter,
    /// Times the write-drain mode was entered.
    pub drain_entries: Counter,
    /// Grants that were row-buffer hits.
    pub grant_row_hits: Counter,
    /// Per-core bytes moved (reads + write-backs), for per-program
    /// bandwidth and the ME profile.
    pub bytes_by_core: Vec<Counter>,
    /// Queue occupancy sampled at each grant attempt that found at least
    /// one issuable candidate — i.e. once per granted transaction, since
    /// a non-empty candidate set always grants. The mean reads as "the
    /// backlog a scheduling decision chose from", **not** a time average
    /// over cycles: idle and fully-blocked cycles contribute no samples.
    /// Sampling only at decisions keeps the statistic identical between
    /// the cycle-exact and fast-forward kernels, which agree on grant
    /// cycles but not on how many quiescent cycles are explicitly
    /// simulated.
    pub queue_occupancy: melreq_stats::StreamingMean,
    /// Candidate-set size at each grant (how many requests competed for
    /// the channel); sampled at the same points as `queue_occupancy`.
    pub grant_candidates: melreq_stats::StreamingMean,
    /// Per-channel grant breakdown (reads/writes/row-hits).
    pub per_channel: Vec<ChannelTraffic>,
}

impl ControllerStats {
    fn new(cores: usize, channels: usize) -> Self {
        ControllerStats {
            read_latency: vec![LatencyTracker::new(); cores],
            reads_served: Counter::new(),
            writes_served: Counter::new(),
            drain_entries: Counter::new(),
            grant_row_hits: Counter::new(),
            bytes_by_core: vec![Counter::new(); cores],
            queue_occupancy: melreq_stats::StreamingMean::new(),
            grant_candidates: melreq_stats::StreamingMean::new(),
            per_channel: vec![ChannelTraffic::default(); channels],
        }
    }

    /// Mean read latency across all cores (left plot of Figure 4).
    pub fn mean_read_latency(&self) -> f64 {
        let mut all = LatencyTracker::new();
        for t in &self.read_latency {
            all.merge(t);
        }
        all.mean_or_zero()
    }

    fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.usize(self.read_latency.len());
        for t in &self.read_latency {
            t.save_state(enc);
        }
        for c in
            [&self.reads_served, &self.writes_served, &self.drain_entries, &self.grant_row_hits]
        {
            c.save_state(enc);
        }
        for c in &self.bytes_by_core {
            c.save_state(enc);
        }
        self.queue_occupancy.save_state(enc);
        self.grant_candidates.save_state(enc);
        enc.usize(self.per_channel.len());
        for t in &self.per_channel {
            enc.u64(t.reads);
            enc.u64(t.writes);
            enc.u64(t.row_hits);
        }
    }

    fn load_state(&mut self, dec: &mut melreq_snap::Dec<'_>) -> Result<(), melreq_snap::SnapError> {
        let n = dec.usize()?;
        if n != self.read_latency.len() {
            return Err(melreq_snap::SnapError::Invalid("controller core count mismatch"));
        }
        for t in &mut self.read_latency {
            t.load_state(dec)?;
        }
        for c in [
            &mut self.reads_served,
            &mut self.writes_served,
            &mut self.drain_entries,
            &mut self.grant_row_hits,
        ] {
            c.load_state(dec)?;
        }
        for c in &mut self.bytes_by_core {
            c.load_state(dec)?;
        }
        self.queue_occupancy.load_state(dec)?;
        self.grant_candidates.load_state(dec)?;
        let n = dec.usize()?;
        if n != self.per_channel.len() {
            return Err(melreq_snap::SnapError::Invalid("controller channel count mismatch"));
        }
        for t in &mut self.per_channel {
            t.reads = dec.u64()?;
            t.writes = dec.u64()?;
            t.row_hits = dec.u64()?;
        }
        Ok(())
    }
}

/// A completed read waiting to be delivered back to the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Completion {
    at: Cycle,
    id: ReqId,
    core: CoreId,
    addr: Addr,
}

/// The memory controller of Figure 1.
///
/// Driven by the system cycle loop:
///
/// 1. the cache hierarchy calls [`MemoryController::can_accept`] /
///    [`MemoryController::submit`] to enqueue line transactions;
/// 2. each cycle [`MemoryController::tick`] grants at most one
///    transaction per logical channel according to the active policy;
/// 3. the hierarchy drains finished reads with
///    [`MemoryController::pop_completed`]. Writes complete silently.
#[derive(Debug)]
pub struct MemoryController {
    cfg: ControllerConfig, // melreq-allow(S01): construction-time config, identical across snapshot peers
    queue: RequestQueue,
    dram: DramSystem,
    policy: Box<dyn SchedulerPolicy>,
    /// Whether reads may bypass writes (all schemes except plain FCFS).
    read_first: bool,
    draining: bool,
    next_id: u64,
    completions: BinaryHeap<Reverse<Completion>>,
    stats: ControllerStats,
    /// Scratch buffers reused across ticks to avoid per-cycle allocation.
    /// `cand_ids` carries (buffer position, id, kind) of this channel's
    /// issuable requests; `cand_pos` mirrors `cand_buf` with positions so
    /// a policy's selection maps back to the buffer in O(1).
    cand_buf: Vec<Candidate>, // melreq-allow(S01): scratch, rebuilt from scratch every tick
    cand_pos: Vec<usize>, // melreq-allow(S01): scratch, rebuilt from scratch every tick
    cand_ids: Vec<(usize, ReqId, AccessKind)>, // melreq-allow(S01): scratch, rebuilt from scratch every tick
    /// Per-bank ready-cycle snapshot for the channel being scheduled
    /// (one DRAM probe per bank instead of one per queued request).
    bank_ready: Vec<Cycle>, // melreq-allow(S01): scratch, rebuilt from scratch every tick
    /// Audit instrumentation (no-op unless a sink is attached; debug
    /// builds attach a panicking watchdog automatically).
    audit: AuditHandle, // melreq-allow(S01): instrumentation handle re-attached by the host
}

impl MemoryController {
    /// Build a controller for `cores` cores.
    pub fn new(
        cfg: ControllerConfig,
        dram: DramSystem,
        policy: Box<dyn SchedulerPolicy>,
        read_first: bool,
        cores: usize,
    ) -> Self {
        assert!(cfg.drain_stop < cfg.drain_start, "drain hysteresis must be decreasing");
        assert!(cfg.drain_start <= cfg.buffer_entries, "drain threshold beyond buffer");
        let channels = dram.geometry().channels;
        let mut ctrl = MemoryController {
            queue: RequestQueue::new(cfg.buffer_entries, cores, channels),
            bank_ready: Vec::with_capacity(dram.geometry().banks_per_channel()),
            cfg,
            dram,
            policy,
            read_first,
            draining: false,
            next_id: 0,
            completions: BinaryHeap::new(),
            stats: ControllerStats::new(cores, channels),
            cand_buf: Vec::with_capacity(cfg.buffer_entries),
            cand_pos: Vec::with_capacity(cfg.buffer_entries),
            cand_ids: Vec::with_capacity(cfg.buffer_entries),
            audit: AuditHandle::disabled(),
        };
        // Debug builds run with an always-on protocol watchdog: any
        // timing or scheduling violation panics at the offending grant.
        // (The starvation check stays off here — straw-man policies such
        // as FIX-3210 starve legitimately; `--audit` reports it instead.)
        if cfg!(debug_assertions) {
            let audit_cfg = melreq_audit::AuditorConfig {
                starvation_cap: u64::MAX,
                panic_on_violation: true,
                max_stored: 1,
            };
            let (handle, _auditor) = melreq_audit::Auditor::shared(audit_cfg, true);
            ctrl.attach_audit(handle);
        }
        ctrl
    }

    /// Attach audit instrumentation: the DRAM device announces its
    /// configuration, then the controller announces its own. Every
    /// subsequent submit, scheduling decision, and grant is reported on
    /// the stream. Replaces any previously attached sink (including the
    /// debug-build watchdog).
    pub fn attach_audit(&mut self, audit: AuditHandle) {
        self.dram.set_audit(audit.clone());
        self.audit = audit;
        self.emit_ctrl_config();
    }

    /// Announce the controller configuration (including the active
    /// policy) on the audit stream. Parameterized policies follow up
    /// with their tunables; the paper's parameter-free schemes emit
    /// nothing extra, keeping their streams byte-identical.
    fn emit_ctrl_config(&self) {
        self.audit.emit(|| AuditEvent::CtrlConfig {
            cores: self.stats.read_latency.len(),
            policy: self.policy.name(),
            read_first: self.read_first,
            buffer_entries: self.cfg.buffer_entries,
            drain_start: self.cfg.drain_start,
            drain_stop: self.cfg.drain_stop,
            overhead: self.cfg.overhead,
        });
        let params = self.policy.params();
        if !params.is_empty() {
            self.audit.emit(|| AuditEvent::PolicyParams { params });
        }
    }

    /// Name of the active policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Swap the scheduling policy (and its read-bypass setting) without
    /// disturbing any other controller state — the warmup-sharing hook:
    /// a system warmed under the canonical policy forks into one
    /// controller per measured policy at the measurement boundary.
    ///
    /// A fresh `CtrlConfig` is emitted on the audit stream so an attached
    /// checker switches its invariant model to the new policy mid-run
    /// (the queue and device replicas are unaffected — only the
    /// scheduling rules change).
    pub fn set_policy(&mut self, policy: Box<dyn SchedulerPolicy>, read_first: bool) {
        self.policy = policy;
        self.read_first = read_first;
        self.emit_ctrl_config();
    }

    /// Announce a memory-efficiency profile on the audit stream without
    /// touching the policy — used when a policy whose tables were
    /// programmed at construction is swapped in mid-run, so the checker
    /// learns what the new tables hold.
    pub fn announce_profile(&self, me: &[f64]) {
        self.audit.emit(|| AuditEvent::ProfileUpdate { me: me.to_vec() });
    }

    /// Serialize all mutable controller state: request queue, DRAM
    /// device, drain machinery, id allocator, in-flight completions,
    /// statistics, and the active policy's decision state. The scratch
    /// buffers (rebuilt from scratch every tick) and the audit handle (an
    /// observer the host re-attaches) are deliberately not state.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        self.queue.save_state(enc);
        self.dram.save_state(enc);
        enc.bool(self.read_first);
        enc.bool(self.draining);
        enc.u64(self.next_id);
        // BinaryHeap iteration order is unspecified; sort so identical
        // controller states serialize to identical bytes.
        let mut comps: Vec<Completion> = self.completions.iter().map(|Reverse(c)| *c).collect();
        comps.sort();
        enc.usize(comps.len());
        for c in &comps {
            enc.u64(c.at);
            enc.u64(c.id.0);
            enc.u16(c.core.0);
            enc.u64(c.addr);
        }
        self.stats.save_state(enc);
        enc.str(self.policy.name());
        self.policy.save_state(enc);
    }

    /// Restore state written by [`MemoryController::save_state`] into a
    /// controller constructed with the same configuration and an
    /// identically built policy (same kind and construction seed).
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        self.queue.load_state(dec)?;
        self.dram.load_state(dec)?;
        self.read_first = dec.bool()?;
        self.draining = dec.bool()?;
        self.next_id = dec.u64()?;
        let n = dec.usize()?;
        self.completions.clear();
        for _ in 0..n {
            let at = dec.u64()?;
            let id = ReqId(dec.u64()?);
            let core = CoreId(dec.u16()?);
            let addr = dec.u64()?;
            self.completions.push(Reverse(Completion { at, id, core, addr }));
        }
        self.stats.load_state(dec)?;
        let name = dec.str()?;
        if name != self.policy.name() {
            return Err(melreq_snap::SnapError::Invalid("scheduler policy mismatch"));
        }
        self.policy.load_state(dec)?;
        // An attached audit (including the debug-build watchdog) models
        // the machine from reset; the restored state contains in-flight
        // requests and device timings it never observed being built, so
        // any audit is detached rather than left to report phantom
        // violations. Audited runs always simulate fresh.
        self.audit = AuditHandle::disabled();
        self.dram.set_audit(AuditHandle::disabled());
        Ok(())
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Clear accumulated statistics (end of a warm-up phase). Queue and
    /// DRAM state are untouched — only the counters restart.
    pub fn reset_stats(&mut self) {
        let cores = self.stats.read_latency.len();
        let channels = self.stats.per_channel.len();
        self.stats = ControllerStats::new(cores, channels);
    }

    /// Push fresh per-core memory-efficiency estimates into the policy
    /// (no-op for ME-oblivious policies) — the online-profiling hook.
    pub fn update_profile(&mut self, me: &[f64]) {
        self.policy.update_profile(me);
        self.audit.emit(|| AuditEvent::ProfileUpdate { me: me.to_vec() });
    }

    /// The DRAM device behind the controller (row-hit stats etc.).
    pub fn dram(&self) -> &DramSystem {
        &self.dram
    }

    /// Whether the shared buffer can take another request.
    pub fn can_accept(&self) -> bool {
        self.queue.has_space()
    }

    /// Pending read count of `core` (exposed for the CPU model's MSHR
    /// throttling and for tests).
    pub fn pending_reads(&self, core: CoreId) -> u32 {
        self.queue.pending_reads(core)
    }

    /// Logical channel count of the DRAM behind the controller.
    pub fn channels(&self) -> usize {
        self.dram.geometry().channels
    }

    /// Requests currently queued for `channel` (the epoch sampler's
    /// queue-depth signal).
    pub fn channel_queue_depth(&self, channel: usize) -> usize {
        self.queue.channel_positions(channel).len()
    }

    /// True when no requests are queued and no completions are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.completions.is_empty()
    }

    /// Enqueue a line transaction. Returns the request id; the same id is
    /// reported by [`MemoryController::pop_completed`] when a read's data
    /// returns.
    ///
    /// # Panics
    /// Panics if the buffer is full — check [`MemoryController::can_accept`].
    pub fn submit(&mut self, core: CoreId, addr: Addr, kind: AccessKind, now: Cycle) -> ReqId {
        let id = ReqId(self.next_id);
        self.next_id += 1;
        let loc = self.dram.decode(addr);
        self.audit.emit(|| AuditEvent::Submit {
            id: id.0,
            core: core.0,
            channel: loc.channel,
            bank: loc.bank,
            row: loc.row,
            write: kind.is_write(),
            at: now,
        });
        self.queue.push(MemRequest { id, core, addr, loc, kind, arrival: now });
        id
    }

    /// One scheduler cycle: update drain state, then grant at most one
    /// transaction per logical channel.
    pub fn tick(&mut self, now: Cycle) {
        self.dram.sync(now);
        if self.queue.is_empty() {
            return;
        }
        self.update_drain_state();
        for ch in 0..self.dram.geometry().channels {
            self.try_grant(ch, now);
        }
    }

    /// Pop one read whose data is available at `now`, if any.
    pub fn pop_completed(&mut self, now: Cycle) -> Option<(ReqId, CoreId, Addr)> {
        match self.completions.peek() {
            Some(Reverse(c)) if c.at <= now => {
                let Reverse(c) = self.completions.pop().expect("peeked");
                Some((c.id, c.core, c.addr))
            }
            _ => None,
        }
    }

    /// Earliest cycle at which a completion will be ready, if any — lets
    /// the system loop skip idle cycles.
    pub fn next_completion_at(&self) -> Option<Cycle> {
        self.completions.peek().map(|Reverse(c)| c.at)
    }

    /// Conservative lower bound on the next cycle this controller can do
    /// observable work: deliver a read completion, grant a queued request
    /// (earliest cycle any request has both cleared the pipeline overhead
    /// and found its bank ready), or cross an all-bank refresh boundary.
    /// `None` when the controller is fully idle and refresh is disabled.
    ///
    /// The bound never overshoots: bank ready times only move later
    /// (refresh), never earlier, and `try_grant` always grants when a
    /// candidate passes both filters — so no grant can occur strictly
    /// before the returned cycle. It may undershoot (e.g. bus or drain
    /// effects), which merely costs the caller an extra probe tick.
    pub fn next_event_at(&self, now: Cycle) -> Option<Cycle> {
        let grant = self
            .queue
            .next_candidate_at(now, self.cfg.overhead, |ch| self.dram.bank_ready_slice(ch));
        let mut bound = self.next_completion_at();
        for t in [grant, self.dram.next_refresh_at()] {
            bound = match (bound, t) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        bound.map(|b| b.max(now))
    }

    fn update_drain_state(&mut self) {
        let writes = self.queue.total_writes() as usize;
        if !self.draining && writes >= self.cfg.drain_start {
            self.draining = true;
            self.stats.drain_entries.inc();
        } else if self.draining && writes <= self.cfg.drain_stop {
            self.draining = false;
        }
    }

    /// Whether the controller is currently draining writes.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Attempt one grant on channel `ch`.
    fn try_grant(&mut self, ch: usize, now: Cycle) {
        if self.queue.channel_positions(ch).is_empty() {
            return;
        }
        // Snapshot per-bank ready cycles once per channel: one dense copy
        // from the DRAM model's struct-of-arrays state instead of a probe
        // per bank (a grant below mutates the DRAM, so the scan cannot
        // borrow the slice directly).
        self.bank_ready.clear();
        self.bank_ready.extend_from_slice(self.dram.bank_ready_slice(ch));
        // Gather issuable requests on this channel that have cleared the
        // controller pipeline overhead, walking only this channel's
        // position list (buffer order, so policies see the same candidate
        // sequence a full buffer scan would produce).
        self.cand_ids.clear();
        for &pos in self.queue.channel_positions(ch) {
            let r = self.queue.at(pos);
            if r.arrival + self.cfg.overhead <= now && self.bank_ready[r.loc.bank] <= now {
                self.cand_ids.push((pos, r.id, r.kind));
            }
        }
        if self.cand_ids.is_empty() {
            return;
        }
        // Statistics are sampled per scheduling decision, not per cycle —
        // see `ControllerStats::queue_occupancy`.
        self.stats.queue_occupancy.push(self.queue.len() as f64);
        self.stats.grant_candidates.push(self.cand_ids.len() as f64);

        let (chosen_pos, chosen) = if !self.read_first {
            // Plain FCFS: single class, strict arrival order.
            self.cand_ids
                .iter()
                .map(|&(pos, id, _)| (pos, id))
                .min_by_key(|&(_, id)| id)
                .expect("non-empty")
        } else {
            let has_read = self.cand_ids.iter().any(|(_, _, k)| k.is_read());
            let has_write = self.cand_ids.iter().any(|(_, _, k)| k.is_write());
            let use_writes = if self.draining { has_write } else { !has_read && has_write };
            let idx = if use_writes {
                // Writes drain hit-first-then-oldest for every policy.
                self.pick_write(ch)
            } else {
                self.pick_read_via_policy(ch)
            };
            (self.cand_pos[idx], self.cand_buf[idx].id)
        };
        if self.audit.wants_decisions() {
            self.emit_decision(ch, now, chosen);
        }
        self.issue(chosen_pos, now);
    }

    /// Report one scheduling decision — the full candidate set plus the
    /// pending-read counts the policy saw — on the audit stream.
    fn emit_decision(&self, ch: usize, now: Cycle, chosen: ReqId) {
        let candidates: Vec<CandidateInfo> = self
            .cand_ids
            .iter()
            .map(|&(pos, id, kind)| {
                let r = self.queue.at(pos);
                CandidateInfo {
                    id: id.0,
                    core: r.core.0,
                    bank: r.loc.bank,
                    row: r.loc.row,
                    write: kind.is_write(),
                    row_hit: self.dram.is_row_hit(&r.loc),
                    arrival: r.arrival,
                }
            })
            .collect();
        let pending_reads = self.queue.pending_reads_all().to_vec();
        self.audit.emit(|| AuditEvent::Decision {
            channel: ch,
            at: now,
            draining: self.draining,
            chosen: chosen.0,
            candidates,
            pending_reads,
        });
    }

    fn build_candidates(&mut self, want_reads: bool) {
        self.cand_buf.clear();
        self.cand_pos.clear();
        for &(pos, id, kind) in &self.cand_ids {
            if kind.is_read() != want_reads {
                continue;
            }
            let req = self.queue.at(pos);
            self.cand_buf.push(Candidate {
                id,
                core: req.core,
                row_hit: self.dram.is_row_hit(&req.loc),
            });
            self.cand_pos.push(pos);
        }
    }

    /// Returns an index into `cand_buf`/`cand_pos`.
    fn pick_write(&mut self, _ch: usize) -> usize {
        self.build_candidates(false);
        self.cand_buf
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (!c.row_hit, c.id))
            .map(|(i, _)| i)
            .expect("write candidate set empty")
    }

    /// Returns an index into `cand_buf`/`cand_pos`.
    fn pick_read_via_policy(&mut self, _ch: usize) -> usize {
        self.build_candidates(true);
        let idx = self.policy.select(&self.cand_buf, self.queue.pending_reads_all());
        self.policy.note_grant(&self.cand_buf[idx]);
        idx
    }

    fn issue(&mut self, pos: usize, now: Cycle) {
        let req = self.queue.remove_at(pos);
        let id = req.id;
        // Close-page: scheduler-controlled precharge keeps the row open
        // only while another queued request targets it. Open-page: rows
        // always stay open (conflicts pay the precharge later).
        let keep_open = match self.cfg.row_policy {
            RowPolicy::ClosePage => self.queue.has_same_row_pending(&req.loc, id),
            RowPolicy::OpenPage => true,
        };
        let hit_before = self.dram.is_row_hit(&req.loc);
        let service = self.dram.issue(&req.loc, req.kind, now, keep_open);
        self.audit.emit(|| AuditEvent::Grant {
            id: req.id.0,
            core: req.core.0,
            channel: req.loc.channel,
            bank: req.loc.bank,
            row: req.loc.row,
            write: req.kind.is_write(),
            requested_at: now,
            granted_at: service.granted_at,
            keep_open,
            outcome: service.outcome.into(),
            data_ready: service.data_ready,
        });
        if hit_before {
            self.stats.grant_row_hits.inc();
        }
        let traffic = &mut self.stats.per_channel[req.loc.channel];
        if hit_before {
            traffic.row_hits += 1;
        }
        match req.kind {
            AccessKind::Read => traffic.reads += 1,
            AccessKind::Write => traffic.writes += 1,
        }
        self.stats.bytes_by_core[req.core.index()].add(melreq_stats::CACHE_LINE_BYTES);
        match req.kind {
            AccessKind::Read => {
                self.stats.reads_served.inc();
                self.stats.read_latency[req.core.index()]
                    .record_span(req.arrival, service.data_ready);
                self.completions.push(Reverse(Completion {
                    at: service.data_ready,
                    id: req.id,
                    core: req.core,
                    addr: req.addr,
                }));
            }
            AccessKind::Write => {
                self.stats.writes_served.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use melreq_dram::DramSystem;

    fn controller(kind: PolicyKind, cores: usize) -> MemoryController {
        let me = vec![1.0; cores];
        MemoryController::new(
            ControllerConfig::paper(),
            DramSystem::paper(),
            kind.build(&me, cores, 1),
            kind.read_first(),
            cores,
        )
    }

    /// Run the controller forward until `id` completes, returning the
    /// completion cycle.
    fn run_until_complete(c: &mut MemoryController, id: ReqId, limit: Cycle) -> Cycle {
        for now in 0..limit {
            c.tick(now);
            if let Some((done, _, _)) = c.pop_completed(now) {
                assert_eq!(done, id);
                return now;
            }
        }
        panic!("request did not complete within {limit} cycles");
    }

    #[test]
    fn single_read_completes_with_expected_latency() {
        let mut c = controller(PolicyKind::HfRf, 1);
        let id = c.submit(CoreId(0), 0x40, AccessKind::Read, 0);
        let done = run_until_complete(&mut c, id, 1000);
        // Overhead 48 (eligibility) + tRCD 40 + tCL 40 + burst 16 = 144.
        assert_eq!(done, 144);
        assert_eq!(c.stats().reads_served.get(), 1);
        assert!((c.stats().mean_read_latency() - 144.0).abs() < 1e-9);
    }

    #[test]
    fn writes_complete_silently() {
        let mut c = controller(PolicyKind::HfRf, 1);
        c.submit(CoreId(0), 0x40, AccessKind::Write, 0);
        for now in 0..500 {
            c.tick(now);
            assert!(c.pop_completed(now).is_none());
        }
        assert_eq!(c.stats().writes_served.get(), 1);
        assert!(c.is_idle());
    }

    #[test]
    fn read_bypasses_older_write() {
        let mut c = controller(PolicyKind::HfRf, 1);
        // Same channel for both (channel of addr 0x40 and 0x140 differ —
        // use stride 2*64 to stay on one channel).
        let w = c.submit(CoreId(0), 0x00, AccessKind::Write, 0);
        let r = c.submit(CoreId(0), 0x100, AccessKind::Read, 0);
        assert!(w < r);
        // The read must be granted first.
        for now in 0..2000 {
            c.tick(now);
            if let Some((id, _, _)) = c.pop_completed(now) {
                assert_eq!(id, r);
                break;
            }
        }
        assert_eq!(c.stats().reads_served.get(), 1);
    }

    #[test]
    fn fcfs_does_not_bypass() {
        let mut c = controller(PolicyKind::Fcfs, 1);
        // 0x00000 and 0x10000 map to channel 0, bank 0, rows 0 and 1: the
        // older write must serialize before the read, including its
        // write-recovery and precharge.
        let _w = c.submit(CoreId(0), 0x00000, AccessKind::Write, 0);
        let r = c.submit(CoreId(0), 0x10000, AccessKind::Read, 0);
        let done = run_until_complete(&mut c, r, 5000);
        // Write: grant at 48, data at 48+96=144, bank blocked until
        // 144+48+40=232; read grant then costs 96 more.
        assert!(done > 300, "read completed too early ({done}) for FCFS");
    }

    #[test]
    fn drain_mode_hysteresis() {
        let mut c = controller(PolicyKind::HfRf, 1);
        // Fill with 32 writes to trigger draining.
        for i in 0..32 {
            c.submit(CoreId(0), i * 0x40, AccessKind::Write, 0);
        }
        assert!(!c.is_draining());
        c.tick(0); // updates drain state before granting
        assert!(c.is_draining());
        assert_eq!(c.stats().drain_entries.get(), 1);
        // Run until writes fall to the stop threshold.
        let mut now = 1;
        while c.is_draining() {
            c.tick(now);
            now += 1;
            assert!(now < 100_000, "drain never stopped");
        }
        assert!(c.queue.total_writes() as usize <= 16);
    }

    #[test]
    fn buffer_backpressure() {
        let mut c = controller(PolicyKind::HfRf, 1);
        for i in 0..64 {
            assert!(c.can_accept());
            c.submit(CoreId(0), i * 0x40, AccessKind::Read, 0);
        }
        assert!(!c.can_accept());
    }

    #[test]
    fn per_core_latency_is_tracked_separately() {
        let mut c = controller(PolicyKind::HfRf, 2);
        let a = c.submit(CoreId(0), 0x00, AccessKind::Read, 0);
        let b = c.submit(CoreId(1), 0x40, AccessKind::Read, 0);
        let mut seen = 0;
        for now in 0..2000 {
            c.tick(now);
            while let Some((id, core, _)) = c.pop_completed(now) {
                if id == a {
                    assert_eq!(core, CoreId(0));
                }
                if id == b {
                    assert_eq!(core, CoreId(1));
                }
                seen += 1;
            }
            if seen == 2 {
                break;
            }
        }
        assert_eq!(seen, 2);
        assert_eq!(c.stats().read_latency[0].count(), 1);
        assert_eq!(c.stats().read_latency[1].count(), 1);
    }

    #[test]
    fn row_hits_are_granted_first_under_hfrf() {
        let mut c = controller(PolicyKind::HfRf, 1);
        // a and b share channel 0 / bank 0 / row 0 (column stride is
        // 0x400 = channels×banks lines); x targets row 1 of the same bank.
        let a = c.submit(CoreId(0), 0x00000, AccessKind::Read, 0);
        let x = c.submit(CoreId(0), 0x10000, AccessKind::Read, 0);
        let b = c.submit(CoreId(0), 0x00400, AccessKind::Read, 0);
        let mut order = Vec::new();
        for now in 0..5000 {
            c.tick(now);
            while let Some((id, _, _)) = c.pop_completed(now) {
                order.push(id);
            }
            if order.len() == 3 {
                break;
            }
        }
        // a first (oldest); then b (row hit beats older x); then x.
        assert_eq!(order, vec![a, b, x]);
        assert!(c.stats().grant_row_hits.get() >= 1);
    }

    #[test]
    fn me_lreq_prefers_efficient_core() {
        // Core 0: ME 1 (streaming hog), core 1: ME 100 (efficient).
        let me = [1.0, 100.0];
        let mut c = MemoryController::new(
            ControllerConfig::paper(),
            DramSystem::paper(),
            PolicyKind::MeLreq.build(&me, 2, 1),
            true,
            2,
        );
        // Both cores have a request on the same bank, same age.
        let _hog = c.submit(CoreId(0), 0x0000, AccessKind::Read, 0);
        let eff = c.submit(CoreId(1), 0x0100, AccessKind::Read, 0);
        let mut first = None;
        for now in 0..5000 {
            c.tick(now);
            if let Some((id, _, _)) = c.pop_completed(now) {
                first = Some(id);
                break;
            }
        }
        assert_eq!(first, Some(eff), "high-ME core should be served first");
    }

    #[test]
    fn open_page_leaves_rows_open() {
        let me = [1.0];
        let mut c = MemoryController::new(
            ControllerConfig::paper_open_page(),
            DramSystem::paper(),
            PolicyKind::HfRf.build(&me, 1, 1),
            true,
            1,
        );
        let id = c.submit(CoreId(0), 0x0000, AccessKind::Read, 0);
        let _ = run_until_complete(&mut c, id, 1000);
        // Row 0 of channel 0/bank 0 must still be open even though no
        // other request targets it.
        let loc = c.dram().decode(0x0000);
        assert!(c.dram().is_row_hit(&loc), "open-page must keep the row open");
        // A second access to the same row is now a hit.
        let id2 = c.submit(CoreId(0), 0x0400, AccessKind::Read, 500);
        let _ = run_until_complete(&mut c, id2, 2000);
        assert_eq!(c.stats().grant_row_hits.get(), 1);
    }

    #[test]
    fn close_page_closes_unwanted_rows() {
        let mut c = controller(PolicyKind::HfRf, 1);
        let id = c.submit(CoreId(0), 0x0000, AccessKind::Read, 0);
        let _ = run_until_complete(&mut c, id, 1000);
        let loc = c.dram().decode(0x0000);
        assert!(!c.dram().is_row_hit(&loc), "close-page must auto-precharge");
    }

    #[test]
    fn next_completion_skips_idle_work() {
        let mut c = controller(PolicyKind::HfRf, 1);
        assert_eq!(c.next_completion_at(), None);
        c.submit(CoreId(0), 0x40, AccessKind::Read, 0);
        for now in 0..200 {
            c.tick(now);
            if let Some(at) = c.next_completion_at() {
                assert!(at >= now);
                return;
            }
        }
        panic!("no completion scheduled");
    }
}
