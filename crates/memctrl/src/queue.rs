//! The controller's shared request buffer.
//!
//! The paper's controller (Section 3.2, Figure 1) keeps "a read request
//! queue and a write request queue, plus two counters for the number of
//! outstanding read and write requests for each core", all sharing one
//! M-entry buffer (M = 64 in Table 1). This module models that structure
//! as a single vector with per-kind, per-core counters — the scheduling
//! policies only ever observe the counters and the request fields, so the
//! physical split into two queues is immaterial.

use crate::request::{MemRequest, ReqId};
use melreq_dram::Location;
use melreq_stats::types::CoreId;

/// Shared request buffer with per-core occupancy counters.
#[derive(Debug, Clone)]
pub struct RequestQueue {
    entries: Vec<MemRequest>,
    capacity: usize,
    pending_reads: Vec<u32>,
    pending_writes: Vec<u32>,
}

impl RequestQueue {
    /// An empty buffer of `capacity` entries serving `cores` cores.
    pub fn new(capacity: usize, cores: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(cores > 0, "need at least one core");
        RequestQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
            pending_reads: vec![0; cores],
            pending_writes: vec![0; cores],
        }
    }

    /// Buffer capacity (M in Figure 1).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when another request can be accepted.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Number of queued read requests across all cores.
    pub fn total_reads(&self) -> u32 {
        self.pending_reads.iter().sum()
    }

    /// Number of queued write requests across all cores.
    pub fn total_writes(&self) -> u32 {
        self.pending_writes.iter().sum()
    }

    /// Pending read count of one core (the LREQ / ME-LREQ input).
    pub fn pending_reads(&self, core: CoreId) -> u32 {
        self.pending_reads[core.index()]
    }

    /// Pending write count of one core.
    pub fn pending_writes(&self, core: CoreId) -> u32 {
        self.pending_writes[core.index()]
    }

    /// Per-core pending read counts, indexed by core.
    pub fn pending_reads_all(&self) -> &[u32] {
        &self.pending_reads
    }

    /// Append a request.
    ///
    /// # Panics
    /// Panics if the buffer is full (callers must check
    /// [`RequestQueue::has_space`] — the cache hierarchy models
    /// back-pressure by stalling on a full buffer).
    pub fn push(&mut self, req: MemRequest) {
        assert!(self.has_space(), "request buffer overflow");
        match req.kind {
            k if k.is_read() => self.pending_reads[req.core.index()] += 1,
            _ => self.pending_writes[req.core.index()] += 1,
        }
        self.entries.push(req);
    }

    /// Remove and return the request with `id`.
    ///
    /// # Panics
    /// Panics if no such request is queued.
    pub fn remove(&mut self, id: ReqId) -> MemRequest {
        let pos = self.entries.iter().position(|r| r.id == id).expect("request not in queue");
        let req = self.entries.swap_remove(pos);
        if req.is_read() {
            self.pending_reads[req.core.index()] -= 1;
        } else {
            self.pending_writes[req.core.index()] -= 1;
        }
        req
    }

    /// Iterate over queued requests (unordered; ids give arrival order).
    pub fn iter(&self) -> impl Iterator<Item = &MemRequest> {
        self.entries.iter()
    }

    /// Whether any queued request other than `excluding` targets the same
    /// channel/bank/row as `loc` — the controller's close-page signal: the
    /// row is kept open only while this returns true.
    pub fn has_same_row_pending(&self, loc: &Location, excluding: ReqId) -> bool {
        self.entries.iter().any(|r| r.id != excluding && r.loc.same_row(loc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use melreq_dram::DramGeometry;
    use melreq_stats::types::{AccessKind, Cycle};

    fn req(id: u64, core: u16, addr: u64, kind: AccessKind, arrival: Cycle) -> MemRequest {
        let g = DramGeometry::paper();
        MemRequest { id: ReqId(id), core: CoreId(core), addr, loc: g.decode(addr), kind, arrival }
    }

    #[test]
    fn push_updates_counters() {
        let mut q = RequestQueue::new(8, 2);
        q.push(req(0, 0, 0x00, AccessKind::Read, 0));
        q.push(req(1, 0, 0x40, AccessKind::Read, 1));
        q.push(req(2, 1, 0x80, AccessKind::Write, 2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pending_reads(CoreId(0)), 2);
        assert_eq!(q.pending_reads(CoreId(1)), 0);
        assert_eq!(q.pending_writes(CoreId(1)), 1);
        assert_eq!(q.total_reads(), 2);
        assert_eq!(q.total_writes(), 1);
    }

    #[test]
    fn remove_restores_counters() {
        let mut q = RequestQueue::new(8, 2);
        q.push(req(0, 0, 0x00, AccessKind::Read, 0));
        q.push(req(1, 1, 0x40, AccessKind::Write, 0));
        let r = q.remove(ReqId(0));
        assert_eq!(r.id, ReqId(0));
        assert_eq!(q.pending_reads(CoreId(0)), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut q = RequestQueue::new(2, 1);
        q.push(req(0, 0, 0x00, AccessKind::Read, 0));
        assert!(q.has_space());
        q.push(req(1, 0, 0x40, AccessKind::Read, 0));
        assert!(!q.has_space());
    }

    #[test]
    #[should_panic(expected = "request buffer overflow")]
    fn overflow_panics() {
        let mut q = RequestQueue::new(1, 1);
        q.push(req(0, 0, 0x00, AccessKind::Read, 0));
        q.push(req(1, 0, 0x40, AccessKind::Read, 0));
    }

    #[test]
    #[should_panic(expected = "request not in queue")]
    fn remove_missing_panics() {
        let mut q = RequestQueue::new(2, 1);
        q.remove(ReqId(9));
    }

    #[test]
    fn same_row_detection() {
        let g = DramGeometry::paper();
        let mut q = RequestQueue::new(8, 1);
        // Two addresses in the same row: stride channels*banks lines.
        let a = 0u64;
        let b = 2 * 8 * 64u64;
        assert!(g.decode(a).same_row(&g.decode(b)));
        q.push(req(0, 0, a, AccessKind::Read, 0));
        q.push(req(1, 0, b, AccessKind::Read, 0));
        let loc = g.decode(a);
        assert!(q.has_same_row_pending(&loc, ReqId(0)));
        q.remove(ReqId(1));
        assert!(!q.has_same_row_pending(&loc, ReqId(0)));
    }

    #[test]
    fn iter_sees_all() {
        let mut q = RequestQueue::new(8, 1);
        q.push(req(0, 0, 0x00, AccessKind::Read, 0));
        q.push(req(1, 0, 0x40, AccessKind::Write, 0));
        assert_eq!(q.iter().count(), 2);
    }
}
