//! The controller's shared request buffer.
//!
//! The paper's controller (Section 3.2, Figure 1) keeps "a read request
//! queue and a write request queue, plus two counters for the number of
//! outstanding read and write requests for each core", all sharing one
//! M-entry buffer (M = 64 in Table 1). This module models that structure
//! as a single vector with per-kind, per-core counters — the scheduling
//! policies only ever observe the counters and the request fields, so the
//! physical split into two queues is immaterial.
//!
//! In addition to the flat vector, the buffer maintains one position list
//! per DRAM channel so the controller's per-channel candidate scan walks
//! only that channel's requests instead of re-filtering the whole buffer
//! (`try_grant` used to be O(channels × queue) per cycle). The lists are
//! kept sorted by buffer position, which makes their iteration order
//! exactly the flat vector's order restricted to the channel — policies
//! with order-sensitive tie-breaking (ME-LREQ's seeded RNG) therefore see
//! the identical candidate sequence as a full rescan would produce.

use crate::request::{MemRequest, ReqId};
use melreq_dram::Location;
use melreq_stats::types::{CoreId, Cycle};

/// Shared request buffer with per-core occupancy counters and per-channel
/// position indices.
#[derive(Debug, Clone)]
pub struct RequestQueue {
    entries: Vec<MemRequest>,
    capacity: usize, // melreq-allow(S01): construction-time bound; load_state validates against it
    pending_reads: Vec<u32>, // melreq-allow(S01): recomputed by load_state's push replay
    pending_writes: Vec<u32>, // melreq-allow(S01): recomputed by load_state's push replay
    /// Positions into `entries` per channel, sorted ascending (see module
    /// docs: sortedness preserves the flat iteration order per channel).
    by_channel: Vec<Vec<usize>>, // melreq-allow(S01): recomputed by load_state's push replay
}

impl RequestQueue {
    /// An empty buffer of `capacity` entries serving `cores` cores over
    /// `channels` DRAM channels.
    pub fn new(capacity: usize, cores: usize, channels: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(cores > 0, "need at least one core");
        assert!(channels > 0, "need at least one channel");
        RequestQueue {
            entries: Vec::with_capacity(capacity),
            capacity,
            pending_reads: vec![0; cores],
            pending_writes: vec![0; cores],
            by_channel: vec![Vec::with_capacity(capacity); channels],
        }
    }

    /// Buffer capacity (M in Figure 1).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when another request can be accepted.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Number of queued read requests across all cores.
    pub fn total_reads(&self) -> u32 {
        self.pending_reads.iter().sum()
    }

    /// Number of queued write requests across all cores.
    pub fn total_writes(&self) -> u32 {
        self.pending_writes.iter().sum()
    }

    /// Pending read count of one core (the LREQ / ME-LREQ input).
    pub fn pending_reads(&self, core: CoreId) -> u32 {
        self.pending_reads[core.index()]
    }

    /// Pending write count of one core.
    pub fn pending_writes(&self, core: CoreId) -> u32 {
        self.pending_writes[core.index()]
    }

    /// Per-core pending read counts, indexed by core.
    pub fn pending_reads_all(&self) -> &[u32] {
        &self.pending_reads
    }

    /// Append a request.
    ///
    /// # Panics
    /// Panics if the buffer is full (callers must check
    /// [`RequestQueue::has_space`] — the cache hierarchy models
    /// back-pressure by stalling on a full buffer).
    pub fn push(&mut self, req: MemRequest) {
        assert!(self.has_space(), "request buffer overflow");
        match req.kind {
            k if k.is_read() => self.pending_reads[req.core.index()] += 1,
            _ => self.pending_writes[req.core.index()] += 1,
        }
        // The new position is the largest so far: appending keeps the
        // channel list sorted.
        self.by_channel[req.loc.channel].push(self.entries.len());
        self.entries.push(req);
    }

    /// Remove and return the request with `id`.
    ///
    /// # Panics
    /// Panics if no such request is queued.
    pub fn remove(&mut self, id: ReqId) -> MemRequest {
        let pos = self.entries.iter().position(|r| r.id == id).expect("request not in queue");
        self.remove_at(pos)
    }

    /// Remove and return the request at buffer position `pos` (as reported
    /// by [`RequestQueue::channel_positions`]). O(queue) worst-case for
    /// the index fix-up, O(1) amortized data movement.
    pub fn remove_at(&mut self, pos: usize) -> MemRequest {
        let ch = self.entries[pos].loc.channel;
        let i = self.by_channel[ch].binary_search(&pos).expect("position index out of sync");
        self.by_channel[ch].remove(i);
        // `swap_remove` moves the last entry into `pos`: re-home its
        // position-index entry (it was the maximum, so it sits at the end
        // of its channel list) to the new, smaller position.
        let last = self.entries.len() - 1;
        if pos != last {
            let mover_ch = self.entries[last].loc.channel;
            let list = &mut self.by_channel[mover_ch];
            debug_assert_eq!(list.last(), Some(&last), "moved entry must be the channel maximum");
            list.pop();
            let j = list.binary_search(&pos).expect_err("position occupied twice");
            list.insert(j, pos);
        }
        let req = self.entries.swap_remove(pos);
        if req.is_read() {
            self.pending_reads[req.core.index()] -= 1;
        } else {
            self.pending_writes[req.core.index()] -= 1;
        }
        req
    }

    /// Buffer positions of the requests on `channel`, in buffer order
    /// (ascending position — the same relative order a full scan of the
    /// buffer filtered to the channel would visit).
    pub fn channel_positions(&self, channel: usize) -> &[usize] {
        &self.by_channel[channel]
    }

    /// The request at buffer position `pos`.
    pub fn at(&self, pos: usize) -> &MemRequest {
        &self.entries[pos]
    }

    /// Iterate over queued requests (unordered; ids give arrival order).
    pub fn iter(&self) -> impl Iterator<Item = &MemRequest> {
        self.entries.iter()
    }

    /// Earliest cycle any queued request could clear the controller
    /// pipeline (`arrival + overhead`) *and* find its bank ready, or
    /// `None` when the queue is empty. A conservative lower bound on the
    /// next grant cycle: `ready_at` can move later (refresh), never
    /// earlier, and a request passing both filters is always granted.
    /// Short-circuits to `now` — once some request is already eligible
    /// the exact minimum is irrelevant to the caller, and returning `now`
    /// itself keeps the result independent of scan order.
    ///
    /// `bank_ready` maps a channel index to that channel's dense per-bank
    /// ready-horizon slice (index = bank), fetched once per channel so the
    /// inner scan is flat slice indexing rather than a per-request
    /// callback into the DRAM model.
    pub fn next_candidate_at<'a>(
        &self,
        now: Cycle,
        overhead: Cycle,
        bank_ready: impl Fn(usize) -> &'a [Cycle],
    ) -> Option<Cycle> {
        let mut bound: Option<Cycle> = None;
        for (ch, positions) in self.by_channel.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let ready = bank_ready(ch);
            for &p in positions {
                let r = &self.entries[p];
                let t = (r.arrival + overhead).max(ready[r.loc.bank]);
                if t <= now {
                    return Some(now);
                }
                bound = Some(bound.map_or(t, |b| b.min(t)));
            }
        }
        bound
    }

    /// Serialize the queued requests. Per-core counters and per-channel
    /// position lists are derived data and are rebuilt on load.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.usize(self.entries.len());
        for r in &self.entries {
            enc.u64(r.id.0);
            enc.u16(r.core.0);
            enc.u64(r.addr);
            enc.usize(r.loc.channel);
            enc.usize(r.loc.bank);
            enc.u64(r.loc.row);
            enc.u32(r.loc.column);
            enc.bool(r.kind.is_read());
            enc.u64(r.arrival);
        }
    }

    /// Restore state written by [`RequestQueue::save_state`] into a queue
    /// with the same capacity / core count / channel count, rebuilding the
    /// occupancy counters and position indices.
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        let n = dec.usize()?;
        if n > self.capacity {
            return Err(melreq_snap::SnapError::Invalid("queue entries exceed capacity"));
        }
        self.entries.clear();
        self.pending_reads.iter_mut().for_each(|c| *c = 0);
        self.pending_writes.iter_mut().for_each(|c| *c = 0);
        self.by_channel.iter_mut().for_each(Vec::clear);
        for _ in 0..n {
            let id = ReqId(dec.u64()?);
            let core = CoreId(dec.u16()?);
            let addr = dec.u64()?;
            let loc = Location {
                channel: dec.usize()?,
                bank: dec.usize()?,
                row: dec.u64()?,
                column: dec.u32()?,
            };
            let kind = if dec.bool()? {
                melreq_stats::types::AccessKind::Read
            } else {
                melreq_stats::types::AccessKind::Write
            };
            let arrival = dec.u64()?;
            if core.index() >= self.pending_reads.len() || loc.channel >= self.by_channel.len() {
                return Err(melreq_snap::SnapError::Invalid("request indices out of range"));
            }
            self.push(MemRequest { id, core, addr, loc, kind, arrival });
        }
        Ok(())
    }

    /// Whether any queued request other than `excluding` targets the same
    /// channel/bank/row as `loc` — the controller's close-page signal: the
    /// row is kept open only while this returns true.
    pub fn has_same_row_pending(&self, loc: &Location, excluding: ReqId) -> bool {
        self.by_channel[loc.channel]
            .iter()
            .any(|&p| self.entries[p].id != excluding && self.entries[p].loc.same_row(loc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use melreq_dram::DramGeometry;
    use melreq_stats::types::{AccessKind, Cycle};

    fn req(id: u64, core: u16, addr: u64, kind: AccessKind, arrival: Cycle) -> MemRequest {
        let g = DramGeometry::paper();
        MemRequest { id: ReqId(id), core: CoreId(core), addr, loc: g.decode(addr), kind, arrival }
    }

    /// The position index must stay consistent with the flat vector:
    /// sorted, disjoint, covering, channel-correct.
    fn check_index(q: &RequestQueue) {
        let mut seen = vec![false; q.len()];
        for (ch, list) in q.by_channel.iter().enumerate() {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "channel {ch} list unsorted: {list:?}");
            for &p in list {
                assert_eq!(q.entries[p].loc.channel, ch);
                assert!(!seen[p], "position {p} indexed twice");
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every entry must be indexed");
    }

    #[test]
    fn push_updates_counters() {
        let mut q = RequestQueue::new(8, 2, 2);
        q.push(req(0, 0, 0x00, AccessKind::Read, 0));
        q.push(req(1, 0, 0x40, AccessKind::Read, 1));
        q.push(req(2, 1, 0x80, AccessKind::Write, 2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pending_reads(CoreId(0)), 2);
        assert_eq!(q.pending_reads(CoreId(1)), 0);
        assert_eq!(q.pending_writes(CoreId(1)), 1);
        assert_eq!(q.total_reads(), 2);
        assert_eq!(q.total_writes(), 1);
        check_index(&q);
    }

    #[test]
    fn remove_restores_counters() {
        let mut q = RequestQueue::new(8, 2, 2);
        q.push(req(0, 0, 0x00, AccessKind::Read, 0));
        q.push(req(1, 1, 0x40, AccessKind::Write, 0));
        let r = q.remove(ReqId(0));
        assert_eq!(r.id, ReqId(0));
        assert_eq!(q.pending_reads(CoreId(0)), 0);
        assert_eq!(q.len(), 1);
        check_index(&q);
    }

    #[test]
    fn capacity_enforced() {
        let mut q = RequestQueue::new(2, 1, 2);
        q.push(req(0, 0, 0x00, AccessKind::Read, 0));
        assert!(q.has_space());
        q.push(req(1, 0, 0x40, AccessKind::Read, 0));
        assert!(!q.has_space());
    }

    #[test]
    #[should_panic(expected = "request buffer overflow")]
    fn overflow_panics() {
        let mut q = RequestQueue::new(1, 1, 2);
        q.push(req(0, 0, 0x00, AccessKind::Read, 0));
        q.push(req(1, 0, 0x40, AccessKind::Read, 0));
    }

    #[test]
    #[should_panic(expected = "request not in queue")]
    fn remove_missing_panics() {
        let mut q = RequestQueue::new(2, 1, 2);
        q.remove(ReqId(9));
    }

    #[test]
    fn same_row_detection() {
        let g = DramGeometry::paper();
        let mut q = RequestQueue::new(8, 1, 2);
        // Two addresses in the same row: stride channels*banks lines.
        let a = 0u64;
        let b = 2 * 8 * 64u64;
        assert!(g.decode(a).same_row(&g.decode(b)));
        q.push(req(0, 0, a, AccessKind::Read, 0));
        q.push(req(1, 0, b, AccessKind::Read, 0));
        let loc = g.decode(a);
        assert!(q.has_same_row_pending(&loc, ReqId(0)));
        q.remove(ReqId(1));
        assert!(!q.has_same_row_pending(&loc, ReqId(0)));
    }

    #[test]
    fn iter_sees_all() {
        let mut q = RequestQueue::new(8, 1, 2);
        q.push(req(0, 0, 0x00, AccessKind::Read, 0));
        q.push(req(1, 0, 0x40, AccessKind::Write, 0));
        assert_eq!(q.iter().count(), 2);
    }

    #[test]
    fn channel_lists_preserve_buffer_order_under_churn() {
        // Interleave pushes and removals across both channels and verify
        // at each step that channel_positions matches a brute-force scan
        // of the flat vector.
        let mut q = RequestQueue::new(16, 1, 2);
        let mut next_id = 0u64;
        let mut push = |q: &mut RequestQueue, addr: u64| {
            q.push(req(next_id, 0, addr, AccessKind::Read, 0));
            next_id += 1;
        };
        // Addresses alternate channels (line stride flips the channel bit).
        for i in 0..10u64 {
            push(&mut q, i * 64);
        }
        let brute = |q: &RequestQueue, ch: usize| -> Vec<u64> {
            q.iter().enumerate().filter(|(_, r)| r.loc.channel == ch).map(|(_, r)| r.id.0).collect()
        };
        let listed = |q: &RequestQueue, ch: usize| -> Vec<u64> {
            q.channel_positions(ch).iter().map(|&p| q.at(p).id.0).collect()
        };
        for victim in [3u64, 0, 7, 4] {
            q.remove(ReqId(victim));
            check_index(&q);
            for ch in 0..2 {
                assert_eq!(listed(&q, ch), brute(&q, ch), "channel {ch} order diverged");
            }
        }
    }

    #[test]
    fn next_candidate_lower_bound() {
        let ready_now = [0u64; 8];
        let ready_late = [400u64; 8];
        let mut q = RequestQueue::new(8, 1, 2);
        assert_eq!(q.next_candidate_at(0, 48, |_| &ready_now[..]), None);
        q.push(req(0, 0, 0x00, AccessKind::Read, 10));
        q.push(req(1, 0, 0x40, AccessKind::Read, 2));
        // Banks always ready: bound is the earliest arrival + overhead.
        assert_eq!(q.next_candidate_at(0, 48, |_| &ready_now[..]), Some(50));
        // A late channel pushes its requests' bounds later.
        assert_eq!(
            q.next_candidate_at(0, 48, |ch| if ch == 1 { &ready_late[..] } else { &ready_now[..] }),
            Some(58)
        );
        // Once a request is eligible the scan short-circuits to `now`
        // itself, independent of which request it found first.
        assert_eq!(q.next_candidate_at(60, 48, |_| &ready_now[..]), Some(60));
    }
}
