//! The workload priority table of Figure 1.
//!
//! ME-LREQ's priority `ME[i] / PendingRead[i]` involves a division the
//! controller cannot afford at scheduling time, so the paper precomputes
//! the quotient for every possible pending-read count and stores it —
//! scaled and rounded to 10 bits — in a small per-core SRAM table:
//! "the maximum number of pending memory requests per thread is 64, and
//! each table entry stores a 10-bit priority information. The total
//! number of bits in the tables is only N × 64 × 10" (Section 3.2).
//!
//! This module reproduces that hardware exactly: [`PriorityTable::new`]
//! plays the role of the OS initializing the tables "at the time of
//! program loading", and [`PriorityTable::lookup`] is the parallel table
//! read performed at each scheduling decision.

use melreq_stats::fixedpoint::{PriorityFixed, PRIORITY_MAX};
use melreq_stats::types::CoreId;

/// Maximum pending requests per thread the table covers (Section 3.2).
pub const MAX_PENDING: u32 = 64;

/// Per-core precomputed quantization of `ME[i]/p` for `p ∈ 1..=64`,
/// 10-bit each.
#[derive(Debug, Clone)]
pub struct PriorityTable {
    /// `tables[core][p-1]` = quantized priority with `p` pending reads.
    tables: Vec<[PriorityFixed; MAX_PENDING as usize]>,
    /// The log-domain scale factor applied before rounding.
    scale: f64,
}

impl PriorityTable {
    /// Build the tables for a workload whose per-core memory-efficiency
    /// values are `me` (Equation 1, profiled off-line).
    ///
    /// The paper only says the quotients are "scaled approximately and
    /// then stored". Profiled ME spans ~5 decades (Table 2: 1 … 16276),
    /// so a *linear* 10-bit scale would quantize every low-ME core to
    /// zero and erase the least-request signal among them. We therefore
    /// quantize in the **log domain**: the scheduler only ever *compares*
    /// table entries, and any monotone mapping preserves the argmax, so
    /// log-compression is semantically transparent while spreading the
    /// 1024 code points evenly across the dynamic range (each step ≈
    /// `range_bits/1023` in log₂ — ratios differing by more than a few
    /// percent stay distinguishable).
    pub fn new(me: &[f64]) -> Self {
        assert!(!me.is_empty(), "need at least one core");
        // Dynamic range of ME/p over all cores and pending counts.
        let finite = |v: f64| v.is_finite() && v > 0.0;
        let lmax = me
            .iter()
            .copied()
            .filter(|&v| finite(v))
            .fold(f64::NEG_INFINITY, |a, v| a.max(v.log2()));
        let lmin = me
            .iter()
            .copied()
            .filter(|&v| finite(v))
            .fold(f64::INFINITY, |a, v| a.min((v / MAX_PENDING as f64).log2()));
        let scale =
            if lmax.is_finite() && lmax > lmin { PRIORITY_MAX as f64 / (lmax - lmin) } else { 1.0 };
        let quant = |v: f64| -> PriorityFixed {
            if !v.is_finite() {
                return if v > 0.0 { PriorityFixed::MAX } else { PriorityFixed::ZERO };
            }
            if v <= 0.0 || !lmax.is_finite() {
                return PriorityFixed::ZERO;
            }
            let raw = ((v.log2() - lmin) * scale).round().clamp(0.0, PRIORITY_MAX as f64);
            // melreq-allow(A01): clamped to [0, PRIORITY_MAX] above; float casts saturate
            PriorityFixed::from_raw(raw as u16)
        };
        let tables = me
            .iter()
            .map(|&m| {
                let mut t = [PriorityFixed::ZERO; MAX_PENDING as usize];
                for (i, entry) in t.iter_mut().enumerate() {
                    let pending = (i + 1) as f64;
                    *entry = quant(m / pending);
                }
                t
            })
            .collect();
        PriorityTable { tables, scale }
    }

    /// Build the tables with **linear** quantization instead of the
    /// default log-domain mapping: `entry = round(scale · ME/p)` with the
    /// scale chosen so the largest finite `ME/1` saturates 10 bits.
    ///
    /// This is the most literal reading of the paper's "scaled
    /// approximately" and is provided for the ablation study: with a
    /// wide ME dynamic range it quantizes every low-ME core to zero,
    /// erasing the least-request signal among them (see DESIGN.md).
    pub fn new_linear(me: &[f64]) -> Self {
        use melreq_stats::fixedpoint::{auto_scale, quantize};
        assert!(!me.is_empty(), "need at least one core");
        let scale = auto_scale(me.iter().copied());
        let tables = me
            .iter()
            .map(|&m| {
                let mut t = [PriorityFixed::ZERO; MAX_PENDING as usize];
                for (i, entry) in t.iter_mut().enumerate() {
                    *entry = quantize(m / (i + 1) as f64, scale);
                }
                t
            })
            .collect();
        PriorityTable { tables, scale }
    }

    /// Number of per-core tables.
    pub fn cores(&self) -> usize {
        self.tables.len()
    }

    /// The scale factor in use.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The hardware table read: the quantized priority of `core` given its
    /// current pending-read count.
    ///
    /// A count of zero never reaches the comparator network (a core with
    /// no pending reads has nothing to schedule), and counts above 64
    /// clamp to the last entry, as a saturating hardware counter would.
    ///
    /// # Panics
    /// Panics (debug) when `pending_reads` is zero.
    #[inline]
    pub fn lookup(&self, core: CoreId, pending_reads: u32) -> PriorityFixed {
        debug_assert!(pending_reads > 0, "no reads pending — nothing to look up");
        let p = pending_reads.clamp(1, MAX_PENDING) as usize;
        self.tables[core.index()][p - 1]
    }

    /// Total storage the table occupies in hardware, in bits
    /// (N × 64 × 10 from Section 3.2) — used by tests/docs to confirm the
    /// model matches the paper's cost claim.
    pub fn storage_bits(&self) -> usize {
        self.cores() * MAX_PENDING as usize * 10
    }

    /// Serialize every table entry plus the scale factor. Entries are
    /// stored raw so both quantization modes (log-domain and linear)
    /// round-trip identically.
    pub fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.usize(self.tables.len());
        for t in &self.tables {
            for e in t {
                enc.u16(e.raw());
            }
        }
        enc.f64(self.scale);
    }

    /// Restore state written by [`PriorityTable::save_state`] into a
    /// table built for the same core count.
    pub fn load_state(
        &mut self,
        dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        let n = dec.usize()?;
        if n != self.tables.len() {
            return Err(melreq_snap::SnapError::Invalid("priority table core count mismatch"));
        }
        for t in &mut self.tables {
            for e in t.iter_mut() {
                *e = PriorityFixed::from_raw(dec.u16()?);
            }
        }
        self.scale = dec.f64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_core_table_is_2560_bits() {
        let t = PriorityTable::new(&[15.0, 2.0, 4.0, 1.0]);
        assert_eq!(t.storage_bits(), 4 * 64 * 10);
    }

    #[test]
    fn priority_decreases_with_pending_reads() {
        let t = PriorityTable::new(&[100.0]);
        let p1 = t.lookup(CoreId(0), 1);
        let p2 = t.lookup(CoreId(0), 2);
        let p64 = t.lookup(CoreId(0), 64);
        assert!(p1 > p2);
        assert!(p2 > p64);
    }

    #[test]
    fn higher_me_wins_at_equal_pending() {
        let t = PriorityTable::new(&[15.0, 2.0]);
        assert!(t.lookup(CoreId(0), 3) > t.lookup(CoreId(1), 3));
    }

    #[test]
    fn lreq_behaviour_at_equal_me() {
        // With equal ME the table degenerates to least-request order.
        let t = PriorityTable::new(&[10.0, 10.0]);
        assert!(t.lookup(CoreId(0), 1) > t.lookup(CoreId(1), 5));
    }

    #[test]
    fn pending_clamps_at_64() {
        let t = PriorityTable::new(&[100.0]);
        assert_eq!(t.lookup(CoreId(0), 64), t.lookup(CoreId(0), 1000));
    }

    #[test]
    fn max_me_saturates_top_entry() {
        let t = PriorityTable::new(&[50.0, 5.0]);
        assert_eq!(t.lookup(CoreId(0), 1).raw(), 1023);
    }

    #[test]
    fn infinite_me_is_handled() {
        // A program with ~zero bandwidth has effectively infinite ME; its
        // table saturates instead of poisoning the scale.
        let t = PriorityTable::new(&[f64::MAX / 2.0, 5.0]);
        assert_eq!(t.lookup(CoreId(0), 1).raw(), 1023);
        // The finite program still has non-trivial resolution... or at
        // least a valid entry.
        let _ = t.lookup(CoreId(1), 1);
    }

    #[test]
    fn quantization_can_tie_distinct_ratios() {
        // The 10-bit grid is coarse: very close ratios may collide. This
        // is the approximation the paper accepts ("scaled approximately").
        let t = PriorityTable::new(&[1000.0, 999.99]);
        assert_eq!(t.lookup(CoreId(0), 1), t.lookup(CoreId(1), 1));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "nothing to look up")]
    fn zero_pending_panics_in_debug() {
        let t = PriorityTable::new(&[1.0]);
        let _ = t.lookup(CoreId(0), 0);
    }

    #[test]
    fn linear_table_matches_literal_scaling() {
        let t = PriorityTable::new_linear(&[100.0, 50.0]);
        // scale = 1023/100: ME 100 at p=1 saturates, ME 50 at p=1 is half.
        assert_eq!(t.lookup(CoreId(0), 1).raw(), 1023);
        assert_eq!(t.lookup(CoreId(1), 1).raw(), 512);
        assert_eq!(t.lookup(CoreId(0), 2).raw(), 512);
    }

    #[test]
    fn linear_table_underflows_on_wide_ranges() {
        // The failure mode that motivates the log-domain default: with a
        // paper-scale dynamic range, every entry of the low-ME core
        // rounds to zero — the least-request signal is erased.
        let t = PriorityTable::new_linear(&[16276.0, 1.0]);
        assert_eq!(t.lookup(CoreId(1), 1).raw(), 0);
        assert_eq!(t.lookup(CoreId(1), 64).raw(), 0);
        // The log-domain table keeps them distinct.
        let t = PriorityTable::new(&[16276.0, 1.0]);
        assert!(t.lookup(CoreId(1), 1) > t.lookup(CoreId(1), 64));
    }
}
