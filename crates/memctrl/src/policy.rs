//! The scheduling policies evaluated in the paper (Sections 2, 3 and 5).
//!
//! A policy ranks the *candidate* requests — those already filtered by the
//! controller to be issuable this cycle and belonging to the class chosen
//! by the read-first / write-drain machinery — and picks one. Policies
//! therefore never see a request the DRAM could not start immediately, so
//! a high-priority request blocked on a busy bank never idles the channel.
//!
//! All core-aware policies order *cores* first (per Figure 1: "a set of
//! comparators is used to select the thread with the highest priority,
//! and then the first read request of the selected thread is scheduled")
//! and fall back to hit-first-then-oldest within the selected core, since
//! row-buffer hits are handled at the command level for every scheme
//! (Section 4.1). Writes, when the controller drains them, use plain
//! hit-first-then-oldest for every policy — the paper treats write order
//! as performance-neutral ("write requests usually have small performance
//! impact").

use crate::request::ReqId;
use crate::table::PriorityTable;
use melreq_stats::types::CoreId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A scheduling candidate: an issuable request of the selected class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Request id; ids are monotone in arrival order, so comparing ids
    /// compares ages.
    pub id: ReqId,
    /// Originating core.
    pub core: CoreId,
    /// Whether the request currently hits an open row buffer.
    pub row_hit: bool,
}

impl Candidate {
    /// Hit-first-then-oldest sort key (smaller = preferred).
    #[inline]
    fn hf_age_key(&self) -> (bool, ReqId) {
        (!self.row_hit, self.id)
    }
}

/// Pick the hit-first-then-oldest candidate among `cands`, optionally
/// restricted to one core. Returns an index into `cands`.
fn pick_hf_oldest(cands: &[Candidate], core: Option<CoreId>) -> usize {
    cands
        .iter()
        .enumerate()
        .filter(|(_, c)| core.is_none_or(|k| c.core == k))
        .min_by_key(|(_, c)| c.hf_age_key())
        .map(|(i, _)| i)
        .expect("pick called with no eligible candidate")
}

/// A memory-access scheduling policy.
///
/// `select` receives at least one candidate and the per-core pending read
/// counts (the controller's outstanding-read counters of Figure 1) and
/// returns the index of the chosen candidate.
pub trait SchedulerPolicy: std::fmt::Debug + Send {
    /// Display name used in reports (matches the paper's shorthand).
    fn name(&self) -> &'static str;

    /// Choose one candidate. `pending_reads[i]` is core *i*'s queued read
    /// count (≥ 1 for any core with a read candidate).
    fn select(&mut self, cands: &[Candidate], pending_reads: &[u32]) -> usize;

    /// Observe a grant (used by Round-Robin to advance its pointer).
    fn note_grant(&mut self, _granted: &Candidate) {}

    /// Construction parameters as `(key, value)` pairs. Parameterized
    /// policies (BLISS, TCM) override this so the controller can announce
    /// the exact configuration on the audit stream — external checkers
    /// replicate the decision rule from the name *plus* these values.
    /// Parameter-free policies keep the empty default, which also keeps
    /// their audit streams byte-identical to pre-registry runs.
    fn params(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Receive fresh per-core memory-efficiency estimates.
    ///
    /// This is the hook for the paper's *future work*: "online methods
    /// that can dynamically predict the memory efficiency of a program".
    /// ME-LREQ rebuilds its priority tables (the OS/hardware analogue:
    /// rewriting the SRAM tables at a phase boundary); ME-oblivious
    /// policies ignore it.
    fn update_profile(&mut self, _me: &[f64]) {}

    /// Serialize mutable scheduling state (RNG, rotation pointers,
    /// priority tables) into a system checkpoint. Stateless policies keep
    /// the no-op default; any policy carrying decision state that can be
    /// live inside a snapshotted window must override both methods, or
    /// restored runs will diverge from continued ones.
    fn save_state(&self, _enc: &mut melreq_snap::Enc) {}

    /// Restore state written by [`SchedulerPolicy::save_state`] into an
    /// identically constructed policy.
    fn load_state(
        &mut self,
        _dec: &mut melreq_snap::Dec<'_>,
    ) -> Result<(), melreq_snap::SnapError> {
        Ok(())
    }
}

/// First-come first-serve: strictly by arrival order (Section 2, "FCFS").
#[derive(Debug, Default, Clone)]
pub struct Fcfs;

impl SchedulerPolicy for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn select(&mut self, cands: &[Candidate], _pending: &[u32]) -> usize {
        cands.iter().enumerate().min_by_key(|(_, c)| c.id).map(|(i, _)| i).expect("no candidates")
    }
}

/// Hit-First with Read-First — the paper's baseline (HF-RF): row-buffer
/// hits before misses, oldest first; reads bypass writes at the
/// controller level.
#[derive(Debug, Default, Clone)]
pub struct HitFirst;

impl SchedulerPolicy for HitFirst {
    fn name(&self) -> &'static str {
        "HF-RF"
    }

    fn select(&mut self, cands: &[Candidate], _pending: &[u32]) -> usize {
        pick_hf_oldest(cands, None)
    }
}

/// Round-Robin over cores (Section 2, "RR"): serve the next core in
/// rotation that has an issuable request; hit-first-then-oldest within it.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    cores: usize, // melreq-allow(S01): construction topology, identical across snapshot peers
    next: usize,
}

impl RoundRobin {
    /// A rotation over `cores` cores starting at core 0.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        RoundRobin { cores, next: 0 }
    }
}

impl SchedulerPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn select(&mut self, cands: &[Candidate], _pending: &[u32]) -> usize {
        for off in 0..self.cores {
            let core = CoreId::from((self.next + off) % self.cores);
            if cands.iter().any(|c| c.core == core) {
                return pick_hf_oldest(cands, Some(core));
            }
        }
        unreachable!("select called with no candidates")
    }

    fn note_grant(&mut self, granted: &Candidate) {
        self.next = (granted.core.index() + 1) % self.cores;
    }

    fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.usize(self.next);
    }

    fn load_state(&mut self, dec: &mut melreq_snap::Dec<'_>) -> Result<(), melreq_snap::SnapError> {
        let next = dec.usize()?;
        if next >= self.cores {
            return Err(melreq_snap::SnapError::Invalid("round-robin pointer out of range"));
        }
        self.next = next;
        Ok(())
    }
}

/// Least-Request (Zhu & Zhang, HPCA'05): the core with the fewest pending
/// read requests wins; hit-first-then-oldest within it.
#[derive(Debug, Default, Clone)]
pub struct LeastRequest;

impl SchedulerPolicy for LeastRequest {
    fn name(&self) -> &'static str {
        "LREQ"
    }

    fn select(&mut self, cands: &[Candidate], pending: &[u32]) -> usize {
        let best_core = cands
            .iter()
            .map(|c| c.core)
            .min_by_key(|c| (pending[c.index()], c.index()))
            .expect("no candidates");
        pick_hf_oldest(cands, Some(best_core))
    }
}

/// A fixed core-priority ranking: the building block of the ME scheme and
/// the FIX-0123 / FIX-3210 straw-men of Figure 3.
#[derive(Debug, Clone)]
pub struct FixedPriority {
    /// `rank[core]` — 0 is the highest priority.
    rank: Vec<u32>,
    name: &'static str,
}

impl FixedPriority {
    /// Build from an explicit priority order: `order[0]` is the most
    /// favoured core. E.g. FIX-3210 is `from_order("FIX-3210", &[3,2,1,0])`.
    ///
    /// # Panics
    /// Panics unless `order` is a permutation of `0..order.len()`.
    pub fn from_order(name: &'static str, order: &[usize]) -> Self {
        let n = order.len();
        let mut rank = vec![u32::MAX; n];
        for (pos, &core) in order.iter().enumerate() {
            assert!(core < n, "core {core} out of range");
            assert!(rank[core] == u32::MAX, "core {core} listed twice");
            rank[core] = u32::try_from(pos).expect("priority order fits u32");
        }
        FixedPriority { rank, name }
    }

    /// The ME scheme (Section 5.1): fixed priority ordered by descending
    /// profiled memory efficiency. Ties keep the lower core id first.
    pub fn from_memory_efficiency(me: &[f64]) -> Self {
        let mut order: Vec<usize> = (0..me.len()).collect();
        order.sort_by(|&a, &b| {
            me[b].partial_cmp(&me[a]).expect("ME values must be comparable").then(a.cmp(&b))
        });
        let mut p = Self::from_order("ME", &order);
        p.name = "ME";
        p
    }

    /// The rank vector (`rank[core]`, 0 = highest).
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }
}

impl SchedulerPolicy for FixedPriority {
    fn name(&self) -> &'static str {
        self.name
    }

    fn select(&mut self, cands: &[Candidate], _pending: &[u32]) -> usize {
        let best_core = cands
            .iter()
            .map(|c| c.core)
            .min_by_key(|c| self.rank[c.index()])
            .expect("no candidates");
        pick_hf_oldest(cands, Some(best_core))
    }
}

/// **ME-LREQ** — the paper's contribution (Section 3.2).
///
/// Each scheduling decision reads the per-core hardware table entry
/// `P[i] = quantize(ME[i] / PendingRead[i])` for every core with a
/// candidate, in parallel; the highest value wins, ties are broken by a
/// (seeded) random pick among the tied cores, and the selected core's
/// requests are served hit-first-then-oldest.
#[derive(Debug)]
pub struct MeLreq {
    table: PriorityTable,
    rng: SmallRng,
}

impl MeLreq {
    /// Build from profiled memory-efficiency values and a tie-break seed.
    pub fn new(me: &[f64], seed: u64) -> Self {
        Self::with_table(PriorityTable::new(me), seed)
    }

    /// Build around an explicit priority table (used by the quantization
    /// ablation, which substitutes [`PriorityTable::new_linear`]).
    pub fn with_table(table: PriorityTable, seed: u64) -> Self {
        MeLreq { table, rng: SmallRng::seed_from_u64(seed) }
    }

    /// The underlying hardware table (for inspection/tests).
    pub fn table(&self) -> &PriorityTable {
        &self.table
    }
}

impl SchedulerPolicy for MeLreq {
    fn name(&self) -> &'static str {
        "ME-LREQ"
    }

    fn select(&mut self, cands: &[Candidate], pending: &[u32]) -> usize {
        // Parallel table read for every core that has a candidate.
        let mut best = None; // (priority, count_of_tied_cores)
        let mut tied: [u16; 64] = [0; 64];
        let mut tied_len = 0usize;
        for c in cands {
            let already_seen = tied[..tied_len].contains(&c.core.0);
            if already_seen {
                continue;
            }
            let p = self.table.lookup(c.core, pending[c.core.index()].max(1));
            match best {
                None => {
                    best = Some(p);
                    tied[0] = c.core.0;
                    tied_len = 1;
                }
                Some(b) if p > b => {
                    best = Some(p);
                    tied[0] = c.core.0;
                    tied_len = 1;
                }
                Some(b) if p == b => {
                    tied[tied_len] = c.core.0;
                    tied_len += 1;
                }
                _ => {}
            }
        }
        debug_assert!(tied_len > 0, "select called with no candidates");
        // "A tie of equal priority may be broken by a random selection."
        let chosen = if tied_len == 1 { tied[0] } else { tied[self.rng.gen_range(0..tied_len)] };
        pick_hf_oldest(cands, Some(CoreId(chosen)))
    }

    fn update_profile(&mut self, me: &[f64]) {
        assert_eq!(me.len(), self.table.cores(), "profile must cover all cores");
        self.table = PriorityTable::new(me);
    }

    fn save_state(&self, enc: &mut melreq_snap::Enc) {
        // The table is saved entry-by-entry (not as the ME vector it was
        // built from) so online-updated and ablation (linear-quantized)
        // tables restore exactly.
        self.table.save_state(enc);
        for w in self.rng.state() {
            enc.u64(w);
        }
    }

    fn load_state(&mut self, dec: &mut melreq_snap::Dec<'_>) -> Result<(), melreq_snap::SnapError> {
        self.table.load_state(dec)?;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = dec.u64()?;
        }
        self.rng = SmallRng::from_state(s);
        Ok(())
    }
}

/// Configuration-level identification of a policy; builds the boxed
/// implementation for a concrete workload.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// First-come first-serve, no read bypass.
    Fcfs,
    /// FCFS with reads bypassing writes.
    FcfsRf,
    /// Hit-First + Read-First (the paper's baseline).
    HfRf,
    /// Round-Robin over cores.
    RoundRobin,
    /// Least-Request.
    Lreq,
    /// Fixed priority by profiled memory efficiency.
    Me,
    /// The paper's contribution.
    MeLreq,
    /// ME-LREQ with **online** memory-efficiency estimation — the
    /// paper's stated future work. No off-line profile is needed: the
    /// system measures each core's committed instructions and DRAM bytes
    /// every `epoch_cycles` and refreshes the priority tables with an
    /// exponentially weighted estimate.
    MeLreqOnline {
        /// Re-estimation period in CPU cycles.
        epoch_cycles: u64,
    },
    /// Arbitrary fixed core priority (Figure 3's FIX-0123 / FIX-3210).
    Fixed {
        /// Report name (e.g. "FIX-3210").
        name: &'static str,
        /// Priority order; element 0 is the most favoured core.
        order: Vec<usize>,
    },
    /// Start-time fair queueing over memory service
    /// ([`crate::ext::FairQueueing`], Nesbit et al., MICRO'06-style).
    Fq,
    /// Stall-time-fairness heuristic ([`crate::ext::StallTimeFair`],
    /// Mutlu & Moscibroda, MICRO'07-style).
    Stf,
    /// BLISS blacklisting ([`crate::zoo::Bliss`], Subramanian et al.):
    /// cores granted too many consecutive requests are blacklisted until
    /// the next periodic clearing.
    Bliss {
        /// Consecutive grants at which a core is blacklisted.
        threshold: u32,
        /// Grants between blacklist clearings.
        clear_interval: u64,
    },
    /// TCM-style two-cluster scheduling ([`crate::zoo::TcmCluster`],
    /// Kim et al.-style): latency-sensitive cores (few reads per
    /// quantum) outrank bandwidth-sensitive ones, whose intra-cluster
    /// order is periodically shuffled.
    TcmCluster {
        /// Grants per clustering quantum.
        quantum: u64,
    },
}

impl PolicyKind {
    /// Whether the controller should let reads bypass writes. Only plain
    /// FCFS disables the bypass; every evaluated scheme keeps it
    /// (Section 4.1).
    pub fn read_first(&self) -> bool {
        !matches!(self, PolicyKind::Fcfs)
    }

    /// Display name matching the paper's shorthand.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::FcfsRf => "FCFS-RF",
            PolicyKind::HfRf => "HF-RF",
            PolicyKind::RoundRobin => "RR",
            PolicyKind::Lreq => "LREQ",
            PolicyKind::Me => "ME",
            PolicyKind::MeLreq => "ME-LREQ",
            PolicyKind::MeLreqOnline { .. } => "ME-LREQ-ON",
            PolicyKind::Fixed { name, .. } => name,
            PolicyKind::Fq => "FQ",
            PolicyKind::Stf => "STF",
            PolicyKind::Bliss { .. } => "BLISS",
            PolicyKind::TcmCluster { .. } => "TCM",
        }
    }

    /// Instantiate for a system of `cores` cores whose profiled
    /// memory-efficiency values are `me` (ignored by ME-oblivious
    /// policies); `seed` feeds ME-LREQ's tie-breaker.
    pub fn build(&self, me: &[f64], cores: usize, seed: u64) -> Box<dyn SchedulerPolicy> {
        assert!(me.len() == cores, "one ME value per core required");
        match self {
            PolicyKind::Fcfs | PolicyKind::FcfsRf => Box::new(Fcfs),
            PolicyKind::HfRf => Box::new(HitFirst),
            PolicyKind::RoundRobin => Box::new(RoundRobin::new(cores)),
            PolicyKind::Lreq => Box::new(LeastRequest),
            PolicyKind::Me => Box::new(FixedPriority::from_memory_efficiency(me)),
            PolicyKind::MeLreq => Box::new(MeLreq::new(me, seed)),
            // The online variant starts from a flat (uninformative)
            // profile; the system refreshes it at run time.
            PolicyKind::MeLreqOnline { .. } => Box::new(MeLreq::new(&vec![1.0; cores], seed)),
            PolicyKind::Fixed { name, order } => {
                assert_eq!(order.len(), cores, "priority order must cover all cores");
                Box::new(FixedPriority::from_order(name, order))
            }
            PolicyKind::Fq => Box::new(crate::ext::FairQueueing::new(cores)),
            PolicyKind::Stf => Box::new(crate::ext::StallTimeFair::new(cores)),
            PolicyKind::Bliss { threshold, clear_interval } => {
                Box::new(crate::zoo::Bliss::new(cores, *threshold, *clear_interval))
            }
            PolicyKind::TcmCluster { quantum } => {
                Box::new(crate::zoo::TcmCluster::new(cores, *quantum))
            }
        }
    }

    /// The five schemes compared in Figure 2, in the paper's order.
    pub fn figure2_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::HfRf,
            PolicyKind::Me,
            PolicyKind::RoundRobin,
            PolicyKind::Lreq,
            PolicyKind::MeLreq,
        ]
    }

    /// The four schemes compared in Figure 3 for `cores` cores: HF-RF, ME
    /// and the two straw-man fixed priorities.
    pub fn figure3_set(cores: usize) -> Vec<PolicyKind> {
        vec![
            PolicyKind::HfRf,
            PolicyKind::Me,
            PolicyKind::Fixed { name: "FIX-3210", order: (0..cores).rev().collect() },
            PolicyKind::Fixed { name: "FIX-0123", order: (0..cores).collect() },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u64, core: u16, hit: bool) -> Candidate {
        Candidate { id: ReqId(id), core: CoreId(core), row_hit: hit }
    }

    #[test]
    fn fcfs_picks_oldest_regardless_of_hits() {
        let mut p = Fcfs;
        let cands = [cand(5, 0, true), cand(2, 1, false), cand(9, 0, true)];
        assert_eq!(p.select(&cands, &[2, 1]), 1);
    }

    #[test]
    fn hit_first_prefers_hits_then_age() {
        let mut p = HitFirst;
        let cands = [cand(1, 0, false), cand(7, 1, true), cand(5, 1, true)];
        assert_eq!(p.select(&cands, &[1, 2]), 2);
        let cands = [cand(3, 0, false), cand(8, 1, false)];
        assert_eq!(p.select(&cands, &[1, 1]), 0);
    }

    #[test]
    fn round_robin_rotates() {
        let mut p = RoundRobin::new(4);
        let cands = [cand(0, 0, false), cand(1, 1, false), cand(2, 3, false)];
        let i = p.select(&cands, &[1, 1, 0, 1]);
        assert_eq!(cands[i].core, CoreId(0));
        p.note_grant(&cands[i]);
        let i = p.select(&cands, &[1, 1, 0, 1]);
        assert_eq!(cands[i].core, CoreId(1));
        p.note_grant(&cands[i]);
        // Core 2 has no candidate: skip to core 3.
        let i = p.select(&cands, &[1, 1, 0, 1]);
        assert_eq!(cands[i].core, CoreId(3));
        p.note_grant(&cands[i]);
        let i = p.select(&cands, &[1, 1, 0, 1]);
        assert_eq!(cands[i].core, CoreId(0));
    }

    #[test]
    fn lreq_prefers_fewest_pending_reads() {
        let mut p = LeastRequest;
        let cands = [cand(0, 0, true), cand(1, 1, false)];
        // Core 1 has fewer pending reads: its miss beats core 0's hit.
        assert_eq!(p.select(&cands, &[10, 2]), 1);
    }

    #[test]
    fn lreq_uses_hit_first_within_core() {
        let mut p = LeastRequest;
        let cands = [cand(0, 0, false), cand(3, 0, true), cand(9, 1, true)];
        let i = p.select(&cands, &[2, 5]);
        assert_eq!(i, 1); // core 0 wins, its hit beats its older miss
    }

    #[test]
    fn fixed_priority_orders_cores() {
        let mut p = FixedPriority::from_order("FIX-3210", &[3, 2, 1, 0]);
        let cands = [cand(0, 0, true), cand(1, 2, false)];
        assert_eq!(cands[p.select(&cands, &[1, 0, 1, 0])].core, CoreId(2));
    }

    #[test]
    fn me_scheme_ranks_by_descending_me() {
        let me = [2.0, 40.0, 1.0, 15.0]; // core 1 best, then 3, 0, 2
        let mut p = FixedPriority::from_memory_efficiency(&me);
        assert_eq!(p.ranks(), &[2, 0, 3, 1]);
        assert_eq!(p.name(), "ME");
        let cands = [cand(0, 0, true), cand(1, 3, false)];
        assert_eq!(cands[p.select(&cands, &[1, 0, 0, 1])].core, CoreId(3));
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn fixed_priority_rejects_duplicates() {
        let _ = FixedPriority::from_order("bad", &[0, 0]);
    }

    #[test]
    fn me_lreq_combines_me_and_pending() {
        // Core 0: ME 16, core 1: ME 4. With 8x the pending reads, core 0's
        // ratio 16/8=2 loses to core 1's 4/1=4.
        let mut p = MeLreq::new(&[16.0, 4.0], 42);
        let cands = [cand(0, 0, true), cand(1, 1, false)];
        assert_eq!(cands[p.select(&cands, &[8, 1])].core, CoreId(1));
        // At equal pending, higher ME wins.
        assert_eq!(cands[p.select(&cands, &[2, 2])].core, CoreId(0));
    }

    #[test]
    fn me_lreq_tie_break_is_random_but_seeded() {
        let me = [8.0, 8.0];
        let cands = [cand(0, 0, false), cand(1, 1, false)];
        let picks = |seed: u64| -> Vec<u16> {
            let mut p = MeLreq::new(&me, seed);
            (0..32).map(|_| cands[p.select(&cands, &[2, 2])].core.0).collect()
        };
        let a = picks(1);
        let b = picks(1);
        assert_eq!(a, b, "same seed must reproduce");
        // Both cores get picked over 32 tie-breaks.
        assert!(a.contains(&0) && a.contains(&1), "tie-break should mix cores: {a:?}");
    }

    #[test]
    fn policy_kind_names_and_read_first() {
        assert_eq!(PolicyKind::HfRf.name(), "HF-RF");
        assert_eq!(PolicyKind::MeLreq.name(), "ME-LREQ");
        assert_eq!(PolicyKind::MeLreqOnline { epoch_cycles: 100 }.name(), "ME-LREQ-ON");
        assert!(!PolicyKind::Fcfs.read_first());
        assert!(PolicyKind::FcfsRf.read_first());
        assert!(PolicyKind::MeLreq.read_first());
        assert!(PolicyKind::MeLreqOnline { epoch_cycles: 100 }.read_first());
    }

    #[test]
    fn update_profile_changes_me_lreq_decisions() {
        // Start with core 0 favoured, then flip the profile: the same
        // candidate set must switch winners.
        let mut p = MeLreq::new(&[100.0, 1.0], 3);
        let cands = [cand(0, 0, false), cand(1, 1, false)];
        assert_eq!(cands[p.select(&cands, &[2, 2])].core, CoreId(0));
        p.update_profile(&[1.0, 100.0]);
        assert_eq!(cands[p.select(&cands, &[2, 2])].core, CoreId(1));
    }

    #[test]
    fn update_profile_is_noop_for_oblivious_policies() {
        let mut p = HitFirst;
        p.update_profile(&[5.0, 1.0]);
        let cands = [cand(3, 0, false), cand(1, 1, false)];
        assert_eq!(p.select(&cands, &[1, 1]), 1, "HF-RF still picks the oldest");
    }

    #[test]
    fn online_variant_builds_with_flat_profile() {
        let kind = PolicyKind::MeLreqOnline { epoch_cycles: 1000 };
        let me = [7.0, 3.0]; // must be ignored at build time
        let mut p = kind.build(&me, 2, 5);
        // With a flat internal profile, the core with fewer pending reads
        // wins (least-request degeneration), not the higher-ME core.
        let cands = [cand(0, 0, false), cand(1, 1, false)];
        assert_eq!(cands[p.select(&cands, &[6, 1])].core, CoreId(1));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "profile must cover all cores")]
    fn update_profile_rejects_wrong_width() {
        let mut p = MeLreq::new(&[1.0, 2.0], 3);
        p.update_profile(&[1.0]);
    }

    #[test]
    fn figure_sets_have_papers_schemes() {
        let f2 = PolicyKind::figure2_set();
        assert_eq!(f2.len(), 5);
        assert_eq!(f2[0].name(), "HF-RF");
        assert_eq!(f2[4].name(), "ME-LREQ");
        let f3 = PolicyKind::figure3_set(4);
        assert_eq!(f3[2].name(), "FIX-3210");
        if let PolicyKind::Fixed { order, .. } = &f3[2] {
            assert_eq!(order, &[3, 2, 1, 0]);
        } else {
            panic!("expected fixed policy");
        }
    }

    #[test]
    fn build_produces_named_policies() {
        let me = [1.0, 2.0];
        for kind in PolicyKind::figure2_set() {
            let p = kind.build(&me, 2, 7);
            assert_eq!(p.name(), kind.name());
        }
    }
}
