//! Memory request records.

use melreq_dram::Location;
use melreq_stats::types::{AccessKind, Addr, CoreId, Cycle};

/// Unique identifier of an in-flight memory request.
///
/// Ids are issued sequentially by the component that creates requests
/// (the cache hierarchy), so they double as an arrival sequence number:
/// comparing ids of two queued requests gives their arrival order even
/// when both arrived on the same cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

/// One memory transaction (a 64-byte line read or write-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique id, monotone in arrival order.
    pub id: ReqId,
    /// The core whose program generated the request. Write-backs carry
    /// the core that originally dirtied the line.
    pub core: CoreId,
    /// Physical address (line-aligned by the cache hierarchy).
    pub addr: Addr,
    /// Pre-decoded DRAM coordinates of the line.
    pub loc: Location,
    /// Read (demand miss / fetch) or write (dirty write-back).
    pub kind: AccessKind,
    /// Cycle the request entered the controller buffer.
    pub arrival: Cycle,
}

impl MemRequest {
    /// Shorthand used widely by policies.
    #[inline]
    pub fn is_read(&self) -> bool {
        self.kind.is_read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use melreq_dram::DramGeometry;

    #[test]
    fn ids_order_like_arrival() {
        assert!(ReqId(1) < ReqId(2));
    }

    #[test]
    fn request_predicates() {
        let g = DramGeometry::paper();
        let r = MemRequest {
            id: ReqId(0),
            core: CoreId(1),
            addr: 0x40,
            loc: g.decode(0x40),
            kind: AccessKind::Read,
            arrival: 10,
        };
        assert!(r.is_read());
        let w = MemRequest { kind: AccessKind::Write, ..r };
        assert!(!w.is_read());
    }
}
