//! The grown scheduler zoo: policies from the paper's successor work,
//! registered behind the same [`SchedulerPolicy`] trait as the paper's
//! five schemes.
//!
//! * [`Bliss`] — BLISS-style blacklisting (Subramanian et al., see
//!   PAPERS.md): a core granted too many *consecutive* requests is
//!   blacklisted; non-blacklisted candidates outrank blacklisted ones,
//!   and the blacklist is cleared every `clear_interval` grants so no
//!   core is penalized forever.
//! * [`TcmCluster`] — a TCM-style two-cluster scheduler (Kim et al.,
//!   thread cluster memory scheduling): every `quantum` grants the cores
//!   are re-clustered by their read counts over the elapsed quantum.
//!   Cores at or below the mean form the latency-sensitive cluster and
//!   outrank the bandwidth-sensitive rest; the bandwidth cluster's
//!   internal order rotates each quantum (TCM's "niceness shuffle")
//!   so no heavy core is permanently last.
//!
//! Both are deliberately wall-clock-free: all bookkeeping is counted in
//! *grants*, the only time base the policy trait observes, which keeps
//! them deterministic across kernels and snapshot/restore boundaries.

use crate::policy::{Candidate, SchedulerPolicy};
use melreq_stats::types::CoreId;

/// BLISS-style blacklisting scheduler.
///
/// The decision rule ranks *requests* (not cores first): the candidate
/// minimizing `(blacklisted(core), !row_hit, id)` wins — application
/// awareness is reduced to the single blacklist bit, which is the point
/// of BLISS ("blacklisting": simple interference control without
/// per-core ranking hardware).
#[derive(Debug, Clone)]
pub struct Bliss {
    /// Per-core blacklist bit.
    blacklisted: Vec<bool>,
    /// Core granted most recently (the streak owner).
    last_core: Option<CoreId>,
    /// Length of the current consecutive-grant streak.
    streak: u32,
    /// Grants since the blacklist was last cleared.
    grants_since_clear: u64,
    threshold: u32, // melreq-allow(S01): construction parameter, identical across snapshot peers
    clear_interval: u64, // melreq-allow(S01): construction parameter, identical across snapshot peers
}

impl Bliss {
    /// Blacklisting threshold used when none is given (the BLISS paper's
    /// "blacklisting threshold" of 4 consecutive requests).
    pub const DEFAULT_THRESHOLD: u32 = 4;
    /// Default clearing interval, in grants.
    pub const DEFAULT_CLEAR_INTERVAL: u64 = 10_000;

    /// A blacklisting scheduler over `cores` cores.
    ///
    /// # Panics
    /// Panics when `cores` is zero, `threshold` is zero, or
    /// `clear_interval` is zero.
    pub fn new(cores: usize, threshold: u32, clear_interval: u64) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(threshold > 0, "blacklist threshold must be positive");
        assert!(clear_interval > 0, "clear interval must be positive");
        Bliss {
            blacklisted: vec![false; cores],
            last_core: None,
            streak: 0,
            grants_since_clear: 0,
            threshold,
            clear_interval,
        }
    }

    /// Whether `core` is currently blacklisted (test/diagnostic access).
    pub fn is_blacklisted(&self, core: CoreId) -> bool {
        self.blacklisted[core.index()]
    }
}

impl SchedulerPolicy for Bliss {
    fn name(&self) -> &'static str {
        "BLISS"
    }

    fn select(&mut self, cands: &[Candidate], _pending: &[u32]) -> usize {
        cands
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (self.blacklisted[c.core.index()], !c.row_hit, c.id))
            .map(|(i, _)| i)
            .expect("non-empty")
    }

    fn note_grant(&mut self, granted: &Candidate) {
        if self.last_core == Some(granted.core) {
            self.streak += 1;
        } else {
            self.last_core = Some(granted.core);
            self.streak = 1;
        }
        if self.streak >= self.threshold {
            self.blacklisted[granted.core.index()] = true;
        }
        self.grants_since_clear += 1;
        if self.grants_since_clear >= self.clear_interval {
            self.blacklisted.iter_mut().for_each(|b| *b = false);
            self.grants_since_clear = 0;
        }
    }

    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![("threshold", u64::from(self.threshold)), ("clear", self.clear_interval)]
    }

    fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.usize(self.blacklisted.len());
        for &b in &self.blacklisted {
            enc.bool(b);
        }
        enc.opt_u64(self.last_core.map(|c| u64::from(c.0)));
        enc.u32(self.streak);
        enc.u64(self.grants_since_clear);
    }

    fn load_state(&mut self, dec: &mut melreq_snap::Dec<'_>) -> Result<(), melreq_snap::SnapError> {
        let n = dec.usize()?;
        if n != self.blacklisted.len() {
            return Err(melreq_snap::SnapError::Invalid("bliss core count mismatch"));
        }
        for b in &mut self.blacklisted {
            *b = dec.bool()?;
        }
        self.last_core = match dec.opt_u64()? {
            Some(raw) => {
                let core = u16::try_from(raw)
                    .map_err(|_| melreq_snap::SnapError::Invalid("bliss last core out of range"))?;
                if usize::from(core) >= self.blacklisted.len() {
                    return Err(melreq_snap::SnapError::Invalid("bliss last core out of range"));
                }
                Some(CoreId(core))
            }
            None => None,
        };
        self.streak = dec.u32()?;
        self.grants_since_clear = dec.u64()?;
        Ok(())
    }
}

/// TCM-style two-cluster scheduler.
///
/// Core selection is rank-first (like the paper's core-aware schemes):
/// the candidate core with the smallest rank wins, ties to the lower
/// core id, and the winner's requests are served hit-first-then-oldest.
/// Ranks are recomputed every `quantum` grants from the per-core read
/// counts of the elapsed quantum.
#[derive(Debug, Clone)]
pub struct TcmCluster {
    /// Reads granted per core during the current quantum.
    interval_reads: Vec<u64>,
    /// Grants observed in the current quantum.
    grants_in_quantum: u64,
    /// `rank[core]` — 0 is the highest priority.
    rank: Vec<u32>,
    /// Monotone shuffle counter rotating the bandwidth cluster's order.
    shuffle: u64,
    quantum: u64, // melreq-allow(S01): construction parameter, identical across snapshot peers
}

impl TcmCluster {
    /// Clustering quantum used when none is given, in grants.
    pub const DEFAULT_QUANTUM: u64 = 2_000;

    /// A two-cluster scheduler over `cores` cores.
    ///
    /// # Panics
    /// Panics when `cores` is zero or `quantum` is zero.
    pub fn new(cores: usize, quantum: u64) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(quantum > 0, "clustering quantum must be positive");
        TcmCluster {
            interval_reads: vec![0; cores],
            grants_in_quantum: 0,
            rank: vec![0; cores],
            shuffle: 0,
            quantum,
        }
    }

    /// The current rank vector (`rank[core]`, 0 = highest; test access).
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }

    /// Recompute the clustering from this quantum's read counts.
    fn recluster(&mut self) {
        self.rank = Self::rank_from_interval(&self.interval_reads, self.shuffle);
        self.shuffle += 1;
        self.interval_reads.iter_mut().for_each(|r| *r = 0);
        self.grants_in_quantum = 0;
    }

    /// The pure clustering function: cores at or below the mean read
    /// count form the latency cluster (ranked by ascending reads, ties
    /// to the lower id); the bandwidth cluster follows, its ascending
    /// order rotated by `shuffle` positions.
    ///
    /// Public so melreq-obs replicates the ranking from grant history
    /// without re-running the policy (melreq-audit re-derives the same
    /// math independently, per its no-shared-code rule).
    pub fn rank_from_interval(interval_reads: &[u64], shuffle: u64) -> Vec<u32> {
        let cores = interval_reads.len();
        let total: u64 = interval_reads.iter().sum();
        let mean = total / cores as u64;
        let mut latency: Vec<usize> = (0..cores).filter(|&c| interval_reads[c] <= mean).collect();
        let mut bandwidth: Vec<usize> = (0..cores).filter(|&c| interval_reads[c] > mean).collect();
        latency.sort_by_key(|&c| (interval_reads[c], c));
        bandwidth.sort_by_key(|&c| (interval_reads[c], c));
        if !bandwidth.is_empty() {
            let by = usize::try_from(shuffle % bandwidth.len() as u64).expect("rotation < len");
            bandwidth.rotate_left(by);
        }
        let mut rank = vec![0u32; cores];
        for (pos, &core) in latency.iter().chain(bandwidth.iter()).enumerate() {
            rank[core] = u32::try_from(pos).expect("core count fits u32");
        }
        rank
    }
}

impl SchedulerPolicy for TcmCluster {
    fn name(&self) -> &'static str {
        "TCM"
    }

    fn select(&mut self, cands: &[Candidate], _pending: &[u32]) -> usize {
        let best_core = cands
            .iter()
            .map(|c| c.core)
            .min_by_key(|c| (self.rank[c.index()], c.index()))
            .expect("non-empty");
        cands
            .iter()
            .enumerate()
            .filter(|(_, c)| c.core == best_core)
            .min_by_key(|(_, c)| (!c.row_hit, c.id))
            .map(|(i, _)| i)
            .expect("selected core has a candidate")
    }

    fn note_grant(&mut self, granted: &Candidate) {
        self.interval_reads[granted.core.index()] += 1;
        self.grants_in_quantum += 1;
        if self.grants_in_quantum >= self.quantum {
            self.recluster();
        }
    }

    fn params(&self) -> Vec<(&'static str, u64)> {
        vec![("quantum", self.quantum)]
    }

    fn save_state(&self, enc: &mut melreq_snap::Enc) {
        enc.u64s(&self.interval_reads);
        enc.u64(self.grants_in_quantum);
        enc.usize(self.rank.len());
        for &r in &self.rank {
            enc.u32(r);
        }
        enc.u64(self.shuffle);
    }

    fn load_state(&mut self, dec: &mut melreq_snap::Dec<'_>) -> Result<(), melreq_snap::SnapError> {
        let reads = dec.u64s()?;
        if reads.len() != self.interval_reads.len() {
            return Err(melreq_snap::SnapError::Invalid("tcm core count mismatch"));
        }
        self.interval_reads = reads;
        self.grants_in_quantum = dec.u64()?;
        let n = dec.usize()?;
        if n != self.rank.len() {
            return Err(melreq_snap::SnapError::Invalid("tcm rank count mismatch"));
        }
        let cores = u32::try_from(self.rank.len())
            .map_err(|_| melreq_snap::SnapError::Invalid("tcm core count out of range"))?;
        for r in &mut self.rank {
            let v = dec.u32()?;
            if v >= cores {
                return Err(melreq_snap::SnapError::Invalid("tcm rank out of range"));
            }
            *r = v;
        }
        self.shuffle = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReqId;

    fn cand(id: u64, core: u16, hit: bool) -> Candidate {
        Candidate { id: ReqId(id), core: CoreId(core), row_hit: hit }
    }

    #[test]
    fn bliss_blacklists_after_consecutive_grants() {
        let mut p = Bliss::new(2, 3, 1000);
        let hog = cand(0, 0, false);
        for _ in 0..3 {
            p.note_grant(&hog);
        }
        assert!(p.is_blacklisted(CoreId(0)));
        assert!(!p.is_blacklisted(CoreId(1)));
        // A blacklisted core's hit loses to a clean core's miss.
        let cands = [cand(1, 0, true), cand(5, 1, false)];
        assert_eq!(cands[p.select(&cands, &[2, 1])].core, CoreId(1));
    }

    #[test]
    fn bliss_streak_resets_on_interleaved_grants() {
        let mut p = Bliss::new(2, 3, 1000);
        p.note_grant(&cand(0, 0, false));
        p.note_grant(&cand(1, 0, false));
        p.note_grant(&cand(2, 1, false)); // breaks core 0's streak
        p.note_grant(&cand(3, 0, false));
        p.note_grant(&cand(4, 0, false));
        assert!(!p.is_blacklisted(CoreId(0)), "streak must reset on interleave");
        p.note_grant(&cand(5, 0, false));
        assert!(p.is_blacklisted(CoreId(0)));
    }

    #[test]
    fn bliss_clears_blacklist_periodically() {
        let mut p = Bliss::new(2, 2, 4);
        p.note_grant(&cand(0, 0, false));
        p.note_grant(&cand(1, 0, false));
        assert!(p.is_blacklisted(CoreId(0)));
        p.note_grant(&cand(2, 0, false));
        p.note_grant(&cand(3, 0, false)); // 4th grant: clearing boundary
        assert!(!p.is_blacklisted(CoreId(0)), "blacklist must clear at the interval");
    }

    #[test]
    fn bliss_falls_back_to_hit_first_oldest() {
        let mut p = Bliss::new(2, 4, 1000);
        let cands = [cand(4, 0, false), cand(7, 1, true), cand(2, 1, true)];
        // Nobody blacklisted: hit-first-then-oldest across all cores.
        assert_eq!(p.select(&cands, &[1, 2]), 2);
    }

    #[test]
    fn bliss_snapshot_round_trips() {
        let mut p = Bliss::new(2, 2, 100);
        for i in 0..5 {
            p.note_grant(&cand(i, 0, false));
        }
        let mut enc = melreq_snap::Enc::new();
        p.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut q = Bliss::new(2, 2, 100);
        let mut dec = melreq_snap::Dec::new(&bytes);
        q.load_state(&mut dec).expect("load");
        assert!(dec.is_exhausted(), "trailing bytes after bliss state");
        let cands = [cand(10, 0, true), cand(11, 1, false)];
        assert_eq!(p.select(&cands, &[1, 1]), q.select(&cands, &[1, 1]));
        assert_eq!(p.is_blacklisted(CoreId(0)), q.is_blacklisted(CoreId(0)));
    }

    #[test]
    fn bliss_load_rejects_wrong_core_count() {
        let p = Bliss::new(4, 4, 100);
        let mut enc = melreq_snap::Enc::new();
        p.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut q = Bliss::new(2, 4, 100);
        assert!(q.load_state(&mut melreq_snap::Dec::new(&bytes)).is_err());
    }

    #[test]
    fn tcm_starts_flat_and_prefers_lower_core_id() {
        let mut p = TcmCluster::new(2, 100);
        let cands = [cand(3, 1, false), cand(5, 0, false)];
        assert_eq!(cands[p.select(&cands, &[1, 1])].core, CoreId(0));
    }

    #[test]
    fn tcm_ranks_light_cores_above_heavy_ones() {
        let mut p = TcmCluster::new(2, 10);
        // Core 0 takes 9 of the 10 grants in the quantum.
        for i in 0..9 {
            p.note_grant(&cand(i, 0, false));
        }
        p.note_grant(&cand(9, 1, false)); // quantum boundary: recluster
        assert_eq!(p.ranks(), &[1, 0], "light core must outrank the heavy one");
        let cands = [cand(20, 0, true), cand(21, 1, false)];
        assert_eq!(cands[p.select(&cands, &[2, 1])].core, CoreId(1));
    }

    #[test]
    fn tcm_shuffles_the_bandwidth_cluster() {
        // Three heavy cores (above the mean) and one idle: the heavy
        // cluster's order rotates between quanta.
        let reads = [0u64, 10, 10, 10];
        let r0 = TcmCluster::rank_from_interval(&reads, 0);
        let r1 = TcmCluster::rank_from_interval(&reads, 1);
        let r2 = TcmCluster::rank_from_interval(&reads, 2);
        let r3 = TcmCluster::rank_from_interval(&reads, 3);
        assert_eq!(r0[0], 0, "idle core always leads");
        assert_ne!(r0, r1, "shuffle must rotate the bandwidth cluster");
        assert_eq!(r0, r3, "rotation has period = cluster size");
        assert_ne!(r1, r2);
    }

    #[test]
    fn tcm_snapshot_round_trips() {
        let mut p = TcmCluster::new(3, 7);
        for i in 0..17 {
            p.note_grant(&cand(i, u16::try_from(i % 2).expect("small"), false));
        }
        let mut enc = melreq_snap::Enc::new();
        p.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut q = TcmCluster::new(3, 7);
        q.load_state(&mut melreq_snap::Dec::new(&bytes)).expect("load");
        assert_eq!(p.ranks(), q.ranks());
        let cands = [cand(30, 0, false), cand(31, 1, false), cand(32, 2, true)];
        assert_eq!(p.select(&cands, &[1, 1, 1]), q.select(&cands, &[1, 1, 1]));
    }

    #[test]
    fn zoo_policies_report_names_and_params() {
        let b = Bliss::new(2, 4, 10_000);
        assert_eq!(b.name(), "BLISS");
        assert_eq!(b.params(), vec![("threshold", 4), ("clear", 10_000)]);
        let t = TcmCluster::new(2, 2_000);
        assert_eq!(t.name(), "TCM");
        assert_eq!(t.params(), vec![("quantum", 2_000)]);
    }
}
